# Convenience targets for the MediaWorm reproduction.

PYTHON ?= python

.PHONY: install test bench bench-default bench-smoke repro faults-smoke failover-smoke examples clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:            ## quick-profile benchmarks (shape checks)
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-default:    ## the EXPERIMENTS.md setting (slow)
	REPRO_BENCH_PROFILE=default $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:      ## core-engine bench: active vs legacy loop, serial vs pool
	$(PYTHON) -m repro.experiments.bench_core --profile quick --jobs 2 \
		--out BENCH_core.json

repro:            ## regenerate every figure/table at the default profile
	$(PYTHON) -m repro.experiments.cli all --profile default

faults-smoke:     ## 2-point fault campaign (VC + FIFO at 0.5% loss), CI-sized
	$(PYTHON) -m repro.experiments.cli faults --profile quick \
		--rates 0.005 --fresh \
		--checkpoint mediaworm-faults-smoke.checkpoint.json

failover-smoke:   ## adaptive vs static with 2 permanent failures, CI-sized
	$(PYTHON) -m repro.experiments.cli failover --profile quick \
		--severities 0,2 --fresh \
		--checkpoint mediaworm-failover-smoke.checkpoint.json \
		--json FAILOVER_smoke.json

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/scheduler_shootout.py
	$(PYTHON) examples/video_server_admission.py
	$(PYTHON) examples/cluster_fat_mesh.py
	$(PYTHON) examples/pcs_vs_mediaworm.py
	$(PYTHON) examples/gop_trace_study.py

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
