# Convenience targets for the MediaWorm reproduction.

PYTHON ?= python

.PHONY: install test lint coverage bench bench-default bench-smoke repro faults-smoke failover-smoke disaster-smoke trace-smoke chaos-smoke scale-smoke scale examples clean

# conservative floor just under the suite's measured line coverage of
# src/repro; ratchet upward as coverage grows, never downward
COV_MIN ?= 75

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:             ## ruff check (lint + import sort) over src and tests
	@command -v ruff >/dev/null 2>&1 \
		|| { echo "ruff not installed (pip install -e .[dev]); skipping"; exit 0; } \
		&& ruff check src tests benchmarks examples

coverage:         ## tier-1 suite under the line-coverage gate
	@$(PYTHON) -c "import pytest_cov" 2>/dev/null \
		|| { echo "pytest-cov not installed (pip install -e .[dev]); skipping"; exit 0; } \
		&& $(PYTHON) -m pytest tests/ --cov=repro \
			--cov-report=term-missing:skip-covered \
			--cov-fail-under=$(COV_MIN)

bench:            ## quick-profile benchmarks (shape checks)
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-default:    ## the EXPERIMENTS.md setting (slow)
	REPRO_BENCH_PROFILE=default $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:      ## core-engine bench: object/array/legacy loops, serial vs pool
	$(PYTHON) -m repro.experiments.bench_core --profile quick --jobs 2 \
		--min-speedup 1.0 --min-speedup-dense 1.5 \
		--out BENCH_core.json --history BENCH_history.jsonl

repro:            ## regenerate every figure/table at the default profile
	$(PYTHON) -m repro.experiments.cli all --profile default

faults-smoke:     ## 2-point fault campaign (VC + FIFO at 0.5% loss), CI-sized
	$(PYTHON) -m repro.experiments.cli faults --profile quick \
		--rates 0.005 --fresh \
		--checkpoint mediaworm-faults-smoke.checkpoint.json

failover-smoke:   ## adaptive vs static with 2 permanent failures, CI-sized
	$(PYTHON) -m repro.experiments.cli failover --profile quick \
		--severities 0,2 --fresh \
		--checkpoint mediaworm-failover-smoke.checkpoint.json \
		--json FAILOVER_smoke.json

disaster-smoke:   ## switch-kill failover on the k=8 fat tree + butterfly
	$(PYTHON) -m repro.experiments.cli disaster --profile smoke \
		--severities none,link,switch --jobs 2 --fresh \
		--checkpoint mediaworm-disaster-smoke.checkpoint.json \
		--json DISASTER_smoke.json

trace-smoke:      ## traced run (invariants on) + JSONL schema validation
	$(PYTHON) -m repro.experiments.cli trace --preset smoke \
		--trace-out mediaworm-trace-smoke.jsonl
	$(PYTHON) -m repro.obs mediaworm-trace-smoke.jsonl --digest

chaos-smoke:      ## seeded 25-scenario chaos campaign + sabotage selftest
	$(PYTHON) -m repro.experiments.cli chaos --profile smoke \
		--count 25 --seed 7 --jobs 2 --fresh \
		--corpus chaos-smoke-corpus \
		--checkpoint mediaworm-chaos-smoke.checkpoint.json
	$(PYTHON) -m repro.experiments.cli chaos --selftest credit \
		--corpus chaos-selftest-corpus
	$(PYTHON) -m repro.experiments.cli chaos \
		--replay chaos-selftest-corpus/sabotage-credit.json

scale-smoke:      ## quick scale points: digests identical on both loops
	$(PYTHON) -m repro.experiments.cli scale --smoke --json SCALE_smoke.json

scale:            ## full scale campaign incl. the 1024-host fat tree
	$(PYTHON) -m repro.experiments.cli scale --json SCALE_campaign.json

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/scheduler_shootout.py
	$(PYTHON) examples/video_server_admission.py
	$(PYTHON) examples/cluster_fat_mesh.py
	$(PYTHON) examples/pcs_vs_mediaworm.py
	$(PYTHON) examples/gop_trace_study.py

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
