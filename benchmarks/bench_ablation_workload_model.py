"""Ablations on the workload-modelling decisions recorded in DESIGN.md.

Three substitutions this reproduction makes are measured here so their
effect is documented rather than assumed:

1. **Balanced stream destinations** — marginally uniform, but assigned
   round-robin so no output link draws more real-time load than the
   others.  With fully i.i.d. draws the binomial imbalance can push one
   output link's real-time load high enough to starve best-effort
   traffic there.
2. **Best-effort destination-VC fallback** — a best-effort message
   whose drawn destination VC is busy may take a free sibling VC
   (real-time streams always bind, preserving connection semantics).
   Strict binding wastes grants on head-of-line waiting.
3. **Workload scaling** — shrinking the workload's time constants must
   not manufacture jitter: sigma_d should shrink (toward the paper's
   zero) as the scale factor approaches 1.
"""

from dataclasses import replace

from conftest import run_once

from repro.experiments.config import SingleSwitchExperiment
from repro.experiments.report import format_table
from repro.experiments.runner import simulate_single_switch
from repro.metrics.collector import MetricsCollector
from repro.network.network import Network
from repro.network.topology import single_switch
from repro.sim.rng import RngStreams
from repro.traffic.mix import build_workload

LOAD = 0.9


def _run_custom(profile, balanced=True, binding=False, scale=None):
    experiment = SingleSwitchExperiment(
        load=LOAD,
        mix=(80, 20),
        scale=scale if scale is not None else profile.scale,
        warmup_frames=profile.warmup_frames,
        measure_frames=profile.measure_frames,
        seed=profile.seed,
    )
    collector = MetricsCollector(
        experiment.timebase, warmup=experiment.warmup_cycles
    )
    config = replace(
        experiment.router_config(experiment.num_ports),
        be_dst_vc_binding=binding,
    )
    network = Network(
        single_switch(experiment.num_ports),
        config,
        on_message=collector.on_message,
    )
    workload_config = experiment.workload_config()
    workload_config.balanced_destinations = balanced
    build_workload(network, workload_config, RngStreams(experiment.seed))
    network.run(experiment.total_cycles)
    return collector.snapshot()


def bench_ablation_destination_balance(benchmark, profile):
    def sweep():
        return {
            "balanced": _run_custom(profile, balanced=True),
            "iid": _run_custom(profile, balanced=False),
        }

    results = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["destinations", "d (ms)", "sigma_d (ms)", "BE latency (us)"],
            [
                [k, m.d, m.sigma_d, m.be_latency_us]
                for k, m in results.items()
            ],
        )
    )
    balanced, iid = results["balanced"], results["iid"]
    # Real-time jitter is comparable either way (Virtual Clock protects
    # it); the imbalance cost lands on best-effort latency.
    assert balanced.sigma_d <= iid.sigma_d + 1.0
    assert balanced.be_latency_us <= iid.be_latency_us * 1.5 + 5.0


def bench_ablation_be_vc_binding(benchmark, profile):
    def sweep():
        return {
            "fallback": _run_custom(profile, binding=False),
            "strict": _run_custom(profile, binding=True),
        }

    results = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["BE dst-VC policy", "d (ms)", "sigma_d (ms)", "BE latency (us)"],
            [
                [k, m.d, m.sigma_d, m.be_latency_us]
                for k, m in results.items()
            ],
        )
    )
    fallback, strict = results["fallback"], results["strict"]
    # The fallback never hurts best-effort and leaves real-time alone.
    assert fallback.be_latency_us <= strict.be_latency_us * 1.2 + 5.0
    assert abs(fallback.d - strict.d) < 1.0


def bench_ablation_workload_scale(benchmark, profile):
    scales = (40.0, 20.0, 10.0)

    def sweep():
        return {s: _run_custom(profile, scale=s) for s in scales}

    results = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["scale", "d (ms)", "sigma_d (ms)"],
            [[s, m.d, m.sigma_d] for s, m in results.items()],
        )
    )
    sigmas = [results[s].sigma_d for s in scales]
    # Finer scales never *add* jitter; every scale reports d ~ 33 ms.
    assert sigmas[-1] <= sigmas[0] + 0.2
    for metrics in results.values():
        assert abs(metrics.d - 33.0) < 1.0
