"""Ablation — where should the QoS scheduler run?

Section 3.3 of the paper argues the Virtual Clock scheduler belongs at
the crossbar input multiplexer (contention point A) of a multiplexed
crossbar, and that the output VC multiplexer (point C) is a weak
placement there because "at most one of the VCs of an output PC can
receive a flit from the multiplexed crossbar per router cycle", making
Virtual Clock behave like FIFO at that point.  This ablation measures
all placements on the same near-saturation workload.
"""

from conftest import run_once

from repro.experiments.config import SingleSwitchExperiment
from repro.experiments.report import format_table
from repro.experiments.runner import simulate_single_switch
from repro.router.config import QosPlacement

LOAD = 0.96
PLACEMENTS = (
    QosPlacement.INPUT_MUX,
    QosPlacement.VC_MUX,
    QosPlacement.BOTH,
    QosPlacement.NONE,
)


def bench_ablation_qos_placement(benchmark, profile):
    def sweep():
        results = {}
        for placement in PLACEMENTS:
            experiment = SingleSwitchExperiment(
                load=LOAD,
                mix=(80, 20),
                qos_placement=placement,
                scale=profile.scale,
                warmup_frames=profile.warmup_frames,
                measure_frames=profile.measure_frames,
                seed=profile.seed,
            )
            results[placement] = simulate_single_switch(experiment).metrics
        return results

    results = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["placement", "d (ms)", "sigma_d (ms)", "BE latency (us)"],
            [
                [p, m.d, m.sigma_d, m.be_latency_us]
                for p, m in results.items()
            ],
        )
    )

    point_a = results[QosPlacement.INPUT_MUX]
    point_c = results[QosPlacement.VC_MUX]
    both = results[QosPlacement.BOTH]
    none = results[QosPlacement.NONE]

    # The paper's placement (A) beats the all-FIFO router.
    assert point_a.sigma_d <= none.sigma_d + 0.2
    assert point_a.d <= none.d + 0.2

    # Adding C on top of A buys little (C is nearly idle as a decision
    # point on a multiplexed crossbar).
    assert abs(both.sigma_d - point_a.sigma_d) < 1.0

    # Point A is at least as good as point C alone.
    assert point_a.sigma_d <= point_c.sigma_d + 0.5
