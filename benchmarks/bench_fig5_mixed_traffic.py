"""Figure 5 — mixed traffic: VBR jitter across real-time proportions.

Paper's claim: "up to an input load of 0.80, there is no jitter for VBR
traffic regardless of the mix between these two traffic classes.
Beyond a load of 0.80, it is only when the real-time traffic becomes a
dominant component, does the jitter become significant."
"""

from conftest import run_once

from repro.experiments.figures import run_fig5
from repro.experiments.report import figure_to_text
from repro.experiments.validation import check_claims, claims_to_text


def bench_fig5_mixed_traffic(benchmark, profile, executor):
    fig = run_once(benchmark, lambda: run_fig5(profile, executor=executor))
    print()
    print(figure_to_text(fig))
    results = check_claims(fig)
    print()
    print(claims_to_text(results))
    failed = [r for r in results if not r.passed]
    assert not failed, f"paper claims failed: {[r.claim for r in failed]}"
