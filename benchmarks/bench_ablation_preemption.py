"""Ablation — message preemption for dynamic VC partitioning.

The paper's future-work proposal: instead of statically partitioning
VCs between traffic classes, let best-effort borrow idle real-time VCs
and allow real-time headers to *preempt* the borrowers when they return
(kill and retransmit).  This bench offers a real-time-heavy mix with a
deliberately tiny static real-time partition, so dynamic borrowing and
preemption actually fire, and checks the contract: real-time QoS with
preemption enabled matches the statically-partitioned router's, while
best-effort keeps access to the full VC pool.
"""

from dataclasses import replace

from conftest import run_once

from repro.experiments.config import SingleSwitchExperiment
from repro.experiments.report import format_table
from repro.metrics.collector import MetricsCollector
from repro.network.network import Network
from repro.network.topology import single_switch
from repro.sim.rng import RngStreams
from repro.traffic.mix import build_workload

LOAD = 0.95
MIX = (90, 10)
#: kill-and-retransmit backoff for the preemptive configuration
PREEMPTION_BACKOFF = 64


def _run(profile, dynamic: bool, preemption: bool):
    experiment = SingleSwitchExperiment(
        load=LOAD,
        mix=MIX,
        scale=profile.scale,
        warmup_frames=profile.warmup_frames,
        measure_frames=profile.measure_frames,
        seed=profile.seed,
    )
    collector = MetricsCollector(
        experiment.timebase, warmup=experiment.warmup_cycles
    )
    config = replace(
        experiment.router_config(experiment.num_ports),
        dynamic_partitioning=dynamic,
        preemption=preemption,
        preemption_backoff=PREEMPTION_BACKOFF,
    )
    network = Network(
        single_switch(experiment.num_ports),
        config,
        on_message=collector.on_message,
    )
    build_workload(
        network, experiment.workload_config(), RngStreams(experiment.seed)
    )
    network.run(experiment.total_cycles)
    network.check_conservation()
    return collector.snapshot(), network.preemptions


def bench_ablation_preemption(benchmark, profile):
    def sweep():
        return {
            "static": _run(profile, dynamic=False, preemption=False),
            "dynamic, no preemption": _run(
                profile, dynamic=True, preemption=False
            ),
            "dynamic + preemption": _run(
                profile, dynamic=True, preemption=True
            ),
        }

    results = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["partitioning", "d (ms)", "sigma_d (ms)", "BE latency (us)",
             "preemptions"],
            [
                [name, m.d, m.sigma_d, m.be_latency_us, count]
                for name, (m, count) in results.items()
            ],
        )
    )

    static, _ = results["static"]
    dynamic, fired_plain = results["dynamic, no preemption"]
    preemptive, fired = results["dynamic + preemption"]

    # At this operating point borrowing actually happens, so real-time
    # headers do find best-effort squatters to preempt.
    assert fired > 0
    assert fired_plain == 0  # the mechanism is really the config flag

    # The trade-off triangle: dynamic borrowing helps best-effort
    # (access to the whole VC pool)...
    assert dynamic.be_latency_us <= static.be_latency_us
    # ...at a real-time cost that preemption claws back (never makes
    # real-time worse than plain dynamic partitioning).
    assert preemptive.sigma_d <= dynamic.sigma_d + 0.3
    # Frame delivery stays on time everywhere.
    for metrics, _ in results.values():
        assert abs(metrics.d - 33.0) < 1.0
