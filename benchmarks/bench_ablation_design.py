"""Ablations on router design knobs and the admission-control extension.

* **Flit buffer depth** — the paper's Table 1 lists per-VC flit buffers
  without pinning the value; this sweep documents that the QoS results
  are insensitive to it once a few flits deep (wormhole backpressure,
  not buffering, is the governing mechanism).
* **Dynamic VC partitioning** — the future-work extension: letting
  best-effort borrow idle real-time VCs must not hurt real-time QoS
  while helping (or at least not hurting) best-effort latency when the
  best-effort partition is tiny.
* **Admission threshold** — the conclusion's admission-control scheme:
  the utilisation bound that keeps delivery jitter-free.
"""

from conftest import run_once

from repro.core.admission import AdmissionController
from repro.experiments.config import SingleSwitchExperiment
from repro.experiments.report import format_table
from repro.experiments.runner import simulate_single_switch


def _metrics(profile, **overrides):
    experiment = SingleSwitchExperiment(
        scale=profile.scale,
        warmup_frames=profile.warmup_frames,
        measure_frames=profile.measure_frames,
        seed=profile.seed,
        **overrides,
    )
    return simulate_single_switch(experiment).metrics


def bench_ablation_buffer_depth(benchmark, profile):
    depths = (2, 4, 8, 16)

    def sweep():
        return {
            depth: _metrics(
                profile, load=0.9, mix=(80, 20), flit_buffer_depth=depth
            )
            for depth in depths
        }

    results = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["flit buffers/VC", "d (ms)", "sigma_d (ms)", "BE latency (us)"],
            [[d, m.d, m.sigma_d, m.be_latency_us] for d, m in results.items()],
        )
    )
    sigmas = [m.sigma_d for m in results.values()]
    # Insensitive beyond small depths: the spread across depths is small
    # and every depth stays jitter-free at this load.
    assert max(sigmas) - min(sigmas) < 1.0
    for metrics in results.values():
        assert abs(metrics.d - 33.0) < 1.0


def bench_ablation_dynamic_partitioning(benchmark, profile):
    def sweep():
        return {
            "static": _metrics(
                profile, load=0.8, mix=(90, 10), dynamic_partitioning=False
            ),
            "dynamic": _metrics(
                profile, load=0.8, mix=(90, 10), dynamic_partitioning=True
            ),
        }

    results = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["partitioning", "d (ms)", "sigma_d (ms)", "BE latency (us)"],
            [[k, m.d, m.sigma_d, m.be_latency_us] for k, m in results.items()],
        )
    )
    static, dynamic = results["static"], results["dynamic"]
    # Borrowing idle real-time VCs must not disturb real-time QoS...
    assert dynamic.sigma_d <= static.sigma_d + 0.5
    assert abs(dynamic.d - static.d) < 0.5
    # ...and must not make best-effort worse than static partitioning
    # by more than noise (it usually helps when the BE partition is
    # tiny, as at 90:10).
    assert dynamic.be_latency_us <= static.be_latency_us * 1.5 + 10.0


def bench_ablation_admission_threshold(benchmark, profile):
    """Accepted streams scale with the threshold; 0.75 is jitter-safe."""

    def sweep():
        stream_fraction = 0.0101  # one 4 Mbps stream on a 400 Mbps link
        rows = {}
        for threshold in (0.55, 0.75, 0.95):
            controller = AdmissionController(threshold=threshold)
            accepted = 0
            # oversubscribe: ~87 requests per input link vs a capacity
            # of threshold/0.0101 (54 to 94), so the threshold binds
            for stream in range(700):
                src = stream % 8
                dst = (src + 1 + stream % 7) % 8
                path = [("host-in", src, 0), ("host-out", dst, 0)]
                if controller.admit(stream, stream_fraction, path):
                    accepted += 1
            # run the switch at the admitted per-link load
            load = min(0.99, threshold)
            metrics = _metrics(profile, load=load, mix=(100, 0))
            rows[threshold] = (accepted, metrics)
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["threshold", "streams accepted", "d (ms)", "sigma_d (ms)"],
            [
                [t, accepted, m.d, m.sigma_d]
                for t, (accepted, m) in rows.items()
            ],
        )
    )
    counts = [accepted for accepted, _ in rows.values()]
    assert counts == sorted(counts)  # capacity grows with the threshold
    assert counts[0] < counts[-1]  # and the thresholds actually bind
    # The paper's operating point (0.75) delivers jitter-free.
    _, at_paper_threshold = rows[0.75]
    assert at_paper_threshold.sigma_d < 1.0
    assert abs(at_paper_threshold.d - 33.0) < 1.0
