"""Table 2 — average best-effort latency per traffic mix and load.

Paper's claims: "For a given mix, the latency degrades with an increase
in the load.  The presence of real-time traffic also increases the
latency of the best-effort traffic at a given load.  This is a
consequence of the higher priority given by the Virtual Clock algorithm
to the real-time traffic."  Real-time-dominant mixes saturate at the
top loads (the 'Sat.' cells).
"""

from conftest import run_once

from repro.analysis import monotonic_tail
from repro.experiments.report import table2_to_text
from repro.experiments.tables import run_table2


def bench_table2_besteffort_latency(benchmark, profile, executor):
    table = run_once(benchmark, lambda: run_table2(profile, executor=executor))
    print()
    print(table2_to_text(table))

    # Latency grows with load for every mix (10% tolerance for noise).
    for mix in table.mixes:
        series = [table.cell(mix, load) for load in table.loads]
        floor = max(x for x in series if x == x)
        assert monotonic_tail(series, tolerance=0.1 * floor), (
            f"latency not increasing with load for mix {mix}: {series}"
        )

    # At a fixed moderate load, latency grows with the real-time share.
    for load in (0.6, 0.7, 0.8):
        by_share = [
            table.cell(mix, load)
            for mix in sorted(table.mixes, key=lambda m: m[0])
        ]
        assert monotonic_tail(by_share, tolerance=0.25 * max(by_share)), (
            f"latency not increasing with rt share at load {load}: {by_share}"
        )

    # The real-time-dominant mix at the top load is the worst cell.
    top = table.loads[-1]
    heavy = table.cell((90, 10), top)
    light = table.cell((20, 80), top)
    assert heavy > light
