"""Ablation — effective jitter-free capacity per scheduler.

Condenses Fig. 3 into a single number per scheduler: the largest input
load (80:20 mix) each one serves jitter-free, found by bisection.  The
paper's summary: "a wormhole router can provide jitter-free delivery to
VBR/CBR traffic up to a load of 70-80% of physical channel bandwidth"
with rate-based scheduling, while the FIFO router gives up earlier.
"""

from conftest import run_once

from repro.analysis.saturation import find_saturation_load
from repro.core.schedulers import SchedulingPolicy
from repro.experiments.config import SingleSwitchExperiment
from repro.experiments.report import format_table
from repro.experiments.runner import simulate_single_switch


def bench_ablation_jitter_free_capacity(benchmark, profile):
    def capacity_of(policy):
        def runner(load):
            metrics = simulate_single_switch(
                SingleSwitchExperiment(
                    load=load,
                    mix=(80, 20),
                    scheduler=policy,
                    scale=profile.scale,
                    warmup_frames=profile.warmup_frames,
                    measure_frames=profile.measure_frames,
                    seed=profile.seed,
                )
            ).metrics
            return metrics.d, metrics.sigma_d

        return find_saturation_load(
            runner, low=0.6, high=1.05, tolerance=0.05
        )

    def sweep():
        return {
            policy: capacity_of(policy)
            for policy in (
                SchedulingPolicy.VIRTUAL_CLOCK,
                SchedulingPolicy.FIFO,
                SchedulingPolicy.ROUND_ROBIN,
            )
        }

    results = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["scheduler", "jitter-free capacity", "first jittery load",
             "probes"],
            [
                [policy, search.capacity, search.first_jittery,
                 len(search.probes)]
                for policy, search in results.items()
            ],
        )
    )

    vclock = results[SchedulingPolicy.VIRTUAL_CLOCK]
    fifo = results[SchedulingPolicy.FIFO]
    rr = results[SchedulingPolicy.ROUND_ROBIN]

    # Virtual Clock's capacity covers the paper's 70-80% band...
    assert vclock.capacity == vclock.capacity  # not nan
    assert vclock.capacity >= 0.8
    # ...and meets or beats both rate-agnostic schedulers.
    for other in (fifo, rr):
        other_cap = other.capacity if other.capacity == other.capacity else 0.0
        assert vclock.capacity >= other_cap - 0.051
