"""Figure 7 — effect of message size on jitter (16 VCs).

Paper's claims: "except for very small message sizes, there is little
impact on QoS for real-time traffic.  For very small sizes, the effect
of the header flit overhead becomes noticeable" (1 header flit in 20 is
5% of the stream bandwidth), and "smaller sizes may help the latency
for best-effort traffic".

Reproduction note (see EXPERIMENTS.md): the mean delivery interval is
indeed size-insensitive.  Our sigma_d mildly *increases* with message
size (longer VC holds make service burstier), while the header-flit
overhead of tiny messages only costs wire bandwidth (~11% at 10 flits)
without pushing these operating points over the edge — so the "very
small sizes are noticeably worse" corner of the paper's figure does not
reproduce at these loads; the headline conclusion (use small messages)
does.
"""

from conftest import run_once

from repro.experiments.figures import run_fig7
from repro.experiments.report import figure_to_text
from repro.experiments.validation import check_claims, claims_to_text


def bench_fig7_message_size(benchmark, profile, executor):
    fig = run_once(benchmark, lambda: run_fig7(profile, executor=executor))
    print()
    print(figure_to_text(fig))
    results = check_claims(fig)
    print()
    print(claims_to_text(results))
    failed = [r for r in results if not r.passed]
    assert not failed, f"paper claims failed: {[r.claim for r in failed]}"
