"""Figure 8 — MediaWorm vs a PCS router (8x8, 100 Mbps, 24 VCs).

Paper's claims: "wormhole routing can support jitter-free performance
only up to a load of about 0.7 compared to over 0.8 in the case of
PCS"; PCS achieves this "at the cost of ... a very high number of
dropped connections" (around 60% of requests are turned down at a load
of 0.7), while wormhole accepts every stream.
"""

from conftest import run_once

from repro.experiments.figures import run_fig8
from repro.experiments.report import figure_to_text
from repro.experiments.validation import check_claims, claims_to_text


def bench_fig8_wormhole_vs_pcs(benchmark, profile, executor):
    fig = run_once(benchmark, lambda: run_fig8(profile, executor=executor))
    print()
    print(figure_to_text(fig))
    results = check_claims(fig)
    print()
    print(claims_to_text(results))
    failed = [r for r in results if not r.passed]
    assert not failed, f"paper claims failed: {[r.claim for r in failed]}"
