"""Table 3 — attempted / established / dropped PCS connections.

Paper's shape: attempts = established + dropped at every load; attempts
grow superlinearly as the load approaches saturation (each stream
re-draws VCs until its probe finds both free); established connections
track the offered stream count and flatten near the 24-VC link
capacity; dropped counts dominate at high load.
"""

from conftest import run_once

from repro.experiments.report import table3_to_text
from repro.experiments.tables import run_table3


def bench_table3_pcs_connections(benchmark, profile, executor):
    table = run_once(benchmark, lambda: run_table3(profile, executor=executor))
    print()
    print(table3_to_text(table))

    rows = sorted(table.rows, key=lambda r: r.load)

    # The Table 3 identity holds at every load.
    for row in rows:
        assert row.attempts == row.established + row.dropped

    # Offered streams and attempts increase with load.
    assert rows[-1].offered > rows[0].offered
    assert rows[-1].attempts > rows[0].attempts

    # Drops dominate at the top load but not at the bottom.
    assert rows[-1].dropped > rows[-1].established * 1.5
    assert rows[0].dropped < rows[0].attempts

    # Collisions amplify attempts: near saturation each established
    # circuit cost several probes (paper: 718 attempts for 187 circuits).
    top = rows[-1]
    assert top.attempts >= 2 * top.established

    # Established circuits never exceed the VC capacity of the links.
    for row in rows:
        assert row.established <= 8 * 24
