"""Figure 9 — the (2x2) fat mesh under mixed traffic.

Paper's claims: "VBR performance remains good for smaller proportions
of VBR traffic (40% and 60%) even for a total input load of 0.9 ...
Only at a load of 0.9 with 80% of traffic being VBR, does VBR
performance degrade"; and "for any given load, average latency of
best-effort traffic increases with increasing proportion of VBR
traffic" (Fig. 9c).
"""

from conftest import run_once

from repro.experiments.figures import run_fig9
from repro.experiments.report import figure_to_text
from repro.experiments.validation import check_claims, claims_to_text


def bench_fig9_fat_mesh(benchmark, profile, executor):
    fig = run_once(benchmark, lambda: run_fig9(profile, executor=executor))
    print()
    print(figure_to_text(fig, show_be_latency=True))
    results = check_claims(fig)
    print()
    print(claims_to_text(results))
    failed = [r for r in results if not r.passed]
    assert not failed, f"paper claims failed: {[r.claim for r in failed]}"
