"""Figure 6 — number of VCs and crossbar capability (100:0 traffic).

Paper's claims: "the 16 VC case gives jitter-free performance up to a
higher load compared to the 4 and 8 VC cases"; a full crossbar with
4 VCs "shows better performance than 8 VCs with multiplexed crossbar
and competitive performance compared to the 16 VC results".
"""

from conftest import run_once

from repro.experiments.figures import run_fig6
from repro.experiments.report import figure_to_text
from repro.experiments.validation import check_claims, claims_to_text


def bench_fig6_vcs_and_crossbar(benchmark, profile, executor):
    fig = run_once(benchmark, lambda: run_fig6(profile, executor=executor))
    print()
    print(figure_to_text(fig))
    results = check_claims(fig)
    print()
    print(claims_to_text(results))
    failed = [r for r in results if not r.passed]
    assert not failed, f"paper claims failed: {[r.claim for r in failed]}"
