"""Figure 4 — CBR vs VBR traffic (16 VCs, 400 Mbps, no best-effort).

Paper's claim: both classes "exhibit nearly identical performance, with
the CBR traffic experiencing jitter-free performance for slightly
higher load" — constant frames are intrinsically easier to deliver on
time than normally-distributed ones.
"""

from conftest import run_once

from repro.analysis import dominates, max_jitter_free_load
from repro.experiments.figures import run_fig4
from repro.experiments.report import figure_to_text
from repro.experiments.validation import check_claims, claims_to_text


def bench_fig4_cbr_vs_vbr(benchmark, profile, executor):
    fig = run_once(benchmark, lambda: run_fig4(profile, executor=executor))
    print()
    print(figure_to_text(fig))
    results = check_claims(fig)
    print()
    print(claims_to_text(results))
    failed = [r for r in results if not r.passed]
    assert not failed, f"paper claims failed: {[r.claim for r in failed]}"
