"""Figure 3 — Virtual Clock vs FIFO scheduling (16 VCs, 80:20 mix).

Paper's claim: the FIFO router's d and sigma_d "start growing beyond a
load of 0.8", while the Virtual Clock router delivers jitter-free up to
a link load of 0.96.
"""

from conftest import run_once

from repro.analysis import dominates, max_jitter_free_load
from repro.experiments.figures import run_fig3
from repro.experiments.report import figure_to_text
from repro.experiments.validation import check_claims, claims_to_text


def bench_fig3_virtual_clock_vs_fifo(benchmark, profile, executor):
    fig = run_once(benchmark, lambda: run_fig3(profile, executor=executor))
    print()
    print(figure_to_text(fig))
    results = check_claims(fig)
    print()
    print(claims_to_text(results))
    failed = [r for r in results if not r.passed]
    assert not failed, f"paper claims failed: {[r.claim for r in failed]}"
