"""Benchmark harness configuration.

Every benchmark regenerates one figure/table of the paper's evaluation,
prints the reproduced rows/series (compare them against EXPERIMENTS.md),
and asserts the paper's qualitative shape.

The workload profile is selected with the ``REPRO_BENCH_PROFILE``
environment variable:

* ``quick``   (default) — scale 40, ~30 s-2 min per figure;
* ``default`` — scale 20, the EXPERIMENTS.md setting;
* ``full``    — paper-faithful scale 1 (hours; for final validation).
"""

import os

import pytest

from repro.experiments.figures import PROFILES


@pytest.fixture(scope="session")
def profile():
    """The RunProfile benchmarks execute under."""
    name = os.environ.get("REPRO_BENCH_PROFILE", "quick")
    try:
        return PROFILES[name]
    except KeyError:
        raise pytest.UsageError(
            f"REPRO_BENCH_PROFILE={name!r}; expected one of {sorted(PROFILES)}"
        )


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Simulation sweeps are deterministic and expensive; a single round
    both times the sweep and returns its data for shape assertions.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
