"""Benchmark harness configuration.

Every benchmark regenerates one figure/table of the paper's evaluation,
prints the reproduced rows/series (compare them against EXPERIMENTS.md),
and asserts the paper's qualitative shape.

The workload profile is selected with the ``REPRO_BENCH_PROFILE``
environment variable:

* ``quick``   (default) — scale 40, ~30 s-2 min per figure;
* ``default`` — scale 20, the EXPERIMENTS.md setting;
* ``full``    — paper-faithful scale 1 (hours; for final validation).

``REPRO_BENCH_JOBS=N`` runs each sweep's points in N worker processes;
per-point results are bit-identical to the serial run, so the shape
assertions are unaffected and only the wall clock changes.
"""

import os

import pytest

from repro.experiments.figures import PROFILES
from repro.experiments.parallel import ParallelSweepExecutor


@pytest.fixture(scope="session")
def profile():
    """The RunProfile benchmarks execute under."""
    name = os.environ.get("REPRO_BENCH_PROFILE", "quick")
    try:
        return PROFILES[name]
    except KeyError:
        raise pytest.UsageError(
            f"REPRO_BENCH_PROFILE={name!r}; expected one of {sorted(PROFILES)}"
        )


@pytest.fixture(scope="session")
def executor():
    """Sweep executor from REPRO_BENCH_JOBS (None = the serial path)."""
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    if jobs < 1:
        raise pytest.UsageError(f"REPRO_BENCH_JOBS must be >= 1, got {jobs}")
    if jobs == 1:
        return None
    return ParallelSweepExecutor(jobs=jobs)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Simulation sweeps are deterministic and expensive; a single round
    both times the sweep and returns its data for shape assertions.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
