"""Event-driven invariant checking over the trace stream.

:class:`InvariantChecker` is a :class:`~repro.obs.sinks.TraceSink` that
replays the flit lifecycle from the event stream and raises
:class:`~repro.errors.InvariantViolation` the moment the simulator's
story stops adding up:

* **in-order injection** — an NI emits each message's flits 0..size-1
  with no gaps or repeats;
* **monotone worm progress** — at any (router, input port, VC) a
  message's flits cross the crossbar strictly in order (wormhole flow
  control admits nothing else);
* **in-order ejection** — a sink consumes a message's flits in strictly
  increasing order, and a tail ejection implies the whole worm arrived;
* **flit conservation** (:meth:`InvariantChecker.finish`) — every flit
  put on a wire is ejected, destroyed by a fault, purged by a kill, or
  still buffered in a router/link at the end of the run — per message
  and in aggregate;
* **credit consistency** (:func:`check_credits`, run periodically while
  events flow and again at :meth:`~InvariantChecker.finish`) — for
  every wired input VC, the sender-side credit counter equals the
  buffer capacity minus buffered flits minus flits on the wire.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.errors import InvariantViolation
from repro.obs import events as ev
from repro.obs.sinks import TraceSink


def check_credits(network) -> None:
    """Audit every credit counter against buffer + wire occupancy.

    The sender-side counter (an NI VC for host-injection links, the
    upstream :class:`~repro.router.buffers.OutputVC` for inter-router
    channels) must equal the downstream input VC's free space minus the
    flits still in flight on the wire — credits are decremented at
    send time, before the flit lands.
    """
    for link in network.links:
        router = link.dest_router
        if router is None:
            continue  # ejection link: the sink consumes at link rate
        on_wire: Dict[int, int] = {}
        for entry in link.pending:
            vc_index = entry[3]
            on_wire[vc_index] = on_wire.get(vc_index, 0) + 1
        for ivc in router.inputs[link.dest_port]:
            sender = ivc.credit_sink
            if sender is None:
                continue
            expected = (
                ivc.capacity - ivc.buffered - on_wire.get(ivc.index, 0)
            )
            if sender.credits != expected:
                raise InvariantViolation(
                    f"credit drift on {link.label} vc {ivc.index}: sender "
                    f"holds {sender.credits} credits, but capacity "
                    f"{ivc.capacity} - buffered {ivc.buffered} - on-wire "
                    f"{on_wire.get(ivc.index, 0)} = {expected}"
                )


class InvariantChecker(TraceSink):
    """Validate the flit lifecycle live, from the event stream.

    Install alongside any other sink (see
    :class:`~repro.obs.sinks.MultiSink`); it must see the *full* event
    stream — kind filtering would blind the conservation ledger.  Pass
    the network to enable periodic + final structural checks
    (:func:`check_credits`, router bookkeeping); ``credit_interval``
    is the event count between periodic credit audits (0 disables
    them, the final audit still runs).
    """

    def __init__(self, network=None, credit_interval: int = 4096) -> None:
        self.network = network
        self.credit_interval = credit_interval
        self.events_seen = 0
        self.checks_run = 0
        #: msg -> declared size (from the header injection event)
        self._size: Dict[int, int] = {}
        #: msg -> flits the NI put on the injection wire
        self._sent: Dict[int, int] = {}
        #: msg -> flits consumed by a host sink
        self._ejected: Dict[int, int] = {}
        #: msg -> highest flit index ejected so far
        self._last_eject: Dict[int, int] = {}
        #: msg ids whose tail flit was ejected
        self._tail_ejected: Set[int] = set()
        #: msg -> flits destroyed by link faults
        self._lost: Dict[int, int] = {}
        #: msg -> flits purged from routers/links by kill_message
        self._purged: Dict[int, int] = {}
        #: (msg, router, port, vc) -> next expected crossbar flit index
        self._xbar_expect: Dict[Tuple[int, int, int, int], int] = {}
        #: (router, port, vc, msg) grants outstanding (alloc w/o release)
        self._granted: Set[Tuple[int, int, int, int]] = set()

    # -- the sink interface ---------------------------------------------

    def on_event(self, kind: str, cycle: int, fields: dict) -> None:
        self.events_seen += 1
        if kind == ev.FLIT_INJECT:
            self._on_inject(fields)
        elif kind == ev.FLIT_EJECT:
            self._on_eject(fields)
        elif kind == ev.XBAR:
            self._on_xbar(fields)
        elif kind == ev.FLIT_LOST:
            msg = fields["msg"]
            self._lost[msg] = self._lost.get(msg, 0) + 1
        elif kind == ev.PURGE:
            self._on_purge(fields)
        elif kind == ev.VC_ALLOC:
            self._granted.add(
                (fields["router"], fields["port"], fields["vc"], fields["msg"])
            )
        elif kind == ev.VC_RELEASE:
            self._on_release(fields)
        if (
            self.credit_interval
            and self.network is not None
            and self.events_seen % self.credit_interval == 0
        ):
            check_credits(self.network)
            self.checks_run += 1

    def close(self) -> None:
        pass

    # -- per-kind checks -------------------------------------------------

    def _on_inject(self, fields: dict) -> None:
        msg = fields["msg"]
        flit = fields["flit"]
        expected = self._sent.get(msg, 0)
        if flit != expected:
            raise InvariantViolation(
                f"message {msg}: NI sent flit {flit}, expected {expected} "
                f"(injection must be in order, gap-free)"
            )
        if flit == 0:
            self._size[msg] = fields["size"]
        if flit >= self._size.get(msg, flit + 1):
            raise InvariantViolation(
                f"message {msg}: flit {flit} beyond declared size "
                f"{self._size[msg]}"
            )
        self._sent[msg] = expected + 1

    def _on_eject(self, fields: dict) -> None:
        msg = fields["msg"]
        flit = fields["flit"]
        last = self._last_eject.get(msg, -1)
        if flit <= last:
            raise InvariantViolation(
                f"message {msg}: ejected flit {flit} after flit {last} "
                f"(ejection order must be strictly increasing)"
            )
        self._last_eject[msg] = flit
        self._ejected[msg] = self._ejected.get(msg, 0) + 1
        if fields["tail"]:
            size = self._size.get(msg)
            if size is not None and flit != size - 1:
                raise InvariantViolation(
                    f"message {msg}: tail ejected at flit {flit}, "
                    f"size is {size}"
                )
            self._tail_ejected.add(msg)

    def _on_xbar(self, fields: dict) -> None:
        msg = fields["msg"]
        flit = fields["flit"]
        key = (msg, fields["router"], fields["port"], fields["vc"])
        expected = self._xbar_expect.get(key, 0)
        if flit != expected:
            raise InvariantViolation(
                f"message {msg}: router {fields['router']} port "
                f"{fields['port']} vc {fields['vc']} crossed flit {flit}, "
                f"expected {expected} (worm progress must be monotone)"
            )
        size = self._size.get(msg)
        if size is not None and flit == size - 1:
            # tail crossed: a cyclic detour walk may revisit this VC,
            # restarting at flit 0
            self._xbar_expect[key] = 0
        else:
            self._xbar_expect[key] = flit + 1

    def _on_purge(self, fields: dict) -> None:
        msg = fields["msg"]
        dropped = fields["dropped"]
        ni = fields["ni"]
        if not 0 <= ni <= dropped:
            raise InvariantViolation(
                f"message {msg}: purge dropped {dropped} with {ni} from "
                f"the NI (need 0 <= ni <= dropped)"
            )
        # only flits already on a wire count against the sent ledger
        self._purged[msg] = self._purged.get(msg, 0) + (dropped - ni)

    def _on_release(self, fields: dict) -> None:
        key = (
            fields["router"],
            fields["port"],
            fields["vc"],
            fields["msg"],
        )
        if key not in self._granted:
            raise InvariantViolation(
                f"output VC ({fields['port']},{fields['vc']}) of router "
                f"{fields['router']} released for message {fields['msg']} "
                f"without a matching grant"
            )
        self._granted.discard(key)

    # -- end-of-run audit ------------------------------------------------

    def finish(self, network=None) -> None:
        """Close the ledger: conservation per message and in aggregate.

        Call after the run (the network need not be drained — flits
        still buffered in routers/links are accounted as in flight).
        """
        network = network if network is not None else self.network
        in_flight_total = 0
        for msg, sent in self._sent.items():
            size = self._size.get(msg, sent)
            ejected = self._ejected.get(msg, 0)
            lost = self._lost.get(msg, 0)
            purged = self._purged.get(msg, 0)
            accounted = ejected + lost + purged
            leftover = sent - accounted
            if leftover < 0:
                raise InvariantViolation(
                    f"message {msg}: {sent} flits sent but {accounted} "
                    f"accounted (ejected {ejected} + lost {lost} + purged "
                    f"{purged}) — a flit exited twice"
                )
            if sent > size:
                raise InvariantViolation(
                    f"message {msg}: {sent} flits sent, size is {size}"
                )
            if msg in self._tail_ejected and ejected != size:
                raise InvariantViolation(
                    f"message {msg}: tail ejected but only {ejected} of "
                    f"{size} flits arrived"
                )
            in_flight_total += leftover
        if network is not None:
            buffered = sum(r.buffered_flits() for r in network.routers)
            buffered += sum(link.in_flight for link in network.links)
            if in_flight_total != buffered:
                raise InvariantViolation(
                    f"conservation ledger leaves {in_flight_total} flits in "
                    f"flight, but routers+links hold {buffered}"
                )
            check_credits(network)
            self.checks_run += 1
            network.check_invariants()
