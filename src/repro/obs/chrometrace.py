"""Chrome-trace / Perfetto JSON export of a trace-event stream.

Produces the `Trace Event Format`_ consumed by ``chrome://tracing`` and
https://ui.perfetto.dev: one *complete* ("X") slice per worm from header
injection to tail ejection on a per-source-node track, plus an
*instant* ("i") event for every lifecycle record so the flit-level
detail stays zoomable under the slices.  Timestamps are simulator
cycles written as microseconds — absolute wall time is meaningless for
a cycle-accurate simulation, so one cycle renders as one "us".

.. _Trace Event Format: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple

from repro.obs import events as ev

#: synthetic "process" ids grouping the timeline tracks
PID_WORMS = 1
PID_ROUTERS = 2
PID_LINKS = 3
PID_CONTROL = 4

_PROCESS_NAMES = {
    PID_WORMS: "worms (per source node)",
    PID_ROUTERS: "routers",
    PID_LINKS: "links",
    PID_CONTROL: "recovery + health",
}


def chrome_trace(records: Iterable[Tuple[str, int, dict]]) -> dict:
    """Convert ``(kind, cycle, fields)`` records to a Chrome-trace dict."""
    trace_events: List[dict] = []
    #: msg -> (inject cycle, source node)
    born: Dict[int, Tuple[int, int]] = {}
    link_tids: Dict[str, int] = {}

    def link_tid(label: str) -> int:
        tid = link_tids.get(label)
        if tid is None:
            tid = len(link_tids)
            link_tids[label] = tid
        return tid

    for kind, cycle, fields in records:
        if kind == ev.FLIT_INJECT:
            if fields["flit"] == 0:
                born[fields["msg"]] = (cycle, fields["node"])
            pid, tid = PID_WORMS, fields["node"]
        elif kind == ev.FLIT_EJECT:
            msg = fields["msg"]
            if fields["tail"] and msg in born:
                start, node = born.pop(msg)
                trace_events.append(
                    {
                        "name": f"msg {msg}",
                        "cat": "worm",
                        "ph": "X",
                        "ts": start,
                        "dur": max(cycle - start, 1),
                        "pid": PID_WORMS,
                        "tid": node,
                        "args": {"dst": fields["node"]},
                    }
                )
            pid, tid = PID_WORMS, fields["node"]
        elif kind in (ev.ROUTE, ev.VC_ALLOC, ev.VC_RELEASE, ev.SCHED, ev.XBAR):
            pid, tid = PID_ROUTERS, fields["router"]
        elif kind in (ev.LINK_TX, ev.FLIT_LOST, ev.FLIT_CORRUPT, ev.HEALTH):
            pid, tid = PID_LINKS, link_tid(fields["link"])
        else:  # purge / retransmit
            pid, tid = PID_CONTROL, 0
        trace_events.append(
            {
                "name": kind,
                "cat": "flit",
                "ph": "i",
                "s": "t",
                "ts": cycle,
                "pid": pid,
                "tid": tid,
                "args": dict(fields),
            }
        )
    for pid, name in _PROCESS_NAMES.items():
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": name},
            }
        )
    for label, tid in link_tids.items():
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": PID_LINKS,
                "tid": tid,
                "args": {"name": label},
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"ts_unit": "simulator cycles"},
    }


def write_chrome_trace(
    path, records: Iterable[Tuple[str, int, dict]]
) -> int:
    """Write the Perfetto-loadable JSON; returns the event count."""
    trace = chrome_trace(records)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, separators=(",", ":"))
    return len(trace["traceEvents"])
