"""Trace sinks and the install/uninstall plumbing.

The overhead contract: every instrumented component carries a ``trace``
attribute that is ``None`` by default, and each emission site is::

    if self.trace is not None:
        self.trace.on_event(KIND, clock, {...})

so a run without tracing pays one attribute load and a falsy check per
site — nothing else is constructed.  Tracing observes only; it never
touches an RNG or mutates simulation state, so a traced run's
:class:`~repro.metrics.collector.RunMetrics` are bit-identical to an
untraced one (pinned by ``tests/test_obs_trace.py``).

Event-kind filtering lives in the recording sinks (``events=`` on
:class:`JsonlTraceSink` / :class:`RingBufferSink`), not in the emission
hooks, so an :class:`~repro.obs.invariants.InvariantChecker` sharing
the run via :class:`MultiSink` always sees the full stream.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter, deque
from typing import Dict, Iterable, List, Optional, Tuple

Record = Tuple[str, int, dict]


class TraceSink:
    """Protocol for trace consumers (subclassing is optional).

    Anything with an ``on_event(kind, cycle, fields)`` method works;
    ``close`` is called once when the owning run finishes.
    """

    def on_event(self, kind: str, cycle: int, fields: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


class JsonlTraceSink(TraceSink):
    """Append one JSON object per event to a file.

    Records are serialised with sorted keys and no whitespace, so the
    byte stream of a deterministic run is itself deterministic (the
    golden-trace digest test hashes it).
    """

    def __init__(self, path, events: Optional[Iterable[str]] = None) -> None:
        self.path = path
        self._wanted = None if events is None else frozenset(events)
        self._file = open(path, "w", encoding="utf-8")
        self.records_written = 0

    def on_event(self, kind: str, cycle: int, fields: dict) -> None:
        wanted = self._wanted
        if wanted is not None and kind not in wanted:
            return
        record = {"kind": kind, "cycle": cycle}
        record.update(fields)
        self._file.write(
            json.dumps(record, sort_keys=True, separators=(",", ":"))
        )
        self._file.write("\n")
        self.records_written += 1

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


class RingBufferSink(TraceSink):
    """Keep the last ``capacity`` events in memory (``None`` = unbounded)."""

    def __init__(
        self,
        capacity: Optional[int] = None,
        events: Optional[Iterable[str]] = None,
    ) -> None:
        self._wanted = None if events is None else frozenset(events)
        self._records: "deque[Record]" = deque(maxlen=capacity)

    def on_event(self, kind: str, cycle: int, fields: dict) -> None:
        wanted = self._wanted
        if wanted is not None and kind not in wanted:
            return
        self._records.append((kind, cycle, dict(fields)))

    @property
    def records(self) -> List[Record]:
        return list(self._records)

    def close(self) -> None:
        pass


class CountingSink(TraceSink):
    """Count events by kind — the cheapest possible live probe."""

    def __init__(self) -> None:
        self.counts: "Counter[str]" = Counter()

    def on_event(self, kind: str, cycle: int, fields: dict) -> None:
        self.counts[kind] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def close(self) -> None:
        pass


class MultiSink(TraceSink):
    """Fan one event stream out to several sinks."""

    def __init__(self, sinks: Iterable[TraceSink]) -> None:
        self.sinks = list(sinks)

    def on_event(self, kind: str, cycle: int, fields: dict) -> None:
        for sink in self.sinks:
            sink.on_event(kind, cycle, fields)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def _traced_components(network) -> list:
    """Every object in ``network`` that owns a ``trace`` attribute.

    Must run *after* optional extras (transport, health monitor) are
    installed — they are trace emitters too.
    """
    components = [network]
    components.extend(network.routers)
    components.extend(network.links)
    components.extend(network.interfaces.values())
    components.extend(network.sinks.values())
    if network.transport is not None:
        components.append(network.transport)
    if network.health_monitor is not None:
        components.append(network.health_monitor)
    return components


def install_tracing(network, sink: TraceSink) -> TraceSink:
    """Point every instrumented component of ``network`` at ``sink``.

    Install after :func:`repro.faults.install_recovery` /
    :func:`repro.network.health.install_health` so the transport and
    monitor are wired too.  Returns ``sink`` for chaining.
    """
    for component in _traced_components(network):
        component.trace = sink
    return sink


def uninstall_tracing(network) -> None:
    """Detach tracing; the network is back to zero-overhead hooks."""
    for component in _traced_components(network):
        component.trace = None


def stream_digest(path) -> str:
    """Canonical SHA-256 of a JSONL trace file.

    Message ids come from a process-global counter, so two identical
    runs in one process emit identical streams *modulo an id offset*.
    The digest densifies every ``msg``/``clone`` id to its order of
    first appearance before hashing, making it a stable fingerprint of
    the run's behaviour (the golden-trace regression test pins it).
    """
    remap: Dict[int, int] = {}

    def canon(value: int) -> int:
        if value not in remap:
            remap[value] = len(remap)
        return remap[value]

    digest = hashlib.sha256()
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            record = json.loads(line)
            for key in ("msg", "clone"):
                if key in record and record[key] >= 0:
                    record[key] = canon(record[key])
            digest.update(
                json.dumps(
                    record, sort_keys=True, separators=(",", ":")
                ).encode()
            )
            digest.update(b"\n")
    return digest.hexdigest()


def counts_by_kind(records: Iterable[Record]) -> Dict[str, int]:
    """Tally ``(kind, cycle, fields)`` records by kind (reporting aid)."""
    counts: "Counter[str]" = Counter()
    for kind, _, _ in records:
        counts[kind] += 1
    return dict(counts)
