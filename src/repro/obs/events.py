"""Typed trace-event taxonomy for the observability layer.

Every instrumentation point in the simulator emits one of the event
kinds below.  An event is a flat record — ``kind``, ``cycle``, plus the
kind's fixed field set — so a JSONL stream of them is trivially
greppable/jq-able and the schema can be validated mechanically
(:func:`validate_event`, used by ``mediaworm trace`` and the test
suite).

The taxonomy follows the flit lifecycle through the PROUD pipeline:

========== ==========================================================
kind        emitted when
========== ==========================================================
flit_inject an NI puts one flit on its host-injection link
route       a header flit's routing decision completes (stage 2)
vc_alloc    an output VC is granted to a message (stage 3)
sched       a multiplexer scheduler picks among >=1 candidate VCs
            (``point`` ``A`` = crossbar input mux, ``C`` = output VC
            mux; carries the policy so Virtual Clock ticks and FIFO
            picks are distinguishable)
xbar        one flit crosses the crossbar into its output VC (stage 4)
link_tx     one flit leaves a router output port onto a link (stage 5)
vc_release  a tail flit frees its output VC
flit_eject  a destination host sink consumes one flit
flit_lost   a link fault (or down window) destroyed an in-flight flit
flit_corrupt a link fault corrupted a delivered flit
purge       ``Network.kill_message`` dropped a message's live flits
retransmit  the end-to-end transport retried (or abandoned) a message
health      a link-health record changed state (up/suspect/down/...)
========== ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError, InvariantViolation

FLIT_INJECT = "flit_inject"
FLIT_EJECT = "flit_eject"
ROUTE = "route"
VC_ALLOC = "vc_alloc"
VC_RELEASE = "vc_release"
SCHED = "sched"
XBAR = "xbar"
LINK_TX = "link_tx"
FLIT_LOST = "flit_lost"
FLIT_CORRUPT = "flit_corrupt"
PURGE = "purge"
RETRANSMIT = "retransmit"
HEALTH = "health"

#: field name -> accepted python types, per event kind.  ``bool`` is
#: listed explicitly where meant (bool is an int subclass, so int
#: fields accept it implicitly — but not the reverse).
EVENT_SCHEMA: Dict[str, Dict[str, tuple]] = {
    FLIT_INJECT: {
        "node": (int,),
        "vc": (int,),
        "msg": (int,),
        "flit": (int,),
        "size": (int,),
        "cls": (str,),
    },
    FLIT_EJECT: {
        "node": (int,),
        "msg": (int,),
        "flit": (int,),
        "tail": (bool,),
    },
    ROUTE: {
        "router": (int,),
        "port": (int,),
        "vc": (int,),
        "msg": (int,),
        "out": (int,),
    },
    VC_ALLOC: {
        "router": (int,),
        "port": (int,),
        "vc": (int,),
        "msg": (int,),
    },
    VC_RELEASE: {
        "router": (int,),
        "port": (int,),
        "vc": (int,),
        "msg": (int,),
    },
    SCHED: {
        "router": (int,),
        "point": (str,),
        "port": (int,),
        "policy": (str,),
        "vc": (int,),
        "stamp": (int, float),
        "cands": (int,),
    },
    XBAR: {
        "router": (int,),
        "port": (int,),
        "vc": (int,),
        "out_port": (int,),
        "out_vc": (int,),
        "msg": (int,),
        "flit": (int,),
    },
    LINK_TX: {
        "link": (str,),
        "msg": (int,),
        "flit": (int,),
        "vc": (int,),
        "arrive": (int,),
    },
    FLIT_LOST: {
        "link": (str,),
        "msg": (int,),
        "flit": (int,),
        "down": (bool,),
    },
    FLIT_CORRUPT: {
        "link": (str,),
        "msg": (int,),
        "flit": (int,),
    },
    PURGE: {
        "msg": (int,),
        "dropped": (int,),
        "ni": (int,),
    },
    RETRANSMIT: {
        "msg": (int,),
        "clone": (int,),
        "retries": (int,),
        "delay": (int,),
        "abandoned": (bool,),
    },
    HEALTH: {
        "link": (str,),
        "state": (str,),
        "prev": (str,),
    },
}

ALL_EVENTS: Tuple[str, ...] = tuple(sorted(EVENT_SCHEMA))


def check_event_names(names) -> Tuple[str, ...]:
    """Validate a collection of event-kind names; return it as a tuple."""
    names = tuple(names)
    unknown = [name for name in names if name not in EVENT_SCHEMA]
    if unknown:
        raise ConfigurationError(
            f"unknown trace event kind(s) {unknown!r}; "
            f"known kinds: {', '.join(ALL_EVENTS)}"
        )
    return names


def validate_event(record: dict) -> None:
    """Raise :class:`InvariantViolation` unless ``record`` fits the schema.

    A record is the flat JSONL form: ``kind``, a non-negative integer
    ``cycle``, and exactly the kind's field set with the right types.
    """
    kind = record.get("kind")
    schema = EVENT_SCHEMA.get(kind)
    if schema is None:
        raise InvariantViolation(f"unknown trace event kind {kind!r}")
    cycle = record.get("cycle")
    if type(cycle) is not int or cycle < 0:
        raise InvariantViolation(
            f"{kind}: cycle must be a non-negative int, got {cycle!r}"
        )
    expected = set(schema)
    actual = set(record) - {"kind", "cycle"}
    if actual != expected:
        raise InvariantViolation(
            f"{kind}: field set mismatch: missing {sorted(expected - actual)}, "
            f"unexpected {sorted(actual - expected)}"
        )
    for name, types in schema.items():
        value = record[name]
        if bool not in types and isinstance(value, bool):
            raise InvariantViolation(
                f"{kind}.{name}: expected {types}, got bool {value!r}"
            )
        if not isinstance(value, types):
            raise InvariantViolation(
                f"{kind}.{name}: expected {types}, got {type(value).__name__} "
                f"{value!r}"
            )


@dataclass(frozen=True)
class TraceSpec:
    """Experiment-level tracing request (picklable, sweep-safe).

    ``path`` — JSONL event stream destination (``None`` = no file).
    ``events`` — event kinds to record (``None`` = all).  Filtering
    happens in the file/ring sinks, never in the emission hooks, so an
    :class:`~repro.obs.invariants.InvariantChecker` riding the same run
    always sees the full stream.
    ``chrome_path`` — also export a Chrome-trace/Perfetto JSON timeline.
    ``check`` — ride an :class:`~repro.obs.invariants.InvariantChecker`
    on the run and audit the conservation ledger when it finishes.
    """

    path: Optional[str] = None
    events: Optional[Tuple[str, ...]] = None
    chrome_path: Optional[str] = None
    check: bool = False

    def __post_init__(self) -> None:
        if self.events is not None:
            object.__setattr__(
                self, "events", check_event_names(self.events)
            )

    def to_dict(self) -> dict:
        """JSON-plain form (chaos scenarios, repro files)."""
        return {
            "path": self.path,
            "events": None if self.events is None else list(self.events),
            "chrome_path": self.chrome_path,
            "check": self.check,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceSpec":
        """Rebuild a spec from :meth:`to_dict` output (validated)."""
        events = data.get("events")
        return cls(
            path=data.get("path"),
            events=None if events is None else tuple(events),
            chrome_path=data.get("chrome_path"),
            check=bool(data.get("check", False)),
        )
