"""Per-component wall-time profiling of the simulation loop.

A :class:`LoopProfiler` installed as ``network.profiler`` makes both
cycle loops (active-set and legacy) bracket each per-cycle phase —
event firing, link delivery, NI steps, router steps — with
``perf_counter`` reads, accumulating where the wall time actually goes
(the question PR2's active-set work kept answering by hand).  Without a
profiler the loops pay a single ``is None`` check per phase, preserving
the zero-overhead contract; with one, the *simulation* is still
bit-identical — only wall time is observed.

The totals surface as ``RunMetrics.profile`` (see
:meth:`repro.metrics.collector.MetricsCollector.attach_profiler`).
"""

from __future__ import annotations

from typing import Dict


class LoopProfiler:
    """Accumulated wall seconds per simulation-loop phase."""

    __slots__ = ("events_s", "links_s", "nis_s", "routers_s", "cycles")

    def __init__(self) -> None:
        #: scheduled-event firing (injections, probes, timeouts)
        self.events_s = 0.0
        #: link delivery (includes fault/health processing)
        self.links_s = 0.0
        #: host-interface injection steps
        self.nis_s = 0.0
        #: router pipeline steps (the ActivationScheduler-selected set)
        self.routers_s = 0.0
        #: cycles actually executed (clock jumps excluded)
        self.cycles = 0

    @property
    def total_s(self) -> float:
        return self.events_s + self.links_s + self.nis_s + self.routers_s

    def summary(self) -> Dict[str, float]:
        """Flat dict merged into ``RunMetrics.profile``."""
        return {
            "loop_events_s": self.events_s,
            "loop_links_s": self.links_s,
            "loop_nis_s": self.nis_s,
            "loop_routers_s": self.routers_s,
            "loop_total_s": self.total_s,
            "loop_cycles_executed": float(self.cycles),
        }
