"""Validate a JSONL trace file against the event schema.

Usage::

    python -m repro.obs TRACE.jsonl [--digest] [--quiet]

Streams the file, checks every record against
:data:`repro.obs.EVENT_SCHEMA` (known kind, exact field set, correct
types), and prints per-kind counts.  Exits non-zero on the first
malformed record, naming the line.  ``--digest`` also prints the
canonical :func:`repro.obs.stream_digest` fingerprint.  ``make
trace-smoke`` runs this over a fresh ``mediaworm trace`` run.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter

from repro.errors import InvariantViolation
from repro.obs.events import validate_event
from repro.obs.sinks import stream_digest


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__.splitlines()[0]
    )
    parser.add_argument("trace", help="JSONL trace file to validate")
    parser.add_argument(
        "--digest",
        action="store_true",
        help="also print the canonical stream digest",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-kind table"
    )
    args = parser.parse_args(argv)

    counts: "Counter[str]" = Counter()
    with open(args.trace, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            try:
                record = json.loads(line)
                validate_event(record)
            except (ValueError, InvariantViolation) as exc:
                print(
                    f"{args.trace}:{lineno}: invalid trace record: {exc}",
                    file=sys.stderr,
                )
                return 1
            counts[record["kind"]] += 1

    total = sum(counts.values())
    if not args.quiet:
        for kind in sorted(counts):
            print(f"  {kind:<14} {counts[kind]:>10}")
    print(f"{args.trace}: {total} events, all valid")
    if args.digest:
        print(f"digest: {stream_digest(args.trace)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
