"""Structured tracing, profiling, and invariant checking (``repro.obs``).

The observability layer: typed flit-lifecycle events
(:mod:`repro.obs.events`) emitted from instrumentation points across
the router/network/transport stack into pluggable sinks
(:mod:`repro.obs.sinks`), with an event-driven
:class:`~repro.obs.invariants.InvariantChecker`, a Chrome-trace/Perfetto
exporter (:mod:`repro.obs.chrometrace`), and a simulation-loop profiler
(:mod:`repro.obs.profile`).  Zero overhead when disabled: every hook is
a single ``is None`` check.  See ``docs/simulator-internals.md``
("Tracing and invariants") for the taxonomy and the overhead contract.
"""

from repro.obs.chrometrace import chrome_trace, write_chrome_trace
from repro.obs.events import (
    ALL_EVENTS,
    EVENT_SCHEMA,
    TraceSpec,
    check_event_names,
    validate_event,
)
from repro.obs.invariants import InvariantChecker, check_credits
from repro.obs.profile import LoopProfiler
from repro.obs.sinks import (
    CountingSink,
    JsonlTraceSink,
    MultiSink,
    RingBufferSink,
    TraceSink,
    counts_by_kind,
    install_tracing,
    stream_digest,
    uninstall_tracing,
)

__all__ = [
    "ALL_EVENTS",
    "EVENT_SCHEMA",
    "TraceSpec",
    "check_event_names",
    "validate_event",
    "InvariantChecker",
    "check_credits",
    "LoopProfiler",
    "chrome_trace",
    "write_chrome_trace",
    "CountingSink",
    "JsonlTraceSink",
    "MultiSink",
    "RingBufferSink",
    "TraceSink",
    "counts_by_kind",
    "install_tracing",
    "stream_digest",
    "uninstall_tracing",
]
