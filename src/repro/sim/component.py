"""The uniform component step protocol of the simulation datapath.

Everything the cycle loop drives — links, host interfaces, routers, and
sinks — implements one contract::

    step(clock) -> activity

``step`` advances the component by one cycle and returns its *activity*,
an integer the dispatch loop interprets uniformly: zero means the
component did nothing **and** holds no work (it may be dropped from the
active set until something re-activates it); non-zero means it is still
part of the working set.  The per-kind meaning of the value is:

* :class:`repro.network.link.Link` — flits handed to the consumer this
  cycle (the loop's delivery-progress signal for the watchdog); a link
  with flits still on the wire stays active via ``link.pending``.
* :class:`repro.network.interface.HostInterface` — non-zero while the
  interface has queued messages (backlog).
* :class:`repro.router.router.WormholeRouter` — the router's remaining
  work count (busy VCs across all pipeline stages).
* :class:`repro.network.interface.HostSink` — always zero; sinks are
  passive consumers driven by their ejection link and never register.

Spurious steps are harmless by contract: a component stepped with
nothing to do no-ops and reports itself idle, exactly as it would under
a full scan.  That property is what lets the active-set loop and the
legacy full-scan loop share one datapath: the legacy loop is simply
``step`` applied to *every* component every executed cycle, while the
active-set loop applies it to the registered active subset (see
:class:`repro.sim.activation.ActivationScheduler` and
``docs/simulator-internals.md``).

Components with knowable future work (links with in-flight flits)
additionally expose ``next_due(clock)`` so the loop can jump the clock
over provably idle cycles; components that must be polled while busy
(interfaces, routers) return the current cycle while active and
``None`` when idle.
"""

from __future__ import annotations

from typing import Optional


class Component:
    """Base class documenting the step protocol (duck typing suffices).

    Subclassing is optional — the dispatch loop never isinstance-checks;
    it only calls ``step``/``next_due``.  The class exists so the
    contract has one canonical definition and so ``repro.sim`` exports
    a nominal type for annotations.
    """

    __slots__ = ()

    def step(self, clock: int) -> int:
        """Advance one cycle; return the component's activity (see module doc)."""
        raise NotImplementedError

    def next_due(self, clock: int) -> Optional[int]:
        """Earliest cycle this component next needs a step, or ``None``.

        The default answers "poll me while I'm active": concrete
        components override this when they can predict their wake time
        (links), which is what makes clock jumps exact.
        """
        raise NotImplementedError
