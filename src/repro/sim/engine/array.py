"""The fused dense-datapath engine (``engine="array"``).

The object engine spends the dense operating points (every VC busy every
cycle) almost entirely on Python call dispatch: one ``step()`` per
component plus one method call per flit per pipeline stage.  This engine
replaces the per-object dispatch with **one interpreter frame per run**
that executes the same four phases per cycle — events, link delivery,
NI injection, router stages 5 → 4 → 2/3 — with every per-flit helper
(``Link.send``/``deliver_due``, ``HostInterface.step``,
``WormholeRouter.accept_flit``, the mux stamp/select methods, the
buffer push/pop methods) inlined over the components' *shared* state
views (``datapath_view()`` on routers, links, and NIs).

State layout
------------

The engine does not fork the simulation state.  All authoritative
datapath state — VC occupancy and head-flit cursors, credit counters,
NI queues, activity sets — stays in the slotted component objects, so
cold paths (message kills, transport timeouts, conservation audits)
observe exactly what the object engine would.  What the engine *does*
extract is the link pipeline's derived hot state: ``_link_head[i]``
mirrors ``links[i].pending[0][0]`` (or a far sentinel when the wire is
idle), maintained by the inlined send/deliver kernels.  The mirror's
representation is size-adaptive: small fabrics (≤ 128 links) use a
plain Python list — indexed loads stay unboxed-cheap and a drained
link may *lazily* keep its active-list slot holding the sentinel,
saving two copy-on-write edits per drain/refill pair — while larger
fabrics switch to a preallocated ``int64`` numpy vector whose
idle-phase clock jumps reduce in C over one contiguous buffer instead
of touching every active link object (the term that grows with
topology size on the 1024-host fabrics; there, drained links
deactivate eagerly because boxed scalar reads make stale entries
expensive).  ``Network._resync_activity`` (the purge/kill path) calls
:meth:`ArrayEngine.resync` to rebuild the mirror whenever a cold path
edits ``pending`` behind the kernels' back.

Kernel ordering
---------------

Per executed cycle, in this exact order (the bit-identical contract
with the object loop):

1. event heap (``fire_due``) — injections, transport timeouts;
2. link delivery, ascending link id — inlined ``accept_flit`` into
   router input VCs, inlined sink ejection at hosts;
3. NI injection, ascending NI id — inlined single-VC fast path and
   candidate scan, lazy Virtual Clock stamping;
4. routers, ascending router id, stages downstream-to-upstream:
   stage 5 (output VC mux + link send), stage 4 (crossbar), stages
   2/3 (routing + output VC arbitration with rotation).

Within a phase the kernels are free to visit per-component work in any
order that is unobservable through shared state, and exploit that to
skip sorting: stage-5 output ports drain in set order (distinct links,
VCs, and commutative counters), and the crossbar also iterates its
input ports unsorted but *defers* its one order-observable side effect
— tail-release appends to the router's shared ``_pending_arb``
worklist — into a buffer flushed in sorted-port order before stages
2/3 consume it.

Cold-path fallback rules
------------------------

The fused kernels implement the dense fault-free datapath only.  A run
with any of the following delegates, for the *whole* ``run()`` call, to
the object loop (``Network._run_object``) — same results, object-path
speed: an installed fault injector, health monitor, trace sink, or
loop profiler; adaptive routing; preemption; or a router
``on_crossbar`` hook.  The check re-runs on every ``run()`` call, so a
network that gains tracing between runs simply stops using the fused
kernels.  Inside a fused run, rare events stay on object code by
construction: event callbacks (injection, transport teardown) run the
ordinary network API, and purges resynchronise the engine through
:meth:`resync`.
"""

from __future__ import annotations

import logging
from operator import itemgetter
from typing import List, Optional

import numpy as np

from repro.core.schedulers import SchedulingPolicy
from repro.core.virtual_clock import BEST_EFFORT_VTICK
from repro.errors import FlowControlError
from repro.router.buffers import acquire_record, release_record
from repro.router.config import RoutingMode
from repro.router.flit import TrafficClass

logger = logging.getLogger(__name__)

#: sentinel arrival for idle links — far beyond any simulated horizon,
#: and small enough that int64 arithmetic can never overflow on it
_FAR = 1 << 62

#: sort key for the crossbar's deferred ``_pending_arb`` appends
_by_port = itemgetter(0)


class ArrayEngine:
    """Fused per-cycle interpreter over the network's shared hot state."""

    name = "array"

    def __init__(self, network) -> None:
        self._net = network
        config = network.config
        # Global datapath flags — one RouterConfig serves every router,
        # so the stamp/select specialisation is network-wide.
        router0 = network.routers[0] if network.routers else None
        if router0 is not None:
            view = router0.datapath_view()
            self._in_vc = (
                view.in_policy.policy == SchedulingPolicy.VIRTUAL_CLOCK
            )
            self._out_vc = (
                view.out_policy.policy == SchedulingPolicy.VIRTUAL_CLOCK
            )
            self._in_stateless = view.in_stateless
            self._out_stateless = view.out_stateless
            self._multiplexed = view.multiplexed
            self._routing_delay = view.routing_delay
            self._arb_delay = view.arb_delay
        self._dyn_part = config.dynamic_partitioning
        self._be_bind = config.be_dst_vc_binding
        #: one RouterConfig serves every router, so the output staging
        #: capacity is a network-wide constant the kernels can hoist
        self._out_cap = config.output_buffer_depth

        #: per-router bound state (RouterDatapathView), indexed by id
        self._router_views = [r.datapath_view() for r in network.routers]

        #: per-link consumer bindings, indexed by link id:
        #: (link, input_vcs, dest_router, dest_rid, sink,
        #:  sink_counts_inline, sink_delivers_inline)
        link_index = {}
        info = []
        for idx, link in enumerate(network.links):
            link_index[id(link)] = idx
            lview = link.datapath_view()
            if lview.dest_router is not None:
                dest = lview.dest_router
                info.append(
                    (
                        link,
                        dest.inputs[lview.dest_port],
                        dest,
                        dest.router_id,
                        None,
                        False,
                        False,
                    )
                )
            else:
                sink = lview.sink
                info.append(
                    (
                        link,
                        None,
                        None,
                        -1,
                        sink,
                        sink.on_flit == network._flit_ejected,
                        sink.on_message == network._message_delivered,
                    )
                )
        self._link_info = info
        self._link_index = link_index

        #: per-NI bindings, indexed by NI scheduler id:
        #: (ni, vcs, active_set, scheduler, stateless, link, link_id,
        #:  latency)
        ni_info = []
        for ni in network._ni_list:
            nview = ni.datapath_view()
            ni_info.append(
                (
                    ni,
                    nview.vcs,
                    nview.active,
                    nview.scheduler,
                    nview.stateless,
                    nview.link,
                    link_index[id(nview.link)],
                    nview.link.latency,
                )
            )
            self._ni_vc = (
                nview.scheduler.policy == SchedulingPolicy.VIRTUAL_CLOCK
            )
        self._ni_info = ni_info

        #: per-router per-port outgoing link ids (−1 where unwired) and
        #: latencies, for the inlined stage-5 send
        self._router_link_ids: List[List[int]] = []
        self._router_latency: List[List[int]] = []
        self._router_links: List[list] = []
        for router in network.routers:
            ids, lats = [], []
            for link in router.out_links:
                if link is None:
                    ids.append(-1)
                    lats.append(0)
                else:
                    ids.append(link_index[id(link)])
                    lats.append(link.latency)
            self._router_link_ids.append(ids)
            self._router_latency.append(lats)
            self._router_links.append(list(router.out_links))

        #: mirror of every link's head arrival (the array-backed hot
        #: state; see the module docstring's state-layout section).
        #: Representation is size-adaptive: a numpy ``int64`` vector
        #: only pays off once the idle-jump reduction spans enough
        #: links (~1 µs fixed call cost vs ~11 ns per element for a
        #: Python-list ``min``); below the crossover a plain list is
        #: faster on both the per-flit stores (no scalar boxing) and
        #: the reduction itself.
        self._head_is_array = len(network.links) > 128
        if self._head_is_array:
            self._link_head = np.full(
                len(network.links), _FAR, dtype=np.int64
            )
        else:
            self._link_head = [_FAR] * len(network.links)

        #: per-router per-port count of unowned output VCs.  When a
        #: port has none, every arbitration attempt on it resolves to
        #: still-waiting (the bound-VC and both partition scans can
        #: only find owned VCs), so stages 2/3 skip the O(VCs) scans.
        #: Rebuilt on every fused-run entry and by :meth:`resync`;
        #: maintained inline at grant (stage 2/3) and release (stage 5).
        self._free_out = [
            [0] * len(view.outputs) for view in self._router_views
        ]

        #: everything the router phases touch, one tuple per router —
        #: a single index + unpack per router per cycle instead of a
        #: dozen attribute loads on the view
        self._router_hot = [
            (
                view.router,
                view.inputs,
                view.outputs,
                view.out_active,
                view.out_ports,
                view.out_flits,
                view.out_selectors,
                view.in_ports,
                view.sendable,
                view.in_selectors,
                view.part,
                view.is_host_port,
                view.route_view.candidates,
                self._router_link_ids[rid],
                self._router_latency[rid],
                self._router_links[rid],
            )
            for rid, view in enumerate(self._router_views)
        ]

    # ------------------------------------------------------------------
    # consistency hooks

    def resync(self) -> None:
        """Rebuild the link head-arrival mirror from the object state.

        Called by ``Network._resync_activity`` after a purge rebuilt
        ``Link.pending`` deques, and at the start of every fused run in
        case a fallback (object-loop) run moved flits in between.
        """
        head = self._link_head
        for idx, entry in enumerate(self._link_info):
            pending = entry[0].pending
            head[idx] = pending[0][0] if pending else _FAR
        for rid, view in enumerate(self._router_views):
            counts = self._free_out[rid]
            for port, ovcs in enumerate(view.outputs):
                free = 0
                for ovc in ovcs:
                    if ovc.owner is None:
                        free += 1
                counts[port] = free

    def fallback_reason(self) -> Optional[str]:
        """Why this run cannot use the fused kernels (None = it can)."""
        net = self._net
        if net.trace is not None:
            return "tracing installed"
        if net.fault_injector is not None:
            return "fault injection installed"
        if net.health_monitor is not None:
            return "health monitoring installed"
        if net.profiler is not None:
            return "loop profiler attached"
        config = net.config
        if config.routing_mode == RoutingMode.ADAPTIVE:
            return "adaptive routing"
        if config.preemption:
            return "preemption enabled"
        for router in net.routers:
            if router.on_crossbar is not None or router.trace is not None:
                return "router hook installed"
        return None

    # ------------------------------------------------------------------
    # the fused run loop

    def run(self, until: int) -> None:
        """Advance the network to ``until`` (dispatch target of Network.run)."""
        reason = self.fallback_reason()
        if reason is not None:
            logger.debug(
                "array engine: %s; delegating run to the object loop", reason
            )
            return self._net._run_object(until)
        self.resync()
        return self._run_fused(until)

    def _run_fused(self, until: int) -> None:
        net = self._net
        clock = net.clock
        events = net.events
        heap = events._heap
        link_sched = net._link_sched
        ni_sched = net._ni_sched
        router_sched = net._router_sched
        link_activate = link_sched.activate
        link_deactivate = link_sched.deactivate
        link_due = link_sched.due
        link_times = link_sched._times
        ni_deactivate = ni_sched.deactivate
        ni_due = ni_sched.due
        ni_times = ni_sched._times
        router_activate = router_sched.activate
        router_deactivate = router_sched.deactivate
        router_due = router_sched.due
        router_times = router_sched._times
        ni_active_set = ni_sched._active
        router_active_set = router_sched._active
        link_info = self._link_info
        ni_info = self._ni_info
        router_hot = self._router_hot
        link_head = self._link_head
        head_is_array = self._head_is_array
        link_count = len(link_head)
        free_out = self._free_out
        out_cap = self._out_cap
        watchdog = net.watchdog_window
        transport = net.transport

        in_vc = self._in_vc
        out_vc = self._out_vc
        in_stateless = self._in_stateless
        out_stateless = self._out_stateless
        multiplexed = self._multiplexed
        routing_delay = self._routing_delay
        #: reusable buffer for the crossbar's deferred _pending_arb
        #: appends — always empty outside the crossbar block
        arb_buf = []
        arb_delay = self._arb_delay
        dyn_part = self._dyn_part
        be_bind = self._be_bind
        ni_vc = self._ni_vc
        record_pool_append = release_record
        #: Message.is_real_time inlined: membership in the RT classes
        rt_classes = TrafficClass.REAL_TIME

        stall_clock = max(net._stall_clock, clock - 1)
        while clock < until:
            if not (ni_active_set or router_active_set):
                # Idle-phase jump: earliest scheduled event or link head
                # arrival.  The head mirror covers *all* links (idle
                # ones hold the far sentinel), so the reduction is one
                # contiguous vector min instead of a per-active-link
                # object walk.
                nxt = heap[0][0] if heap else None
                if link_count:
                    if head_is_array:
                        arrival = int(link_head.min())
                    else:
                        arrival = min(link_head)
                    if arrival < _FAR and (nxt is None or arrival < nxt):
                        nxt = arrival
                if nxt is None:
                    if net._flits_in_flight == 0:
                        clock = until
                        break
                    # Defensive backstop, same contract as the object
                    # loop: flits alive but no wake armed — degrade the
                    # network to the legacy full scan permanently.
                    logger.warning(
                        "array engine lost track of %d in-flight flits at "
                        "cycle %d; falling back to the legacy loop",
                        net._flits_in_flight,
                        clock,
                    )
                    net._legacy_loop = True
                    net._stall_clock = stall_clock
                    net.clock = clock
                    return net._run_legacy(until)
                if nxt > clock:
                    if watchdog is not None and net._flits_in_flight:
                        cap = stall_clock + watchdog
                        if cap < nxt:
                            nxt = cap
                    clock = nxt if nxt < until else until
                    if net._flits_in_flight == 0:
                        stall_clock = clock
                    if clock >= until:
                        break
            net.clock = clock
            if heap and heap[0][0] <= clock:
                events.fire_due(clock)
            progress = 0

            # -- phase 1: link delivery (inlined Link.deliver_due) ------
            if link_times and link_times[0] <= clock:
                due_ids = link_due(clock)
            else:
                # Inlined ActivationScheduler.due steady-state path:
                # loan the maintained ascending active list.
                link_sched._loaned = True
                due_ids = link_sched._list
            for index in due_ids:
                # The head mirror is maintained at every send/deliver,
                # so active links with nothing due this cycle cost one
                # list index instead of an unpack plus a deque peek.
                if link_head[index] > clock:
                    continue
                (
                    link,
                    ivcs,
                    router,
                    rid,
                    sink,
                    flit_inline,
                    msg_inline,
                ) = link_info[index]
                pending = link.pending
                if not pending:
                    # Emptied behind our back (purge); drop from the set.
                    link_deactivate(index)
                    link_head[index] = _FAR
                    continue
                if pending[0][0] > clock:
                    # Stale-due mirror entry (cold-path edit): repair it.
                    link_head[index] = pending[0][0]
                    continue
                if ivcs is not None:
                    port = ivcs[0].port
                    popleft = pending.popleft
                    sendable = router._sendable[port]
                    router_in_ports = router._in_ports
                    # Activation is idempotent, so one batched check
                    # after the drain replaces the per-flit transition
                    # test the object path performs inside accept_flit.
                    was_idle = not router._work
                    delivered = 0
                    # do-while: the outer guard already proved the head
                    # flit is due, so pop before re-testing.
                    while True:
                        _, msg, flit_index, vc_index = popleft()
                        delivered += 1
                        # ---- inlined WormholeRouter.accept_flit ----
                        vc = ivcs[vc_index]
                        vst = vc.vstate
                        messages = vc.messages
                        if flit_index == 0:
                            messages.append(acquire_record(msg, clock))
                            if len(messages) == 1:
                                vc.head_arrival = clock
                                vc.route_port = -1
                                vc.route_vc = None
                                router._pending_arb.append(vc)
                                router._work += 1
                            vst.auxvc = float(clock)
                            vst.vtick = msg.vtick
                            vst.is_open = True
                        elif not messages:
                            raise FlowControlError(
                                f"input VC ({vc.port},{vc.index}) got a flit "
                                f"without a header"
                            )
                        if in_vc:
                            stamp = vst.auxvc
                            if clock > stamp:
                                stamp = clock
                            stamp += vst.vtick
                            vst.auxvc = stamp
                        else:
                            stamp = float(clock)
                        if vc.buffered >= vc.capacity:
                            raise FlowControlError(
                                f"input VC ({vc.port},{vc.index}) overflow: "
                                f"upstream sent a flit without credit"
                            )
                        messages[-1].arrived += 1
                        vc.buffered += 1
                        vc.stamps.append(stamp)
                        if vc.route_vc is not None:
                            front = messages[0]
                            if front.arrived > front.served:
                                if vc_index not in sendable:
                                    sendable.add(vc_index)
                                    router_in_ports.add(port)
                                    router._work += 1
                        if not pending:
                            head_val = _FAR
                            break
                        head_val = pending[0][0]
                        if head_val > clock:
                            break
                    progress += delivered
                    if was_idle and router._work:
                        router_activate(rid)
                else:
                    node = sink.node_id
                    popleft = pending.popleft
                    # With the standard inline wiring, flit counters
                    # batch into a local and flush before any callback
                    # runs, so callbacks observe the same counts the
                    # per-flit object path shows.  Custom on_flit sinks
                    # keep the per-flit updates.
                    ejected = 0
                    # do-while; see the router branch above.
                    while True:
                        _, msg, flit_index, vc_index = popleft()
                        # ---- inlined HostSink.eject ----
                        if flit_inline:
                            ejected += 1
                        else:
                            sink.flits_ejected += 1
                            progress += 1
                            if sink.on_flit is not None:
                                sink.on_flit(1)
                        if flit_index == msg.last_flit:
                            if ejected:
                                sink.flits_ejected += ejected
                                net._flits_in_flight -= ejected
                                net.flits_ejected += ejected
                                progress += ejected
                                ejected = 0
                            if msg.dst_node != node:
                                raise FlowControlError(
                                    f"message {msg.msg_id} for node "
                                    f"{msg.dst_node} ejected at node {node}"
                                )
                            if (
                                msg.corrupted
                                and sink.on_corrupt is not None
                            ):
                                sink.messages_corrupt += 1
                                sink.on_corrupt(msg, clock)
                            else:
                                msg.deliver_time = clock
                                sink.messages_ejected += 1
                                if msg_inline:
                                    net.messages_delivered += 1
                                    if transport is not None:
                                        transport.on_delivered(msg)
                                    if net._on_message is not None:
                                        net._on_message(msg, clock)
                                elif sink.on_message is not None:
                                    sink.on_message(msg, clock)
                        if not pending:
                            head_val = _FAR
                            break
                        head_val = pending[0][0]
                        if head_val > clock:
                            break
                    if ejected:
                        sink.flits_ejected += ejected
                        net._flits_in_flight -= ejected
                        net.flits_ejected += ejected
                        progress += ejected
                # With the list-backed mirror a drained link stays in
                # the active list holding the far sentinel (lazy
                # deactivation): dense traffic refills links within a
                # few cycles, an eager deactivate/activate pair costs
                # two copy-on-write list edits per drain while the
                # list is loaned, and a stale entry costs one cheap
                # list-index check per cycle.  Links are safe to treat
                # lazily because (unlike NIs and routers) they never
                # gate the idle jump, and both loops skip-or-heal
                # stale entries.  The numpy mirror keeps the eager
                # deactivate: its scalar reads box on every access, so
                # stale entries are ~3x dearer per cycle and big
                # topologies accumulate far more of them.
                link_head[index] = head_val
                if head_val == _FAR and head_is_array:
                    link_deactivate(index)

            # -- phase 2: NI injection (inlined HostInterface.step) -----
            if ni_times and ni_times[0] <= clock:
                due_ids = ni_due(clock)
            else:
                ni_sched._loaned = True
                due_ids = ni_sched._list
            for index in due_ids:
                (
                    ni,
                    vcs,
                    active,
                    scheduler,
                    stateless,
                    link,
                    link_id,
                    latency,
                ) = ni_info[index]
                if not active:
                    ni_deactivate(index)
                    continue
                if len(active) == 1 and stateless:
                    for chosen in active:
                        break
                    vc = vcs[chosen]
                    if vc.credits <= 0:
                        continue
                    if vc.head_stamp is None:
                        msg = vc.queue[0]
                        if ni_vc:
                            vst = vc.vstate
                            stamp = vst.auxvc
                            inject_time = msg.inject_time
                            if inject_time > stamp:
                                stamp = inject_time
                            stamp += vst.vtick
                            vst.auxvc = stamp
                            vc.head_stamp = stamp
                        else:
                            vc.head_stamp = float(msg.inject_time)
                elif stateless:
                    # Stateless policies pick min((stamp, index)); track
                    # the running minimum instead of building the
                    # candidate list (ties go to the lowest index, and
                    # the minimum is iteration-order independent).
                    best = None
                    chosen = -1
                    for vc_index in active:
                        vc = vcs[vc_index]
                        if vc.credits > 0:
                            stamp = vc.head_stamp
                            if stamp is None:
                                msg = vc.queue[0]
                                if ni_vc:
                                    vst = vc.vstate
                                    stamp = vst.auxvc
                                    inject_time = msg.inject_time
                                    if inject_time > stamp:
                                        stamp = inject_time
                                    stamp += vst.vtick
                                    vst.auxvc = stamp
                                else:
                                    stamp = float(msg.inject_time)
                                vc.head_stamp = stamp
                            if best is None or stamp < best or (
                                stamp == best and vc_index < chosen
                            ):
                                best = stamp
                                chosen = vc_index
                    if chosen < 0:
                        continue
                    vc = vcs[chosen]
                else:
                    candidates = []
                    for vc_index in active:
                        vc = vcs[vc_index]
                        if vc.credits > 0:
                            stamp = vc.head_stamp
                            if stamp is None:
                                msg = vc.queue[0]
                                if ni_vc:
                                    vst = vc.vstate
                                    stamp = vst.auxvc
                                    inject_time = msg.inject_time
                                    if inject_time > stamp:
                                        stamp = inject_time
                                    stamp += vst.vtick
                                    vst.auxvc = stamp
                                else:
                                    stamp = float(msg.inject_time)
                                vc.head_stamp = stamp
                            candidates.append((stamp, vc_index))
                    if not candidates:
                        continue
                    chosen = scheduler.select(candidates)
                    vc = vcs[chosen]
                msg = vc.queue[0]
                flit_index = vc.sent
                vc.credits -= 1
                vc.sent = flit_index + 1
                vc.head_stamp = None
                # ---- inlined Link.send onto the host wire ----
                arrival = clock + latency
                pending = link.pending
                if not pending:
                    link_activate(link_id)
                    link_head[link_id] = arrival
                pending.append((arrival, msg, flit_index, chosen))
                if flit_index == 0 and ni.on_start is not None:
                    ni.on_start(msg, clock)
                if flit_index == msg.last_flit:
                    vc.queue.popleft()
                    vst = vc.vstate
                    if vc.queue:
                        head = vc.queue[0]
                        vc.sent = 0
                        vst.auxvc = float(head.inject_time)
                        vst.vtick = head.vtick
                        vst.is_open = True
                    else:
                        vst.is_open = False
                        vst.auxvc = 0.0
                        vst.vtick = BEST_EFFORT_VTICK
                        active.discard(chosen)
                        if not active:
                            ni_deactivate(index)

            # -- phases 3-5: routers, stages 5 -> 4 -> 2/3 --------------
            if router_times and router_times[0] <= clock:
                due_ids = router_due(clock)
            else:
                router_sched._loaned = True
                due_ids = router_sched._list
            for rid in due_ids:
                (
                    router,
                    inputs,
                    outputs,
                    out_active,
                    out_ports,
                    out_flits,
                    out_selectors,
                    in_ports,
                    sendable_sets,
                    in_selectors,
                    part,
                    is_host_port,
                    candidates_of,
                    link_ids,
                    latencies,
                    links_of,
                ) = router_hot[rid]
                if not router._work:
                    router_deactivate(rid)
                    continue
                free_ports = free_out[rid]

                # ---- stage 5: output VC mux + link send ----
                if out_ports:
                    # Stage-5 ports are independent — distinct links,
                    # VCs, and commutative counters, and (unlike the
                    # crossbar) no appends to a shared worklist — so the
                    # drain order across ports is unobservable; an
                    # unsorted copy avoids the per-cycle sort while
                    # keeping mutation-safety.
                    ports = list(out_ports)
                    for port in ports:
                        active5 = out_active[port]
                        ovcs = outputs[port]
                        if len(active5) == 1 and out_stateless:
                            for chosen in active5:
                                break
                            ovc = ovcs[chosen]
                            if ovc.downstream is not None and ovc.credits <= 0:
                                continue
                        elif out_stateless:
                            # Running min((stamp, index)) — see phase 2.
                            best = None
                            chosen = -1
                            for vc_index in active5:
                                ovc = ovcs[vc_index]
                                if ovc.downstream is None or ovc.credits > 0:
                                    stamp = ovc.stamps[0]
                                    if best is None or stamp < best or (
                                        stamp == best and vc_index < chosen
                                    ):
                                        best = stamp
                                        chosen = vc_index
                            if chosen < 0:
                                continue
                            ovc = ovcs[chosen]
                        else:
                            candidates = []
                            for vc_index in active5:
                                ovc = ovcs[vc_index]
                                if ovc.downstream is None or ovc.credits > 0:
                                    candidates.append(
                                        (ovc.stamps[0], vc_index)
                                    )
                            if not candidates:
                                continue
                            chosen = out_selectors[port].select(
                                candidates
                            )
                            ovc = ovcs[chosen]
                        queue = ovc.queue
                        ovc.stamps.popleft()
                        msg, flit_index = queue.popleft()
                        if ovc.downstream is not None:
                            ovc.credits -= 1
                        link_id = link_ids[port]
                        if link_id < 0:
                            raise FlowControlError(
                                f"router {rid} port {port} has staged flits "
                                f"but no outgoing link"
                            )
                        # ---- inlined Link.send ----
                        arrival = clock + latencies[port]
                        pending = links_of[port].pending
                        if not pending:
                            link_activate(link_id)
                            link_head[link_id] = arrival
                        pending.append((arrival, msg, flit_index, chosen))
                        out_flits[port] += 1
                        if not queue:
                            active5.discard(chosen)
                            if not active5:
                                out_ports.discard(port)
                            router._work -= 1
                        if flit_index == msg.last_flit:
                            ovc.owner = None
                            free_ports[port] += 1
                            vst = ovc.vstate
                            vst.is_open = False
                            vst.auxvc = 0.0
                            vst.vtick = BEST_EFFORT_VTICK

                # ---- stage 4: crossbar ----
                if in_ports:
                    # Unlike stage 5, crossbar port order is observable
                    # through exactly one side effect: a tail flit whose
                    # input VC holds a buffered next message appends
                    # that VC to the shared _pending_arb worklist, and
                    # stage 2/3 serves it in append order.  Iterate the
                    # ports unsorted (saving the per-cycle sort) but
                    # defer those appends and flush them in the object
                    # path's sorted-port order below.
                    ports = list(in_ports)
                    for port in ports:
                        sendable = sendable_sets[port]
                        if not sendable:
                            continue
                        port_vcs = inputs[port]
                        if multiplexed:
                            if len(sendable) == 1 and in_stateless:
                                for chosen in sendable:
                                    break
                                vc = port_vcs[chosen]
                                if vc.ready_at > clock:
                                    continue
                                ovc = vc.route_vc
                                if len(ovc.queue) >= out_cap:
                                    continue
                                moves = (vc,)
                            elif in_stateless:
                                # Running min((stamp, index)) — see
                                # phase 2.
                                best = None
                                chosen = -1
                                for vc_index in sendable:
                                    vc = port_vcs[vc_index]
                                    if vc.ready_at > clock:
                                        continue
                                    ovc = vc.route_vc
                                    if len(ovc.queue) >= out_cap:
                                        continue
                                    stamp = vc.stamps[0]
                                    if best is None or stamp < best or (
                                        stamp == best and vc_index < chosen
                                    ):
                                        best = stamp
                                        chosen = vc_index
                                if chosen < 0:
                                    continue
                                moves = (port_vcs[chosen],)
                            else:
                                candidates = []
                                for vc_index in sendable:
                                    vc = port_vcs[vc_index]
                                    if vc.ready_at > clock:
                                        continue
                                    ovc = vc.route_vc
                                    if len(ovc.queue) >= out_cap:
                                        continue
                                    candidates.append(
                                        (vc.stamps[0], vc_index)
                                    )
                                if not candidates:
                                    continue
                                chosen = in_selectors[port].select(
                                    candidates
                                )
                                moves = (port_vcs[chosen],)
                        else:
                            moves = []
                            for vc_index in list(sendable):
                                vc = port_vcs[vc_index]
                                if vc.ready_at > clock:
                                    continue
                                ovc = vc.route_vc
                                if len(ovc.queue) >= out_cap:
                                    continue
                                moves.append(vc)
                        for vc in moves:
                            # ---- inlined _move_through_crossbar ----
                            ovc = vc.route_vc
                            messages = vc.messages
                            front = messages[0]
                            if front.arrived <= front.served:
                                raise FlowControlError(
                                    f"input VC ({vc.port},{vc.index}) "
                                    f"drained with no serviceable flit"
                                )
                            vc.stamps.popleft()
                            vc.buffered -= 1
                            flit_index = front.served
                            front.served = flit_index + 1
                            msg = front.msg
                            sink = vc.credit_sink
                            if sink is not None:
                                sink.credits += 1
                            if out_vc:
                                vst = ovc.vstate
                                stamp = vst.auxvc
                                if clock > stamp:
                                    stamp = clock
                                stamp += vst.vtick
                                vst.auxvc = stamp
                            else:
                                stamp = float(clock)
                            out_queue = ovc.queue
                            if not out_queue:
                                # Stage 5 discards the VC from the
                                # active set exactly when its staging
                                # queue drains, so empty-queue is the
                                # activation edge.
                                out_port = ovc.port
                                out_active[out_port].add(ovc.index)
                                out_ports.add(out_port)
                                router._work += 1
                            out_queue.append((msg, flit_index))
                            ovc.stamps.append(stamp)
                            if flit_index == msg.last_flit:
                                sendable.discard(vc.index)
                                if not sendable:
                                    in_ports.discard(port)
                                router._work -= 1
                                # ---- inlined release_front ----
                                messages.popleft()
                                if front.served != msg.size:
                                    raise FlowControlError(
                                        f"input VC ({vc.port},{vc.index}) "
                                        f"released message {msg.msg_id} "
                                        f"before its tail was served"
                                    )
                                record_pool_append(front)
                                vc.route_port = -1
                                vc.route_vc = None
                                if messages:
                                    vc.head_arrival = messages[
                                        0
                                    ].header_time
                                    arb_buf.append((port, vc))
                                    router._work += 1
                            elif front.arrived <= front.served:
                                sendable.discard(vc.index)
                                if not sendable:
                                    in_ports.discard(port)
                                router._work -= 1
                    if arb_buf:
                        # Flush in sorted-port order (stable: within a
                        # port the full crossbar keeps its move order).
                        if len(arb_buf) > 1:
                            arb_buf.sort(key=_by_port)
                        pending_arb = router._pending_arb
                        for _, vc in arb_buf:
                            pending_arb.append(vc)
                        del arb_buf[:]

                # ---- stages 2/3: routing + output VC arbitration ----
                pending_arb = router._pending_arb
                if pending_arb:
                    rotate = router._arb_rotate % len(pending_arb)
                    router._arb_rotate += 1
                    if rotate:
                        ordered = (
                            pending_arb[rotate:] + pending_arb[:rotate]
                        )
                    else:
                        ordered = pending_arb
                    router._pending_arb = []
                    still_waiting = []
                    for vc in ordered:
                        messages = vc.messages
                        if not messages:  # defensive: released mid-queue
                            router._work -= 1
                            continue
                        if clock < vc.head_arrival + routing_delay:
                            still_waiting.append(vc)
                            continue
                        msg = messages[0].msg
                        port = vc.route_port
                        if port < 0:
                            route_ports = candidates_of(msg.dst_node)
                            if len(route_ports) == 1:
                                port = route_ports[0]
                            else:
                                port = router._select_output_port(
                                    clock, route_ports
                                )
                            vc.route_port = port
                        if not free_ports[port]:
                            # Every output VC is owned: the bound-VC
                            # check and both partition scans can only
                            # come up empty, so the attempt blocks.
                            still_waiting.append(vc)
                            continue
                        real_time = msg.traffic_class in rt_classes
                        ovcs = outputs[port]
                        ovc = None
                        if is_host_port[port] and msg.dst_vc is not None:
                            bound = ovcs[msg.dst_vc]
                            if bound.owner is None:
                                ovc = bound
                            elif real_time or be_bind:
                                still_waiting.append(vc)
                                continue
                        if ovc is None:
                            for vc_index in part[port][real_time][0]:
                                candidate = ovcs[vc_index]
                                if candidate.owner is None:
                                    ovc = candidate
                                    break
                            else:
                                if dyn_part and not real_time:
                                    for vc_index in part[port][True][0]:
                                        candidate = ovcs[vc_index]
                                        if candidate.owner is None:
                                            ovc = candidate
                                            break
                        if ovc is None:
                            still_waiting.append(vc)
                            continue
                        # ---- inlined OutputVC.grant ----
                        ovc.owner = msg
                        free_ports[ovc.port] -= 1
                        vst = ovc.vstate
                        vst.auxvc = float(clock)
                        vst.vtick = msg.vtick
                        vst.is_open = True
                        vc.route_vc = ovc
                        vc.ready_at = clock + arb_delay
                        front = messages[0]
                        if front.arrived > front.served:
                            sendable = sendable_sets[vc.port]
                            if vc.index not in sendable:
                                sendable.add(vc.index)
                                in_ports.add(vc.port)
                                router._work += 1
                        router._work -= 1
                    router._pending_arb.extend(still_waiting)

                if not router._work:
                    router_deactivate(rid)

            if watchdog is not None:
                if progress or not net._flits_in_flight:
                    stall_clock = clock
                elif clock - stall_clock >= watchdog:
                    net._watchdog_fire(clock, stall_clock, watchdog)
            clock += 1
        net._stall_clock = stall_clock
        net.clock = clock
