"""Simulation engine selection (``engine="object" | "array"``).

The network can execute its cycle loop on two engines that are
bit-identical by contract:

* ``object`` (the default) — the component-protocol loop in
  :meth:`repro.network.network.Network.run`: every active link, NI, and
  router is stepped through its own ``step()`` method.  This is the
  reference semantics, and the only engine the legacy full-scan loop
  (``REPRO_LEGACY_LOOP=1``) applies to.
* ``array`` — the fused dense-datapath engine
  (:class:`repro.sim.engine.array.ArrayEngine`): the same per-cycle
  phases, but inlined into one interpreter frame over the components'
  shared state views, with the link pipeline's head-arrival times
  mirrored into a preallocated numpy vector for vectorised clock
  jumps.  Cold features (faults, health monitoring, tracing, adaptive
  routing, preemption, loop profiling) transparently fall back to the
  object loop for the whole run.

``resolve_engine`` is the single validation point; the network calls it
at construction so a bad name fails before any simulation state exists.
"""

from __future__ import annotations

from repro.errors import EngineError

#: engine registry: names accepted by ``Network(engine=...)`` and the
#: experiment/CLI ``--engine`` plumbing
ENGINE_OBJECT = "object"
ENGINE_ARRAY = "array"
ENGINES = (ENGINE_OBJECT, ENGINE_ARRAY)

DEFAULT_ENGINE = ENGINE_OBJECT


def resolve_engine(name: str, legacy_loop: bool = False) -> str:
    """Validate an engine name; returns the canonical name.

    Raises :class:`repro.errors.EngineError` for unknown names and for
    the contradictory combination of the array engine with the legacy
    full-scan loop: ``REPRO_LEGACY_LOOP=1`` exists to pin the reference
    semantics, so silently ignoring either selection would mask a
    misconfigured A/B comparison.
    """
    if name not in ENGINES:
        raise EngineError(
            f"unknown simulation engine {name!r}; expected one of {ENGINES}"
        )
    if legacy_loop and name == ENGINE_ARRAY:
        raise EngineError(
            "engine='array' is incompatible with REPRO_LEGACY_LOOP=1: the "
            "legacy full-scan loop pins the object engine's reference "
            "semantics; unset the variable or request engine='object'"
        )
    return name


__all__ = [
    "DEFAULT_ENGINE",
    "ENGINES",
    "ENGINE_ARRAY",
    "ENGINE_OBJECT",
    "EngineError",
    "resolve_engine",
]
