"""Activation scheduling: which components may act, and when.

The legacy cycle loop paid a fixed cost per cycle — every link, host
interface, and router was visited whether or not it had anything to do.
The :class:`ActivationScheduler` inverts that: components *register*
their activity transitions and the loop visits only the active set, so
simulation cost tracks activity instead of topology size.

Two activation styles cover every component kind:

* **persistent** — :meth:`activate` / :meth:`deactivate`.  The
  component is runnable every cycle while active (a router with busy
  VCs, a host interface with queued messages).  Its wake time is
  implicitly "now".
* **timed** — :meth:`wake_at`.  A one-shot wake at a known future cycle
  (a link whose earliest in-flight flit arrives then).  Timed wakes use
  a lazy-deletion binary heap: re-arming earlier pushes a fresh entry
  and the stale one is skipped when popped.

Determinism contract
--------------------

Components are identified by small integer ids assigned in the same
order the legacy loop iterated them.  :meth:`due` returns ids in
ascending order, so an active-set run visits components in exactly the
legacy order, restricted to the non-no-op subset — which is what makes
active-set runs bit-identical to the legacy full scan (the golden-run
regression in ``tests/test_activation.py`` pins this).

Spurious wakes are harmless by construction: a component stepped with
nothing due no-ops exactly as it did under the legacy full scan.  A
*missing* wake, by contrast, would silently change results — hence the
conservative rule that every producer of future work (``Link.send``,
``HostInterface.inject``, flit arrival at a router) arms its wake at
the moment the work is created.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple


class ActivationScheduler:
    """Deterministic active-set and wake-time tracker for one component kind."""

    __slots__ = ("_active", "_heap", "_armed", "_cache")

    def __init__(self) -> None:
        #: ids runnable every cycle until deactivated
        self._active: Set[int] = set()
        #: (time, id) timed wakes; may hold stale entries (lazy deletion)
        self._heap: List[Tuple[int, int]] = []
        #: id -> earliest armed wake time (the authoritative record)
        self._armed: Dict[int, int] = {}
        #: memoised ``sorted(self._active)``; None after any mutation.
        #: At steady state the active set barely changes, so :meth:`due`
        #: is usually a heap peek plus a cached-list return.
        self._cache: Optional[List[int]] = None

    # -- persistent activation -----------------------------------------

    def activate(self, cid: int) -> None:
        """Mark ``cid`` runnable every cycle until :meth:`deactivate`."""
        if cid not in self._active:
            self._active.add(cid)
            self._cache = None

    def deactivate(self, cid: int) -> None:
        """Clear ``cid``'s persistent activation (timed wakes survive)."""
        if cid in self._active:
            self._active.remove(cid)
            self._cache = None

    def drain_active(self) -> List[int]:
        """Snapshot and clear every persistent activation (ascending).

        Used when the loop wants to jump the clock: persistent members
        with a knowable next-due time (hot links) are demoted to timed
        wakes so :meth:`next_time` sees them.
        """
        out = sorted(self._active)
        self._active.clear()
        self._cache = None
        return out

    def is_active(self, cid: int) -> bool:
        return cid in self._active

    @property
    def has_active(self) -> bool:
        """True when any component is persistently active."""
        return bool(self._active)

    # -- timed wakes ----------------------------------------------------

    def wake_at(self, cid: int, time: int) -> None:
        """Arm a one-shot wake for ``cid`` at cycle ``time``.

        Re-arming with a later time than already armed is a no-op (the
        earlier wake services both); re-arming earlier supersedes.
        """
        armed = self._armed.get(cid)
        if armed is not None and armed <= time:
            return
        self._armed[cid] = time
        heapq.heappush(self._heap, (time, cid))

    def next_time(self) -> Optional[int]:
        """Cycle of the earliest armed wake, or ``None``.

        Persistent actives are due "now"; callers check
        :attr:`has_active` before consulting this for a clock jump.
        """
        heap = self._heap
        armed = self._armed
        while heap:
            time, cid = heap[0]
            if armed.get(cid) == time:
                return time
            heapq.heappop(heap)  # stale entry superseded by re-arm
        return None

    # -- per-cycle harvest ----------------------------------------------

    def due(self, clock: int) -> List[int]:
        """Ids due to step at ``clock``, in ascending (legacy) order.

        Timed wakes at or before ``clock`` are consumed; persistent
        actives are included without being consumed.  The returned list
        is a snapshot — callers may activate/deactivate while iterating
        (mutations invalidate the memo for the *next* call, never the
        list already handed out).
        """
        heap = self._heap
        if heap and heap[0][0] <= clock:
            armed = self._armed
            due = set(self._active)
            while heap and heap[0][0] <= clock:
                time, cid = heapq.heappop(heap)
                if armed.get(cid) == time:
                    del armed[cid]
                    due.add(cid)
            return sorted(due)
        cache = self._cache
        if cache is None:
            cache = self._cache = sorted(self._active)
        return cache
