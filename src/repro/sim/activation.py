"""Activation scheduling: which components may act, and when.

The legacy cycle loop paid a fixed cost per cycle — every link, host
interface, and router was visited whether or not it had anything to do.
The :class:`ActivationScheduler` inverts that: components *register*
their activity transitions and the loop visits only the active set, so
simulation cost tracks activity instead of topology size.

Two activation styles cover every component kind:

* **persistent** — :meth:`activate` / :meth:`deactivate`.  The
  component is runnable every cycle while active (a router with busy
  VCs, a host interface with queued messages, a link with flits on the
  wire).  Its wake time is implicitly "now".
* **timed** — :meth:`wake_at`.  A one-shot wake at a known future cycle.
  Timed wakes are *bucketed by cycle*: arming appends the id to its
  cycle's bucket and :meth:`due` consumes whole buckets at once, so
  harvesting N wakes costs one heap pop per distinct cycle instead of
  one per wake.

The fused dispatch loop (``Network.run``) keeps links persistently
active while they hold in-flight flits, so in the steady state this
scheduler does no heap traffic at all — the per-cycle cost is returning
the memoised sorted active list.

Determinism contract
--------------------

Components are identified by small integer ids assigned in the same
order the legacy loop iterated them (:meth:`register` hands them out in
registration order).  :meth:`due` returns ids in ascending order, so an
active-set run visits components in exactly the legacy order,
restricted to the non-no-op subset — which is what makes active-set
runs bit-identical to the legacy full scan (the golden-run regression
in ``tests/test_activation.py`` pins this).

Spurious wakes are harmless by construction: a component stepped with
nothing due no-ops exactly as it did under the legacy full scan (the
:mod:`repro.sim.component` step protocol requires it).  A *missing*
wake, by contrast, would silently change results — hence the
conservative rule that every producer of future work (``Link.send``,
``HostInterface.inject``, flit arrival at a router) activates its
component at the moment the work is created.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Dict, List, Optional, Set


class ActivationScheduler:
    """Deterministic active-set and wake-time tracker for one component kind."""

    __slots__ = (
        "components",
        "_active",
        "_list",
        "_loaned",
        "_buckets",
        "_times",
        "_armed",
    )

    def __init__(self) -> None:
        #: registered components, indexed by id (see :meth:`register`)
        self.components: List[object] = []
        #: ids runnable every cycle until deactivated (membership tests)
        self._active: Set[int] = set()
        #: the same ids as a maintained sorted list — the steady-state
        #: :meth:`due` result.  Mutations use insort/remove instead of
        #: re-sorting, so an activate/deactivate costs O(n) memmove on a
        #: short list rather than an O(n log n) sort per transition.
        self._list: List[int] = []
        #: True while ``_list`` is loaned out by :meth:`due`; the next
        #: mutation copies first (copy-on-write), so callers may iterate
        #: the returned snapshot while activating/deactivating.
        self._loaned = False
        #: cycle -> ids armed to wake then (may hold superseded ids)
        self._buckets: Dict[int, List[int]] = {}
        #: heap of distinct bucket cycles
        self._times: List[int] = []
        #: id -> earliest armed wake time (the authoritative record)
        self._armed: Dict[int, int] = {}

    # -- registration ---------------------------------------------------

    def register(self, component: object) -> int:
        """Add ``component`` to this scheduler's id space; returns its id.

        Ids are handed out in registration order, which the fused
        dispatch loop relies on: registering components in the legacy
        iteration order makes every ascending-id visit a replay of the
        legacy scan order.
        """
        cid = len(self.components)
        self.components.append(component)
        return cid

    # -- persistent activation -----------------------------------------

    def activate(self, cid: int) -> None:
        """Mark ``cid`` runnable every cycle until :meth:`deactivate`."""
        active = self._active
        if cid not in active:
            active.add(cid)
            if self._loaned:
                self._list = list(self._list)
                self._loaned = False
            insort(self._list, cid)

    def deactivate(self, cid: int) -> None:
        """Clear ``cid``'s persistent activation (timed wakes survive)."""
        active = self._active
        if cid in active:
            active.remove(cid)
            if self._loaned:
                self._list = list(self._list)
                self._loaned = False
            self._list.remove(cid)

    def drain_active(self) -> List[int]:
        """Snapshot and clear every persistent activation (ascending)."""
        out = self._list if not self._loaned else list(self._list)
        self._active.clear()
        self._list = []
        self._loaned = False
        return out

    def is_active(self, cid: int) -> bool:
        return cid in self._active

    @property
    def has_active(self) -> bool:
        """True when any component is persistently active."""
        return bool(self._active)

    def active_ids(self) -> List[int]:
        """The persistent active set, ascending (borrowed; do not mutate)."""
        self._loaned = True
        return self._list

    # -- timed wakes ----------------------------------------------------

    def wake_at(self, cid: int, time: int) -> None:
        """Arm a one-shot wake for ``cid`` at cycle ``time``.

        Re-arming with a later time than already armed is a no-op (the
        earlier wake services both); re-arming earlier supersedes.
        """
        armed = self._armed.get(cid)
        if armed is not None and armed <= time:
            return
        self._armed[cid] = time
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [cid]
            heapq.heappush(self._times, time)
        else:
            bucket.append(cid)

    def next_time(self) -> Optional[int]:
        """Cycle of the earliest armed wake, or ``None``.

        Persistent actives are due "now"; callers check
        :attr:`has_active` before consulting this for a clock jump.
        """
        times = self._times
        buckets = self._buckets
        armed = self._armed
        while times:
            time = times[0]
            for cid in buckets[time]:
                if armed.get(cid) == time:
                    return time
            # every entry in this bucket was superseded by an earlier
            # re-arm; discard the whole cycle
            heapq.heappop(times)
            del buckets[time]
        return None

    # -- per-cycle harvest ----------------------------------------------

    def due(self, clock: int) -> List[int]:
        """Ids due to step at ``clock``, in ascending (legacy) order.

        Timed wakes at or before ``clock`` are consumed bucket-at-a-time;
        persistent actives are included without being consumed.  The
        returned list is a snapshot — callers may activate/deactivate
        while iterating (copy-on-write protects the loaned list).
        """
        times = self._times
        if times and times[0] <= clock:
            armed = self._armed
            buckets = self._buckets
            harvested = set(self._active)
            while times and times[0] <= clock:
                time = heapq.heappop(times)
                for cid in buckets.pop(time):
                    if armed.get(cid) == time:
                        del armed[cid]
                        harvested.add(cid)
            return sorted(harvested)
        self._loaned = True
        return self._list
