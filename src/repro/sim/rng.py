"""Named, reproducible random-number streams.

Every stochastic component of the simulation (each traffic stream, the
best-effort source at each node, arbitration tie-breaks, ...) draws from
its own named substream, so adding or removing one component never
perturbs the random sequence seen by the others.  This is the classic
"common random numbers" discipline used for variance reduction when
comparing configurations (e.g. Virtual Clock vs FIFO on the *same*
arrival sequence).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def _substream_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit substream seed from the master seed and a name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """Factory of independent :class:`random.Random` substreams.

    >>> rngs = RngStreams(seed=42)
    >>> a = rngs.stream("vbr/node0/stream3")
    >>> b = rngs.stream("vbr/node0/stream3")
    >>> a is b
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the substream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(_substream_seed(self.seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngStreams":
        """Return a new :class:`RngStreams` rooted at a derived seed.

        Useful when a subsystem (e.g. one node's traffic) wants its own
        namespace of substreams.
        """
        return RngStreams(_substream_seed(self.seed, name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(seed={self.seed}, streams={len(self._streams)})"
