"""Unit conversions between wall-clock workload quantities and cycles.

The simulation's native units are:

* **flit** — the unit of data (32 bits in the paper's Table 1);
* **cycle** — the time a physical channel (PC) needs to move one flit,
  i.e. ``flit_size_bits / link_bandwidth``.

Everything in the workload (MPEG-2 frame sizes, 33 ms frame intervals,
stream bit-rates) is specified in physical units and converted through a
:class:`LinkSpec`.  A :class:`WorkloadScale` optionally divides both the
data *and* time constants of the workload by a common factor, which
preserves every bandwidth fraction (and therefore the queueing behaviour
that produces jitter) while cutting simulation cost linearly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: MPEG-2 workload constants from section 4.2.1 of the paper.
MPEG2_FRAME_BYTES_MEAN = 16666
MPEG2_FRAME_BYTES_STD = 3333
MPEG2_FRAME_INTERVAL_MS = 33.0

#: Nominal jitter-free delivery interval (ms) implied by the workload:
#: one frame every 33 ms, i.e. 30 frames/sec at MPEG-2 rates.
NOMINAL_DELIVERY_INTERVAL_MS = MPEG2_FRAME_INTERVAL_MS


@dataclass(frozen=True)
class LinkSpec:
    """Physical-channel specification.

    Parameters mirror Table 1 of the paper: 400 Mbps links with 32-bit
    flits for the wormhole studies, 100 Mbps for the PCS comparison.
    """

    bandwidth_mbps: float = 400.0
    flit_size_bits: int = 32

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ConfigurationError(
                f"link bandwidth must be positive, got {self.bandwidth_mbps}"
            )
        if self.flit_size_bits <= 0:
            raise ConfigurationError(
                f"flit size must be positive, got {self.flit_size_bits}"
            )

    @property
    def cycle_ns(self) -> float:
        """Duration of one router cycle (one flit time) in nanoseconds."""
        return self.flit_size_bits * 1000.0 / self.bandwidth_mbps

    @property
    def flits_per_second(self) -> float:
        """Peak PC throughput in flits per second."""
        return self.bandwidth_mbps * 1e6 / self.flit_size_bits

    def bytes_to_flits(self, nbytes: float) -> float:
        """Convert a byte count to (fractional) flits."""
        return nbytes * 8.0 / self.flit_size_bits

    def ms_to_cycles(self, ms: float) -> float:
        """Convert milliseconds to (fractional) cycles."""
        return ms * 1e6 / self.cycle_ns

    def us_to_cycles(self, us: float) -> float:
        """Convert microseconds to (fractional) cycles."""
        return us * 1e3 / self.cycle_ns

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert cycles to milliseconds."""
        return cycles * self.cycle_ns / 1e6

    def cycles_to_us(self, cycles: float) -> float:
        """Convert cycles to microseconds."""
        return cycles * self.cycle_ns / 1e3

    def rate_fraction(self, rate_mbps: float) -> float:
        """Fraction of this PC's bandwidth used by a stream of ``rate_mbps``."""
        return rate_mbps / self.bandwidth_mbps


@dataclass(frozen=True)
class WorkloadScale:
    """Uniform shrink factor applied to workload data and time constants.

    With ``factor = s``, an MPEG-2 frame of ``F`` flits every ``T``
    cycles becomes ``F/s`` flits every ``T/s`` cycles.  The per-stream
    bandwidth fraction ``F/T`` — which, together with the scheduling
    policy, determines contention at the mux points — is unchanged.
    ``factor = 1`` is the paper-faithful workload.

    Reported times are converted back to *paper-equivalent* units by
    multiplying measured cycles by ``factor`` before applying the
    :class:`LinkSpec` cycle time, so a jitter-free scaled run still
    reports a 33 ms mean delivery interval.
    """

    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ConfigurationError(
                f"workload scale factor must be positive, got {self.factor}"
            )

    def scale_flits(self, flits: float) -> float:
        """Shrink a flit count by the scale factor."""
        return flits / self.factor

    def scale_cycles(self, cycles: float) -> float:
        """Shrink a cycle count by the scale factor."""
        return cycles / self.factor

    def unscale_cycles(self, cycles: float) -> float:
        """Expand a measured cycle count back to paper-equivalent cycles."""
        return cycles * self.factor


@dataclass(frozen=True)
class TimeBase:
    """Bundles a :class:`LinkSpec` and a :class:`WorkloadScale`.

    This is what metric trackers use to report results in the paper's
    units regardless of the scale the simulation actually ran at.
    """

    link: LinkSpec
    scale: WorkloadScale

    def report_ms(self, measured_cycles: float) -> float:
        """Convert measured cycles to paper-equivalent milliseconds."""
        return self.link.cycles_to_ms(self.scale.unscale_cycles(measured_cycles))

    def report_us(self, measured_cycles: float) -> float:
        """Convert measured cycles to paper-equivalent microseconds."""
        return self.link.cycles_to_us(self.scale.unscale_cycles(measured_cycles))
