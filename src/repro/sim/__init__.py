"""Simulation kernel: clock, event heap, RNG streams, unit conversions.

The simulator is *cycle accurate* at the router level: one simulation
time unit is one router cycle, defined as the time a physical channel
needs to transfer one flit.  :class:`~repro.sim.units.LinkSpec` converts
between wall-clock quantities (Mbps, milliseconds) and simulation
quantities (flits, cycles), and :class:`~repro.sim.units.WorkloadScale`
shrinks workload time constants while preserving every bandwidth ratio,
which is what makes long flit-level runs tractable in pure Python.
"""

from repro.sim.activation import ActivationScheduler
from repro.sim.events import EventHeap
from repro.sim.rng import RngStreams
from repro.sim.units import (
    MPEG2_FRAME_BYTES_MEAN,
    MPEG2_FRAME_BYTES_STD,
    MPEG2_FRAME_INTERVAL_MS,
    LinkSpec,
    WorkloadScale,
)

__all__ = [
    "ActivationScheduler",
    "EventHeap",
    "RngStreams",
    "LinkSpec",
    "WorkloadScale",
    "MPEG2_FRAME_BYTES_MEAN",
    "MPEG2_FRAME_BYTES_STD",
    "MPEG2_FRAME_INTERVAL_MS",
]
