"""A minimal future-event heap for the network simulator.

The router pipeline itself is stepped cycle-by-cycle (it is almost
always busy under the loads the paper studies), but *injections* —
message arrivals from traffic sources — are sparse in time, so they
live in a binary heap.  When the network holds no flits in flight, the
simulator consults :meth:`EventHeap.next_time` and jumps the clock
forward, which makes low-load sweeps cheap.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

Event = Tuple[int, int, Callable[[], Any]]


class EventHeap:
    """Time-ordered heap of ``(time, seq, callback)`` events.

    ``seq`` is a monotonically increasing tie-breaker so events at the
    same cycle fire in scheduling order and callbacks never get
    compared.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(self, time: int, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` to fire at cycle ``time``."""
        heapq.heappush(self._heap, (time, self._seq, callback))
        self._seq += 1

    def next_time(self) -> Optional[int]:
        """Cycle of the earliest pending event, or ``None`` if empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def fire_due(self, now: int) -> int:
        """Fire every event scheduled at or before ``now``.

        Returns the number of events fired.  Callbacks may schedule
        further events, including at ``now`` itself.
        """
        fired = 0
        heap = self._heap
        while heap and heap[0][0] <= now:
            _, _, callback = heapq.heappop(heap)
            callback()
            fired += 1
        return fired
