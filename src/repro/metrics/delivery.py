"""Frame delivery-interval tracking for VBR/CBR streams.

A frame is *delivered* when the tail flit of its last constituent
message reaches the destination.  The delivery interval of a stream is
the difference between the delivery times of two successive frames
(paper section 4.1); a mean of 33 ms with zero standard deviation is
jitter-free 30 frames/sec playback.

Intervals are recorded only when the later frame completes after the
warmup horizon, so cold-start transients do not pollute the statistics.
Frame completions are processed in completion order, which is also how
a playout buffer at the destination would observe them.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.metrics.stats import RunningStats
from repro.router.flit import Message


class FrameDeliveryTracker:
    """Aggregates delivery intervals across all real-time streams."""

    def __init__(self, warmup: int = 0) -> None:
        self.warmup = warmup
        #: (stream, frame) -> messages still outstanding
        self._outstanding: Dict[Tuple[int, int], int] = {}
        #: stream -> delivery time of its most recently completed frame
        self._last_delivery: Dict[int, int] = {}
        #: pooled intervals in cycles (post-warmup)
        self.intervals: List[float] = []
        self.frames_delivered = 0
        self._interval_stats = RunningStats()

    def on_message(self, msg: Message, clock: int) -> None:
        """Record one delivered real-time message."""
        key = (msg.stream_id, msg.frame_id)
        remaining = self._outstanding.get(key)
        if remaining is None:
            remaining = msg.frame_messages
        remaining -= 1
        if remaining > 0:
            self._outstanding[key] = remaining
            return
        self._outstanding.pop(key, None)
        self._frame_delivered(msg.stream_id, clock)

    def _frame_delivered(self, stream_id: int, clock: int) -> None:
        self.frames_delivered += 1
        last = self._last_delivery.get(stream_id)
        self._last_delivery[stream_id] = clock
        if last is None:
            return
        if clock < self.warmup:
            return
        interval = float(clock - last)
        self.intervals.append(interval)
        self._interval_stats.add(interval)

    @property
    def mean_interval(self) -> float:
        """Mean delivery interval ``d`` in cycles (nan when empty)."""
        if self._interval_stats.n == 0:
            return float("nan")
        return self._interval_stats.mean

    @property
    def std_interval(self) -> float:
        """Standard deviation ``sigma_d`` in cycles (nan when empty)."""
        if self._interval_stats.n == 0:
            return float("nan")
        return self._interval_stats.std

    @property
    def interval_count(self) -> int:
        """Number of intervals recorded after warmup."""
        return self._interval_stats.n

    @property
    def incomplete_frames(self) -> int:
        """Frames with at least one message still in flight."""
        return len(self._outstanding)
