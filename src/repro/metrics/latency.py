"""Best-effort message latency tracking (paper Table 2 / Fig. 9c).

Latency is measured from injection (the message is offered to the NI)
to the tail flit's arrival at the destination — the end-to-end figure a
best-effort application observes, including source queueing caused by
real-time traffic holding the link.
"""

from __future__ import annotations

from typing import List

from repro.metrics.stats import RunningStats
from repro.router.flit import Message


class LatencyTracker:
    """Aggregates end-to-end best-effort message latency."""

    def __init__(self, warmup: int = 0, keep_samples: bool = True) -> None:
        self.warmup = warmup
        self.keep_samples = keep_samples
        self.samples: List[float] = []
        self._stats = RunningStats()

    def on_message(self, msg: Message, clock: int) -> None:
        """Record one delivered best-effort message."""
        if clock < self.warmup:
            return
        if msg.inject_time < 0:
            return
        latency = float(clock - msg.inject_time)
        self._stats.add(latency)
        if self.keep_samples:
            self.samples.append(latency)

    @property
    def mean_latency(self) -> float:
        """Mean latency in cycles (nan when no message was recorded)."""
        if self._stats.n == 0:
            return float("nan")
        return self._stats.mean

    @property
    def std_latency(self) -> float:
        """Latency standard deviation in cycles."""
        if self._stats.n == 0:
            return float("nan")
        return self._stats.std

    @property
    def max_latency(self) -> float:
        """Largest observed latency in cycles."""
        if self._stats.n == 0:
            return float("nan")
        return self._stats.max

    @property
    def count(self) -> int:
        """Messages recorded after warmup."""
        return self._stats.n
