"""Metric collection facade wired into the network's delivery callback."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.metrics.delivery import FrameDeliveryTracker
from repro.metrics.latency import LatencyTracker
from repro.router.flit import Message
from repro.sim.units import TimeBase


class MetricsCollector:
    """Dispatches delivered messages to the right tracker.

    Attach via ``Network(..., on_message=collector.on_message)`` or by
    passing the collector to the experiment runner.  ``warmup`` is in
    cycles; deliveries before it are ignored (delivery intervals need
    one pre-warmup completion per stream to anchor the first interval,
    which the tracker handles internally).
    """

    def __init__(self, timebase: TimeBase, warmup: int = 0) -> None:
        self.timebase = timebase
        self.warmup = warmup
        self.delivery = FrameDeliveryTracker(warmup=warmup)
        self.latency = LatencyTracker(warmup=warmup)
        self._health_monitor = None
        self._profiler = None

    def attach_health(self, monitor) -> None:
        """Fold a LinkHealthMonitor's counters into snapshots."""
        self._health_monitor = monitor

    def attach_profiler(self, profiler) -> None:
        """Fold a LoopProfiler's per-phase wall times into snapshots."""
        self._profiler = profiler

    def on_message(self, msg: Message, clock: int) -> None:
        """Network delivery callback."""
        if msg.is_real_time:
            self.delivery.on_message(msg, clock)
        else:
            self.latency.on_message(msg, clock)

    def snapshot(self) -> "RunMetrics":
        """Freeze the current statistics into a result record."""
        tb = self.timebase
        raw_us = tb.link.cycles_to_us  # no workload unscaling (see below)
        health = {}
        if self._health_monitor is not None:
            summary = self._health_monitor.summary()
            health = dict(
                link_downs=summary["link_downs"],
                link_flaps=summary["link_flaps"],
                link_recoveries=summary["link_recoveries"],
                mean_time_to_recovery_cycles=summary[
                    "mean_time_to_recovery_cycles"
                ],
                reroutes=summary["reroutes"],
                detours=summary["detours"],
                worms_requeued=summary["worms_requeued"],
                streams_shed=summary["streams_shed"],
                be_messages_shed=summary["be_messages_shed"],
                switch_downs=summary["switch_downs"],
                switch_recoveries=summary["switch_recoveries"],
                mean_switch_time_to_recover_cycles=summary[
                    "mean_switch_time_to_recover_cycles"
                ],
                hosts_isolated=summary["hosts_isolated"],
                host_downtime_cycles=summary["host_downtime_cycles"],
                availability=list(summary["availability"]),
            )
        return RunMetrics(
            mean_delivery_interval_ms=tb.report_ms(self.delivery.mean_interval),
            std_delivery_interval_ms=tb.report_ms(self.delivery.std_interval),
            frames_delivered=self.delivery.frames_delivered,
            interval_count=self.delivery.interval_count,
            be_latency_us=raw_us(self.latency.mean_latency),
            be_latency_us_paper_equivalent=tb.report_us(
                self.latency.mean_latency
            ),
            be_latency_std_us=raw_us(self.latency.std_latency),
            be_message_count=self.latency.count,
            profile=(
                {} if self._profiler is None else self._profiler.summary()
            ),
            **health,
        )


@dataclass(frozen=True)
class RunMetrics:
    """One run's headline numbers, in the paper's units.

    Delivery intervals are reported in *paper-equivalent* milliseconds:
    measured cycles are multiplied by the workload scale factor before
    converting, so a jitter-free run reports ~33 ms at any scale.

    Best-effort latency is reported two ways: ``be_latency_us`` converts
    measured cycles directly (the 20-flit message itself is not scaled),
    while ``be_latency_us_paper_equivalent`` applies the workload scale,
    which upper-bounds the queueing component at paper timescales.
    """

    mean_delivery_interval_ms: float
    std_delivery_interval_ms: float
    frames_delivered: int
    interval_count: int
    be_latency_us: float
    be_latency_us_paper_equivalent: float
    be_latency_std_us: float
    be_message_count: int
    # Failover counters (defaulted so checkpoints written before the
    # health monitor existed still decode via RunMetrics(**saved)).
    link_downs: int = 0
    link_flaps: int = 0
    link_recoveries: int = 0
    mean_time_to_recovery_cycles: float = 0.0
    reroutes: int = 0
    detours: int = 0
    worms_requeued: int = 0
    streams_shed: int = 0
    be_messages_shed: int = 0
    # Switch-level failover counters (same back-compat rule: defaulted
    # so checkpoints from before the datacenter disaster layer decode).
    switch_downs: int = 0
    switch_recoveries: int = 0
    mean_switch_time_to_recover_cycles: float = 0.0
    #: hosts the failover layer ever declared unreachable
    hosts_isolated: int = 0
    #: summed cycles hosts spent isolated (open intervals run to the
    #: end of the run)
    host_downtime_cycles: int = 0
    #: per-host reachability timeline: ``{"cycle", "host", "event"}``
    #: dicts with event "isolated" or "restored", in detection order
    availability: list = field(default_factory=list)
    #: per-phase simulation-loop wall seconds (LoopProfiler.summary());
    #: empty unless the run was profiled — wall time is not part of the
    #: deterministic metric surface, so bench parity checks stay exact
    profile: Dict[str, float] = field(default_factory=dict)

    @property
    def d(self) -> float:
        """The paper's ``d`` (mean delivery interval, ms)."""
        return self.mean_delivery_interval_ms

    @property
    def sigma_d(self) -> float:
        """The paper's ``sigma_d`` (delivery-interval std, ms)."""
        return self.std_delivery_interval_ms

    def is_jitter_free(
        self,
        nominal_ms: float = 33.0,
        d_tolerance_ms: float = 1.0,
        sigma_tolerance_ms: float = 1.0,
    ) -> bool:
        """Paper-style jitter-free check: d ~ 33 ms and sigma_d ~ 0."""
        return (
            abs(self.mean_delivery_interval_ms - nominal_ms) <= d_tolerance_ms
            and self.std_delivery_interval_ms <= sigma_tolerance_ms
        )
