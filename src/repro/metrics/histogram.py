"""Fixed-bin histograms for delivery intervals and latencies.

The paper reports means and standard deviations; a histogram of the
delivery intervals shows *where* the jitter lives (a tight spike at
33 ms for a healthy run, a heavy right tail once the router saturates).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

from repro.errors import ConfigurationError


class Histogram:
    """Streaming fixed-width histogram with under/overflow bins."""

    def __init__(self, low: float, high: float, bins: int) -> None:
        if bins < 1:
            raise ConfigurationError(f"need >= 1 bin, got {bins}")
        if not low < high:
            raise ConfigurationError(
                f"need low < high, got [{low}, {high})"
            )
        self.low = low
        self.high = high
        self.bins = bins
        self._width = (high - low) / bins
        self.counts: List[int] = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self.total = 0

    def add(self, value: float) -> None:
        """Count one observation (nan is ignored)."""
        if value != value:
            return
        self.total += 1
        if value < self.low:
            self.underflow += 1
            return
        if value >= self.high:
            self.overflow += 1
            return
        self.counts[int((value - self.low) / self._width)] += 1

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def bin_edges(self, index: int) -> Tuple[float, float]:
        """The ``[low, high)`` edges of bin ``index``."""
        if not 0 <= index < self.bins:
            raise ConfigurationError(f"bin index {index} out of range")
        return (
            self.low + index * self._width,
            self.low + (index + 1) * self._width,
        )

    def mode_bin(self) -> int:
        """Index of the fullest bin."""
        return max(range(self.bins), key=lambda i: self.counts[i])

    def fraction_in(self, low: float, high: float) -> float:
        """Fraction of all observations falling in ``[low, high)``."""
        if self.total == 0:
            return float("nan")
        inside = 0
        if low <= self.low:
            inside += self.underflow if low < self.low else 0
        for index in range(self.bins):
            edge_low, edge_high = self.bin_edges(index)
            if edge_low >= low and edge_high <= high:
                inside += self.counts[index]
        if high > self.high:
            inside += self.overflow
        return inside / self.total

    def render(self, width: int = 40) -> str:
        """Multi-line bar rendering, one row per bin."""
        peak = max(self.counts) or 1
        lines = []
        if self.underflow:
            lines.append(f"  < {self.low:10.3f} | {self.underflow}")
        for index, count in enumerate(self.counts):
            low, high = self.bin_edges(index)
            bar = "#" * int(math.ceil(width * count / peak)) if count else ""
            lines.append(f"[{low:9.3f},{high:9.3f}) |{bar} {count}")
        if self.overflow:
            lines.append(f" >= {self.high:10.3f} | {self.overflow}")
        return "\n".join(lines)


def interval_histogram(
    intervals_ms: Iterable[float],
    nominal_ms: float = 33.0,
    span_ms: float = 10.0,
    bins: int = 20,
) -> Histogram:
    """Histogram of delivery intervals centred on the nominal period."""
    histogram = Histogram(
        low=nominal_ms - span_ms, high=nominal_ms + span_ms, bins=bins
    )
    histogram.extend(intervals_ms)
    return histogram
