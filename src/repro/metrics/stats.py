"""Streaming and summary statistics helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence


class RunningStats:
    """Welford's online mean/variance accumulator.

    Numerically stable for the long interval series the delivery
    tracker produces; supports merging partial accumulators (used when
    pooling per-stream statistics).
    """

    __slots__ = ("n", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        """Accumulate one observation."""
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (x - self.mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def extend(self, xs: Iterable[float]) -> None:
        """Accumulate many observations."""
        for x in xs:
            self.add(x)

    @property
    def variance(self) -> float:
        """Population variance (0 for fewer than two observations)."""
        if self.n < 2:
            return 0.0
        return self._m2 / self.n

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> None:
        """Fold ``other`` into this accumulator (Chan et al.)."""
        if other.n == 0:
            return
        if self.n == 0:
            self.n = other.n
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        total = self.n + other.n
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.n * other.n / total
        self.mean += delta * other.n / total
        self.n = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunningStats(n={self.n}, mean={self.mean:.4g}, std={self.std:.4g})"


@dataclass(frozen=True)
class Summary:
    """Immutable snapshot of a sample's statistics."""

    n: int
    mean: float
    std: float
    min: float
    max: float
    p50: float
    p95: float
    p99: float


def _percentile(sorted_xs: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of a pre-sorted sample."""
    if not sorted_xs:
        return math.nan
    if len(sorted_xs) == 1:
        return sorted_xs[0]
    pos = q * (len(sorted_xs) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_xs) - 1)
    frac = pos - lo
    return sorted_xs[lo] * (1 - frac) + sorted_xs[hi] * frac


def summarize(samples: Iterable[float]) -> Optional[Summary]:
    """Full summary of a finite sample; ``None`` when empty."""
    xs: List[float] = sorted(samples)
    if not xs:
        return None
    stats = RunningStats()
    stats.extend(xs)
    return Summary(
        n=stats.n,
        mean=stats.mean,
        std=stats.std,
        min=xs[0],
        max=xs[-1],
        p50=_percentile(xs, 0.50),
        p95=_percentile(xs, 0.95),
        p99=_percentile(xs, 0.99),
    )
