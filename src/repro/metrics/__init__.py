"""Output metrics (paper section 4.1).

The important output parameters are the **mean frame delivery interval**
``d`` for CBR/VBR traffic, its **standard deviation** ``sigma_d``
(``d = 33 ms`` with ``sigma_d = 0`` is jitter-free 30 frames/sec
delivery), and the **average latency** of best-effort messages.
"""

from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.metrics.delivery import FrameDeliveryTracker
from repro.metrics.histogram import Histogram, interval_histogram
from repro.metrics.latency import LatencyTracker
from repro.metrics.stats import RunningStats, summarize

__all__ = [
    "FrameDeliveryTracker",
    "Histogram",
    "LatencyTracker",
    "MetricsCollector",
    "RunMetrics",
    "RunningStats",
    "interval_histogram",
    "summarize",
]
