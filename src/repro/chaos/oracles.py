"""Verdict oracles for chaos scenarios.

A chaos run produces either an exception or an
:class:`~repro.experiments.runner.ExperimentResult`; the oracles here
turn both into a *verdict* — pass, or fail under a named oracle.  The
names are the harness's failure taxonomy:

============== =====================================================
oracle          what it caught
============== =====================================================
``invariant``   the riding :class:`InvariantChecker` (credit drift,
                conservation ledger, stalled worm progress)
``deadlock``    the network progress watchdog fired
``timeout``     the scenario blew its wall-clock budget
``flow-control`` buffer over/underflow inside a router
``routing``     an impossible routing decision
``config``      the scenario assembled an invalid experiment (a
                generator bug, not a simulator bug)
``simulation``  any other typed simulator error
``crash``       an exception outside the simulator's taxonomy
``conservation`` result-level accounting broke (flits, transport or
                degradation bookkeeping) without tripping a checker
``parity``      fused vs legacy run-loop metrics diverged on a
                zero-fault scenario
``health-noop`` passive health monitoring changed zero-fault metrics
============== =====================================================

The last three are *differential*: they need a finished result (or a
twin run) rather than an exception, and they are what makes the
campaign a differential tester instead of a crash fuzzer.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.errors import (
    ConfigurationError,
    DeadlockError,
    FlowControlError,
    InvariantViolation,
    PointTimeoutError,
    RoutingError,
    SimulationError,
)
from repro.experiments.bench_core import _canon

#: every oracle name a verdict may carry, for docs and validation
ORACLES = (
    "invariant",
    "deadlock",
    "timeout",
    "flow-control",
    "routing",
    "config",
    "simulation",
    "crash",
    "conservation",
    "parity",
    "health-noop",
)


def classify_error(exc: BaseException) -> str:
    """Name the oracle an exception falls under (most specific first)."""
    if isinstance(exc, InvariantViolation):
        return "invariant"
    if isinstance(exc, DeadlockError):
        return "deadlock"
    if isinstance(exc, PointTimeoutError):
        return "timeout"
    if isinstance(exc, FlowControlError):
        return "flow-control"
    if isinstance(exc, RoutingError):
        return "routing"
    if isinstance(exc, ConfigurationError):
        return "config"
    if isinstance(exc, SimulationError):
        return "simulation"
    return "crash"


def canonical_metrics(result) -> dict:
    """The full metrics record in NaN-safe comparable form.

    This is the bit-identity surface for the parity and health-no-op
    oracles: two runs agree exactly when these dicts are equal.
    """
    return _canon(dataclasses.asdict(result.metrics))


def metrics_digest(result) -> dict:
    """A small fingerprint of a run, pinned into repro files.

    Replaying a repro re-derives this digest; a mismatch means the
    simulator's behaviour on the scenario changed since the repro was
    recorded (fixed — or differently broken).
    """
    metrics = result.metrics
    return _canon(
        {
            "cycles_run": result.cycles_run,
            "flits_injected": result.flits_injected,
            "flits_ejected": result.flits_ejected,
            "mean_delivery_interval_ms": metrics.mean_delivery_interval_ms,
            "frames_delivered": metrics.frames_delivered,
            "be_latency_us": metrics.be_latency_us,
            "be_message_count": metrics.be_message_count,
        }
    )


def check_accounting(result) -> Optional[str]:
    """Result-level conservation/bookkeeping audit.

    Catches breakage that slips past the in-run checkers because it
    lives in the *summaries*: flit counts that do not add up, transport
    per-class splits that disagree with their totals, or QoS
    degradation reported on a fabric whose health monitor saw no
    symptoms.  Returns a failure detail string, or ``None`` when the
    books balance.
    """
    injected = result.flits_injected
    ejected = result.flits_ejected
    stats = result.fault_stats or {}
    lost = stats.get("flits_lost", 0)
    if ejected + lost > injected:
        return (
            f"flit books don't balance: ejected {ejected} + lost {lost} "
            f"> injected {injected}"
        )

    if "delivered" in stats:
        detail = _check_transport(stats)
        if detail is not None:
            return detail

    health = stats.get("health")
    if health is not None:
        detail = _check_degradation(health)
        if detail is not None:
            return detail
    return None


def _check_transport(stats: dict) -> Optional[str]:
    """Per-class transport splits must agree with their totals."""
    delivered = stats["delivered"]
    split = stats["qos_delivered"] + stats["be_delivered"]
    if split != delivered:
        return (
            f"transport class split broken: qos {stats['qos_delivered']} "
            f"+ be {stats['be_delivered']} != delivered {delivered}"
        )
    abandoned = stats["abandoned"]
    split = stats["qos_abandoned"] + stats["be_abandoned"]
    if split != abandoned:
        return (
            f"transport class split broken: qos {stats['qos_abandoned']} "
            f"+ be {stats['be_abandoned']} != abandoned {abandoned}"
        )
    if stats["qos_deadline_misses"] > stats["qos_delivered"]:
        return (
            f"more QoS deadline misses ({stats['qos_deadline_misses']}) "
            f"than QoS deliveries ({stats['qos_delivered']})"
        )
    for name in ("delivered_fraction", "qos_delivered_fraction"):
        fraction = stats[name]
        if not 0.0 <= fraction <= 1.0:
            return f"{name} out of range: {fraction}"
    return None


def _check_degradation(health: dict) -> Optional[str]:
    """QoS degradation must be monotone in observed symptoms.

    The failover stack degrades service (sheds streams, pauses
    best-effort) only in response to link-health symptoms, so a summary
    reporting shedding with zero observed link downs means the monitor
    degraded a healthy fabric.
    """
    if health.get("link_downs", 0) == 0:
        for counter in ("streams_shed", "be_messages_shed"):
            shed = health.get(counter, 0)
            if shed:
                return (
                    f"degradation without symptoms: {counter}={shed} "
                    f"but link_downs=0"
                )
    readmitted = health.get("streams_readmitted", 0)
    shed = health.get("streams_shed", 0)
    if readmitted > shed:
        return (
            f"readmitted {readmitted} streams but only {shed} were shed"
        )
    return None
