"""Differential chaos campaigns: run, judge, shrink, replay.

The campaign pipeline:

1. :func:`~repro.chaos.scenario.generate` draws a deterministic stream
   of scenarios from a :class:`~repro.chaos.scenario.ScenarioSpace`;
2. :func:`run_scenario` executes each one under the invariant checker,
   the progress watchdog, and a wall-clock budget, then applies the
   differential oracles (fused-vs-legacy parity, array-vs-object
   engine parity, health-monitoring no-op, accounting conservation) —
   the verdict is a plain JSON dict, never an exception;
3. failing scenarios are :func:`shrink`-ed by greedy delta debugging —
   a candidate simplification is kept only when it still fails under
   the *same* oracle — and written as replayable repro files;
4. :func:`replay` re-runs a repro file and checks the verdict (and,
   for passing corpus entries, the metrics digest) still matches.

Campaigns run their scenarios through the ordinary
:class:`~repro.experiments.parallel.ParallelSweepExecutor`, so they
inherit worker isolation, crash recovery, and crash-safe
:class:`~repro.experiments.resilience.SweepCheckpoint` resume for free.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.chaos.oracles import (
    canonical_metrics,
    check_accounting,
    classify_error,
    metrics_digest,
)
from repro.chaos.scenario import (
    SABOTAGES,
    Scenario,
    ScenarioSpace,
    generate,
    scenario_topology,
)
from repro.errors import ChaosFailure, ConfigurationError
from repro.faults import expand_domain
from repro.experiments.parallel import ParallelSweepExecutor, SweepTask
from repro.experiments.resilience import SweepCheckpoint, wall_clock_limit
from repro.experiments.runner import (
    simulate_butterfly,
    simulate_fat_mesh,
    simulate_fat_tree3,
    simulate_single_switch,
)
from repro.router.config import RoutingMode

REPRO_FORMAT = "mediaworm-chaos-repro-v1"


# ----------------------------------------------------------------------
# running one scenario


_RUNNERS = {
    "single": simulate_single_switch,
    "mesh": simulate_fat_mesh,
    "tree": simulate_fat_tree3,
    "butterfly": simulate_butterfly,
}


def _execute(scenario: Scenario):
    """One raw simulation of the scenario (exceptions propagate)."""
    return _RUNNERS[scenario.topology](scenario.to_experiment())


def _execute_legacy(scenario: Scenario):
    """The same simulation under the legacy full-scan run loop.

    The loop choice is read from ``REPRO_LEGACY_LOOP`` at Network
    construction, so toggling the variable around the call selects the
    loop for exactly this run (same save/restore discipline as
    ``bench_core``).
    """
    saved = os.environ.get("REPRO_LEGACY_LOOP")
    os.environ["REPRO_LEGACY_LOOP"] = "1"
    try:
        return _execute(scenario)
    finally:
        if saved is None:
            os.environ.pop("REPRO_LEGACY_LOOP", None)
        else:
            os.environ["REPRO_LEGACY_LOOP"] = saved


def _execute_array(scenario: Scenario):
    """The same simulation under the array engine.

    ``REPRO_LEGACY_LOOP`` is cleared around the run: the array engine
    refuses to coexist with the legacy scan (`EngineError`), and a
    replay of this scenario on the legacy loop must still be able to
    run its engine-parity twin.
    """
    saved = os.environ.pop("REPRO_LEGACY_LOOP", None)
    try:
        return _RUNNERS[scenario.topology](
            dataclasses.replace(scenario.to_experiment(), engine="array")
        )
    finally:
        if saved is not None:
            os.environ["REPRO_LEGACY_LOOP"] = saved


def _verdict(
    scenario: Scenario,
    status: str,
    oracle: Optional[str] = None,
    detail: Optional[str] = None,
    digest: Optional[dict] = None,
    wall_s: float = 0.0,
) -> dict:
    return {
        "key": scenario.key,
        "status": status,
        "oracle": oracle,
        "detail": detail,
        "digest": digest,
        "wall_s": round(wall_s, 3),
    }


def run_scenario(scenario: Scenario) -> dict:
    """Run one scenario under the full oracle stack; never raises.

    The wall-clock budget covers the scenario's primary run *and* its
    differential twins — a scenario is judged as a unit.  The verdict
    is JSON-plain, so campaign checkpoints store it directly.
    """
    started = time.perf_counter()
    try:
        with wall_clock_limit(scenario.wall_timeout_s):
            result = _execute(scenario)
            detail = check_accounting(result)
            if detail is not None:
                return _verdict(
                    scenario,
                    "fail",
                    "conservation",
                    detail,
                    wall_s=time.perf_counter() - started,
                )
            digest = metrics_digest(result)
            detail, oracle = _differential(scenario, result)
            if detail is not None:
                return _verdict(
                    scenario,
                    "fail",
                    oracle,
                    detail,
                    digest=digest,
                    wall_s=time.perf_counter() - started,
                )
    except Exception as exc:
        return _verdict(
            scenario,
            "fail",
            classify_error(exc),
            f"{type(exc).__name__}: {exc}",
            wall_s=time.perf_counter() - started,
        )
    return _verdict(
        scenario,
        "pass",
        digest=digest,
        wall_s=time.perf_counter() - started,
    )


def _differential(
    scenario: Scenario, result
) -> Tuple[Optional[str], Optional[str]]:
    """Twin-run oracles; ``(detail, oracle)`` or ``(None, None)``.

    The twins need a genuinely unperturbed baseline, so they apply
    only to zero-fault, sabotage-free scenarios under oracle routing
    (adaptive mode reserves an escape VC per class partition and
    legitimately changes metrics even on a healthy fabric).
    """
    if (
        not scenario.is_zero_fault
        or scenario.sabotage is not None
        or scenario.routing_mode != RoutingMode.ORACLE
    ):
        return None, None
    reference = canonical_metrics(result)
    legacy = _execute_legacy(scenario)
    if canonical_metrics(legacy) != reference:
        return (
            "fused and legacy run loops disagree on zero-fault metrics",
            "parity",
        )
    array_twin = _execute_array(scenario)
    if canonical_metrics(array_twin) != reference:
        return (
            "array and object engines disagree on zero-fault metrics",
            "engine-parity",
        )
    if scenario.health is not None:
        bare = _execute(dataclasses.replace(scenario, health=None))
        if canonical_metrics(bare) != reference:
            return (
                "passive health monitoring changed zero-fault metrics",
                "health-noop",
            )
    return None, None


def _scenario_task(scenario: Scenario) -> dict:
    """Sweep-task runner body (module-level, so pool workers pickle it)."""
    return run_scenario(scenario)


# ----------------------------------------------------------------------
# shrinking


def _candidates(scenario: Scenario) -> Iterator[Tuple[str, Scenario]]:
    """Named one-step simplifications, most aggressive first.

    Each candidate is a strictly simpler scenario; the shrinker keeps
    one only when it still fails under the original oracle, so the
    order here is a search heuristic, not a correctness concern.
    """
    plan = scenario.faults
    if not plan.is_zero:
        yield (
            "drop-faults",
            dataclasses.replace(
                scenario, faults=type(plan)(), recovery=None
            ),
        )
    for index in range(len(plan.down_windows)):
        windows = (
            plan.down_windows[:index] + plan.down_windows[index + 1 :]
        )
        yield (
            f"drop-window-{index}",
            dataclasses.replace(
                scenario,
                faults=dataclasses.replace(plan, down_windows=windows),
            ),
        )
    for index in range(len(plan.domains)):
        rest = plan.domains[:index] + plan.domains[index + 1 :]
        yield (
            f"drop-domain-{index}",
            dataclasses.replace(
                scenario,
                faults=dataclasses.replace(plan, domains=rest),
            ),
        )
        # demote the correlated fault to its constituent link windows,
        # so the drop-window passes can then bisect down to the one
        # link that actually matters
        try:
            expanded = expand_domain(
                plan.domains[index], scenario_topology(scenario)
            )
        except ConfigurationError:
            expanded = ()
        if expanded:
            yield (
                f"demote-domain-{index}",
                dataclasses.replace(
                    scenario,
                    faults=dataclasses.replace(
                        plan,
                        domains=rest,
                        down_windows=plan.down_windows + expanded,
                    ),
                ),
            )
    if plan.flit_corrupt_prob > 0:
        yield (
            "zero-corrupt",
            dataclasses.replace(
                scenario,
                faults=dataclasses.replace(plan, flit_corrupt_prob=0.0),
            ),
        )
    if plan.flit_loss_prob > 0:
        yield (
            "zero-loss",
            dataclasses.replace(
                scenario,
                faults=dataclasses.replace(plan, flit_loss_prob=0.0),
            ),
        )
    if scenario.topology != "single":
        # down windows and domains name multi-router channels and
        # switches, so the single-switch twin drops them with the
        # topology
        yield (
            "shrink-topology",
            dataclasses.replace(
                scenario,
                topology="single",
                routing_mode=RoutingMode.ORACLE,
                faults=dataclasses.replace(
                    plan, down_windows=(), domains=()
                ),
            ),
        )
    if scenario.routing_mode != RoutingMode.ORACLE:
        yield (
            "mode-oracle",
            dataclasses.replace(scenario, routing_mode=RoutingMode.ORACLE),
        )
    if (
        scenario.health is not None
        and scenario.routing_mode == RoutingMode.ORACLE
    ):
        yield "no-health", dataclasses.replace(scenario, health=None)
    if scenario.recovery is not None and plan.is_zero:
        yield "no-recovery", dataclasses.replace(scenario, recovery=None)
    if scenario.sabotage is not None:
        yield "no-sabotage", dataclasses.replace(scenario, sabotage=None)
    if scenario.measure_frames > 1:
        yield (
            "fewer-frames",
            dataclasses.replace(
                scenario, measure_frames=scenario.measure_frames // 2
            ),
        )
    if scenario.message_size > 8:
        yield (
            "smaller-message",
            dataclasses.replace(scenario, message_size=8),
        )
    if scenario.load > 0.2:
        yield (
            "halve-load",
            dataclasses.replace(scenario, load=round(scenario.load / 2, 3)),
        )
    if scenario.vcs_per_pc > 4 and scenario.routing_mode == RoutingMode.ORACLE:
        yield "fewer-vcs", dataclasses.replace(scenario, vcs_per_pc=4)
    if scenario.topology == "single" and scenario.num_ports > 4:
        yield (
            "fewer-ports",
            dataclasses.replace(scenario, num_ports=4),
        )


def shrink(
    scenario: Scenario,
    oracle: str,
    budget: int = 40,
    log: Optional[Callable[[str], None]] = None,
) -> Tuple[Scenario, List[str]]:
    """Greedy delta-debugging to a locally minimal failing scenario.

    Repeatedly tries the named simplification passes; a candidate is
    adopted only when it still fails under ``oracle`` (a candidate that
    passes, or fails differently, is evidence the removed ingredient
    mattered).  Stops at a fixpoint — no pass makes progress — or when
    ``budget`` re-runs are spent.  Returns the minimal scenario and the
    trail of adopted pass names.
    """
    current = scenario
    trail: List[str] = []
    runs = 0
    progress = True
    while progress and runs < budget:
        progress = False
        for name, candidate in _candidates(current):
            if runs >= budget:
                break
            runs += 1
            verdict = run_scenario(candidate)
            if (
                verdict["status"] == "fail"
                and verdict["oracle"] == oracle
            ):
                current = candidate
                trail.append(name)
                progress = True
                if log is not None:
                    log(f"shrink[{scenario.key}]: kept {name}")
                break
    return current, trail


# ----------------------------------------------------------------------
# repro files


def write_repro(
    corpus_dir: str,
    scenario: Scenario,
    verdict: dict,
    trail: Optional[List[str]] = None,
    campaign: Optional[dict] = None,
) -> str:
    """Persist one replayable repro; returns its path."""
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, f"{scenario.key}.json")
    payload = {
        "format": REPRO_FORMAT,
        "scenario": scenario.to_dict(),
        "verdict": {
            "status": verdict["status"],
            "oracle": verdict["oracle"],
            "detail": verdict["detail"],
            "digest": verdict["digest"],
        },
        "shrink_trail": list(trail or ()),
        "campaign": dict(campaign or ()),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_repro(path: str) -> Tuple[Scenario, dict]:
    """Parse a repro file into its scenario and recorded verdict."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as exc:
        raise ConfigurationError(
            f"{path}: not a readable repro file "
            f"({type(exc).__name__}: {exc})"
        ) from exc
    if not isinstance(payload, dict) or payload.get("format") != REPRO_FORMAT:
        found = (
            payload.get("format") if isinstance(payload, dict) else payload
        )
        raise ConfigurationError(
            f"{path}: unknown repro format {found!r} "
            f"(expected {REPRO_FORMAT!r})"
        )
    scenario = Scenario.from_dict(payload["scenario"])
    return scenario, payload.get("verdict", {})


def replay(path: str) -> Tuple[bool, str, dict]:
    """Re-run a repro file; ``(ok, message, actual_verdict)``.

    The replay matches when the status agrees, a failure reproduces
    under the recorded oracle, and — where both runs have one — the
    metrics digest is bit-identical (the digest is what turns passing
    corpus entries into determinism regressions).
    """
    scenario, recorded = load_repro(path)
    actual = run_scenario(scenario)
    expected_status = recorded.get("status", "fail")
    if actual["status"] != expected_status:
        return (
            False,
            f"recorded {expected_status} but replay "
            f"{actual['status']}ed: {actual['detail']}",
            actual,
        )
    if expected_status == "fail" and actual["oracle"] != recorded.get(
        "oracle"
    ):
        return (
            False,
            f"recorded oracle {recorded.get('oracle')!r} but replay "
            f"failed under {actual['oracle']!r}: {actual['detail']}",
            actual,
        )
    expected_digest = recorded.get("digest")
    if expected_digest is not None and actual["digest"] is not None:
        if actual["digest"] != expected_digest:
            return (
                False,
                f"metrics digest changed: recorded {expected_digest} "
                f"vs replay {actual['digest']}",
                actual,
            )
    oracle = actual["oracle"]
    what = "passes" if expected_status == "pass" else f"fails [{oracle}]"
    return True, f"replay matches the recorded verdict ({what})", actual


# ----------------------------------------------------------------------
# the campaign driver


def _identity(value):
    return value


def run_campaign(
    space: ScenarioSpace,
    seed: int,
    count: int,
    corpus_dir: str,
    jobs: int = 1,
    checkpoint_path: Optional[str] = None,
    shrink_budget: int = 40,
    point_timeout: Optional[float] = None,
    log: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run a full campaign; returns a JSON-plain summary.

    Scenario verdicts go through the standard sweep executor (worker
    isolation, crash recovery) and checkpoint (resume after a kill
    restores finished verdicts).  Failures are then shrunk serially in
    the parent and written to ``corpus_dir`` as replayable repros.
    """

    def say(message: str) -> None:
        if log is not None:
            log(message)

    scenarios = generate(space, seed, count)
    if point_timeout is not None:
        # Override each scenario's own wall budget instead of wrapping
        # the worker in a second timer: nested SIGALRM timers would
        # disarm each other, and the scenario budget already covers the
        # differential twin runs as a unit.
        scenarios = [
            dataclasses.replace(scenario, wall_timeout_s=point_timeout)
            for scenario in scenarios
        ]
    by_key = {scenario.key: scenario for scenario in scenarios}
    tasks = [
        SweepTask(
            key=scenario.key,
            runner=_scenario_task,
            experiment=scenario,
        )
        for scenario in scenarios
    ]
    executor = ParallelSweepExecutor(
        jobs=jobs,
        attempts=1,  # verdicts are data; a "failure" is a result here
        log=log,
    )
    checkpoint = None
    if checkpoint_path is not None:
        checkpoint = SweepCheckpoint(
            checkpoint_path,
            meta={
                "kind": "chaos-campaign",
                "seed": seed,
                "count": count,
                "point_timeout": point_timeout,
                "space": space.to_meta(),
            },
        )
    verdicts = executor.run(
        tasks,
        checkpoint=checkpoint,
        encode=_identity if checkpoint is not None else None,
        decode=_identity if checkpoint is not None else None,
    )

    failures = []
    for key, verdict in verdicts.items():
        if verdict["status"] != "fail":
            continue
        scenario = by_key[key]
        say(
            f"scenario {key} failed [{verdict['oracle']}]: "
            f"{verdict['detail']}"
        )
        minimal, trail = shrink(
            scenario, verdict["oracle"], budget=shrink_budget, log=log
        )
        final = run_scenario(minimal)
        path = write_repro(
            corpus_dir,
            minimal,
            final,
            trail=trail,
            campaign={"seed": seed, "count": count, "key": key},
        )
        say(f"scenario {key}: minimal repro written to {path}")
        failures.append(
            {
                "key": key,
                "oracle": verdict["oracle"],
                "detail": verdict["detail"],
                "shrink_trail": trail,
                "repro": path,
            }
        )
    if checkpoint is not None and not failures:
        # a clean campaign's checkpoint has served its purpose
        checkpoint.clear()
    return {
        "seed": seed,
        "count": count,
        "scenarios": len(verdicts),
        "passed": sum(
            1 for v in verdicts.values() if v["status"] == "pass"
        ),
        "failed": len(failures),
        "failures": failures,
    }


# ----------------------------------------------------------------------
# harness self-test


def sabotage_scenario(kind: str, seed: int = 7) -> Scenario:
    """A small deterministic scenario carrying a named sabotage hook."""
    if kind not in SABOTAGES:
        raise ConfigurationError(
            f"unknown sabotage {kind!r}; known: {sorted(SABOTAGES)}"
        )
    return Scenario(
        key=f"sabotage-{kind}",
        seed=seed,
        topology="single",
        num_ports=8,
        vcs_per_pc=8,
        load=0.5,
        mix=(80.0, 20.0),
        message_size=20,
        scale=100.0,
        warmup_frames=1,
        measure_frames=2,
        sabotage=kind,
    )


def selftest(
    kind: str,
    corpus_dir: str,
    seed: int = 7,
    shrink_budget: int = 40,
    log: Optional[Callable[[str], None]] = None,
) -> str:
    """End-to-end pipeline check against a deliberately broken run.

    Injects the named sabotage, and asserts the campaign machinery
    catches it, shrinks it, and replays the minimal repro to the same
    failure.  Returns the repro path; raises
    :class:`~repro.errors.ChaosFailure` when any pipeline stage fails
    to do its job — i.e. a *passing* sabotage run is itself a failure.
    """

    def say(message: str) -> None:
        if log is not None:
            log(message)

    scenario = sabotage_scenario(kind, seed=seed)
    verdict = run_scenario(scenario)
    if verdict["status"] != "fail":
        raise ChaosFailure(
            "selftest",
            scenario.key,
            f"sabotage {kind!r} was not caught by any oracle "
            f"(verdict: {verdict['status']})",
        )
    say(
        f"sabotage {kind!r} caught [{verdict['oracle']}]: "
        f"{verdict['detail']}"
    )
    minimal, trail = shrink(
        scenario, verdict["oracle"], budget=shrink_budget, log=log
    )
    if minimal.sabotage != kind:
        raise ChaosFailure(
            "selftest",
            scenario.key,
            "shrinking removed the sabotage itself — the failure "
            "cannot have depended on it",
        )
    final = run_scenario(minimal)
    path = write_repro(
        corpus_dir,
        minimal,
        final,
        trail=trail,
        campaign={"selftest": kind, "seed": seed},
    )
    say(f"minimal repro ({len(trail)} shrink steps) written to {path}")
    ok, message, _ = replay(path)
    if not ok:
        raise ChaosFailure("selftest", scenario.key, message)
    say(f"replay: {message}")
    return path
