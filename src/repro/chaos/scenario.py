"""Typed random scenarios for the chaos harness.

A :class:`Scenario` is a complete, JSON-serialisable description of one
simulation the harness can run, judge, shrink, and replay: topology and
router configuration, a heterogeneous traffic mix, an optional
:class:`~repro.faults.FaultPlan` with its recovery transport, health
monitoring and routing mode, the measurement horizon, and (for harness
self-tests) a named sabotage hook that deliberately corrupts simulator
state mid-run.

:class:`ScenarioSpace` is the generator: a seeded draw over all of
those axes.  Generation is deterministic — the same ``(seed, index)``
always yields the same scenario, on any platform — which is what makes
campaign verdicts reproducible and repro files replayable.

Two invariants the generator maintains so that a *failing* scenario
indicates a simulator bug rather than a malformed experiment:

* every faulted scenario carries an end-to-end recovery transport and
  an armed progress watchdog (loss without recovery wedges worms by
  design — that is a scenario bug, not a router bug);
* down windows are always finite and never isolate a host, so
  :func:`~repro.faults.install_faults` accepts every generated plan.
"""

from __future__ import annotations

import dataclasses
import json
import random
from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.schedulers import SchedulingPolicy
from repro.errors import ConfigurationError
from repro.experiments.config import (
    ButterflyExperiment,
    FatMeshExperiment,
    FatTree3Experiment,
    SingleSwitchExperiment,
)
from repro.faults import (
    DomainDownWindow,
    FaultPlan,
    LinkDownWindow,
    RecoveryConfig,
)
from repro.network.health import HealthConfig
from repro.network.topology import butterfly, fat_mesh, fat_tree3
from repro.obs.events import TraceSpec
from repro.router.config import RoutingMode
from repro.router.flit import TrafficClass

_FORMAT = "mediaworm-chaos-scenario-v1"


@dataclass
class ChaosSingleSwitchExperiment(SingleSwitchExperiment):
    """Single-switch experiment with an optional network hook."""

    network_hook: Optional[Callable] = None


@dataclass
class ChaosFatMeshExperiment(FatMeshExperiment):
    """Fat-mesh experiment with an optional network hook."""

    network_hook: Optional[Callable] = None


@dataclass
class ChaosFatTree3Experiment(FatTree3Experiment):
    """3-level fat-tree experiment with an optional network hook."""

    network_hook: Optional[Callable] = None


@dataclass
class ChaosButterflyExperiment(ButterflyExperiment):
    """k-ary n-tree experiment with an optional network hook."""

    network_hook: Optional[Callable] = None


# ----------------------------------------------------------------------
# sabotage hooks (harness self-tests)


def sabotage_credit(cycle: int, network) -> None:
    """Schedule a one-credit theft at ``cycle``.

    Decrements the first wired sender-side credit counter by one, so
    the sender under-counts its budget from then on.  Stealing (rather
    than minting) a credit cannot overflow any buffer — the simulation
    keeps running normally — but the books no longer balance, and the
    next :func:`repro.obs.invariants.check_credits` audit must raise
    :class:`~repro.errors.InvariantViolation`.  A chaos campaign that
    does *not* flag this scenario has a blind oracle.
    """

    def corrupt() -> None:
        for link in network.links:
            router = link.dest_router
            if router is None:
                continue
            for ivc in router.inputs[link.dest_port]:
                sender = ivc.credit_sink
                if sender is not None:
                    sender.credits -= 1
                    return

    network.schedule_call(max(cycle, network.clock), corrupt)


#: registry of named sabotage hooks; each entry is a module-level
#: callable ``fn(cycle, network)`` so experiments stay picklable
SABOTAGES: Dict[str, Callable] = {
    "credit": sabotage_credit,
}


# ----------------------------------------------------------------------
# the scenario record


@dataclass(frozen=True)
class Scenario:
    """One fully specified chaos run (JSON-plain, replayable)."""

    key: str
    seed: int
    #: "single" (n-port switch), "mesh" (fat mesh), "tree" (3-level
    #: k-ary fat tree), or "butterfly" (k-ary n-tree)
    topology: str = "single"
    num_ports: int = 8
    rows: int = 2
    cols: int = 2
    hosts_per_router: int = 2
    fat_width: int = 2
    #: "tree" shape (chaos trees always run at fat_width 1)
    tree_k: int = 4
    #: "butterfly" shape
    bfly_arity: int = 2
    bfly_levels: int = 3
    #: hosts per leaf for "tree"/"butterfly"; None = the generator default
    hosts_per_leaf: Optional[int] = None
    scheduler: str = SchedulingPolicy.VIRTUAL_CLOCK
    vcs_per_pc: int = 8
    load: float = 0.6
    mix: Tuple[float, float] = (80.0, 20.0)
    rt_class: str = TrafficClass.VBR
    message_size: int = 20
    scale: float = 100.0
    warmup_frames: int = 1
    measure_frames: int = 2
    routing_mode: str = RoutingMode.ORACLE
    faults: FaultPlan = FaultPlan()
    recovery: Optional[RecoveryConfig] = None
    health: Optional[HealthConfig] = None
    #: progress-watchdog window, in frame intervals (always armed)
    watchdog_frames: int = 4
    #: per-run wall-clock budget, seconds (hang protection)
    wall_timeout_s: float = 120.0
    #: named state-corruption hook from :data:`SABOTAGES` (self-tests)
    sabotage: Optional[str] = None
    #: ride an InvariantChecker on every run of this scenario
    check: bool = True

    def __post_init__(self) -> None:
        if self.topology not in ("single", "mesh", "tree", "butterfly"):
            raise ConfigurationError(
                f"scenario topology must be 'single', 'mesh', 'tree', or "
                f"'butterfly', got {self.topology!r}"
            )
        if self.sabotage is not None and self.sabotage not in SABOTAGES:
            raise ConfigurationError(
                f"unknown sabotage {self.sabotage!r}; "
                f"known: {sorted(SABOTAGES)}"
            )

    # -- derived properties ---------------------------------------------

    @property
    def is_zero_fault(self) -> bool:
        """True when the scenario injects no faults at all."""
        return self.faults.is_zero

    @property
    def frame_interval_cycles(self) -> int:
        """One frame epoch of this scenario's workload, in cycles."""
        return self.to_experiment().workload_config().frame_interval_cycles

    # -- experiment assembly --------------------------------------------

    def to_experiment(self):
        """Build the runnable experiment this scenario describes.

        The watchdog window and the sabotage cycle are denominated in
        frame intervals, so they stay proportionate when a shrink pass
        rescales the workload.
        """
        kwargs = dict(
            load=self.load,
            mix=tuple(self.mix),
            scheduler=self.scheduler,
            rt_class=self.rt_class,
            vcs_per_pc=self.vcs_per_pc,
            message_size=self.message_size,
            scale=self.scale,
            warmup_frames=self.warmup_frames,
            measure_frames=self.measure_frames,
            seed=self.seed,
            faults=None if self.faults.is_zero else self.faults,
            recovery=self.recovery,
            health=self.health,
            routing_mode=self.routing_mode,
            trace=TraceSpec(check=self.check) if self.check else None,
        )
        if self.topology == "single":
            experiment = ChaosSingleSwitchExperiment(
                num_ports=self.num_ports, **kwargs
            )
        elif self.topology == "mesh":
            experiment = ChaosFatMeshExperiment(
                rows=self.rows,
                cols=self.cols,
                hosts_per_router=self.hosts_per_router,
                fat_width=self.fat_width,
                **kwargs,
            )
        elif self.topology == "tree":
            experiment = ChaosFatTree3Experiment(
                k=self.tree_k,
                hosts_per_leaf=self.hosts_per_leaf,
                **kwargs,
            )
        else:
            experiment = ChaosButterflyExperiment(
                arity=self.bfly_arity,
                levels=self.bfly_levels,
                hosts_per_leaf=self.hosts_per_leaf,
                **kwargs,
            )
        interval = experiment.workload_config().frame_interval_cycles
        hook = None
        if self.sabotage is not None:
            hook = partial(
                SABOTAGES[self.sabotage],
                experiment.warmup_cycles + interval // 2,
            )
        return dataclasses.replace(
            experiment,
            watchdog_window=self.watchdog_frames * interval,
            network_hook=hook,
        )

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-plain form, the payload of a repro/corpus file."""
        return {
            "format": _FORMAT,
            "key": self.key,
            "seed": self.seed,
            "topology": self.topology,
            "num_ports": self.num_ports,
            "rows": self.rows,
            "cols": self.cols,
            "hosts_per_router": self.hosts_per_router,
            "fat_width": self.fat_width,
            "tree_k": self.tree_k,
            "bfly_arity": self.bfly_arity,
            "bfly_levels": self.bfly_levels,
            "hosts_per_leaf": self.hosts_per_leaf,
            "scheduler": self.scheduler,
            "vcs_per_pc": self.vcs_per_pc,
            "load": self.load,
            "mix": list(self.mix),
            "rt_class": self.rt_class,
            "message_size": self.message_size,
            "scale": self.scale,
            "warmup_frames": self.warmup_frames,
            "measure_frames": self.measure_frames,
            "routing_mode": self.routing_mode,
            "faults": self.faults.to_dict(),
            "recovery": (
                None if self.recovery is None else self.recovery.to_dict()
            ),
            "health": (
                None
                if self.health is None
                else dataclasses.asdict(self.health)
            ),
            "watchdog_frames": self.watchdog_frames,
            "wall_timeout_s": self.wall_timeout_s,
            "sabotage": self.sabotage,
            "check": self.check,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output.

        Every nested config re-runs its own validation, so an edited
        repro file fails loudly instead of silently running something
        else.
        """
        fmt = data.get("format", _FORMAT)
        if fmt != _FORMAT:
            raise ConfigurationError(
                f"unknown scenario format {fmt!r} (expected {_FORMAT!r})"
            )
        recovery = data.get("recovery")
        health = data.get("health")
        return cls(
            key=data["key"],
            seed=int(data["seed"]),
            topology=data.get("topology", "single"),
            num_ports=int(data.get("num_ports", 8)),
            rows=int(data.get("rows", 2)),
            cols=int(data.get("cols", 2)),
            hosts_per_router=int(data.get("hosts_per_router", 2)),
            fat_width=int(data.get("fat_width", 2)),
            tree_k=int(data.get("tree_k", 4)),
            bfly_arity=int(data.get("bfly_arity", 2)),
            bfly_levels=int(data.get("bfly_levels", 3)),
            hosts_per_leaf=(
                None
                if data.get("hosts_per_leaf") is None
                else int(data["hosts_per_leaf"])
            ),
            scheduler=data.get("scheduler", SchedulingPolicy.VIRTUAL_CLOCK),
            vcs_per_pc=int(data.get("vcs_per_pc", 8)),
            load=float(data.get("load", 0.6)),
            mix=tuple(data.get("mix", (80.0, 20.0))),
            rt_class=data.get("rt_class", TrafficClass.VBR),
            message_size=int(data.get("message_size", 20)),
            scale=float(data.get("scale", 100.0)),
            warmup_frames=int(data.get("warmup_frames", 1)),
            measure_frames=int(data.get("measure_frames", 2)),
            routing_mode=data.get("routing_mode", RoutingMode.ORACLE),
            faults=FaultPlan.from_dict(data.get("faults", {})),
            recovery=(
                None
                if recovery is None
                else RecoveryConfig.from_dict(recovery)
            ),
            health=None if health is None else HealthConfig(**health),
            watchdog_frames=int(data.get("watchdog_frames", 4)),
            wall_timeout_s=float(data.get("wall_timeout_s", 120.0)),
            sabotage=data.get("sabotage"),
            check=bool(data.get("check", True)),
        )


def scenario_topology(scenario: Scenario):
    """Build the concrete topology a multi-router scenario runs on.

    Used by the generator (to enumerate link labels and switch ids)
    and by the shrinker (to expand a domain fault into its constituent
    link windows).
    """
    if scenario.topology == "mesh":
        return fat_mesh(
            rows=scenario.rows,
            cols=scenario.cols,
            hosts_per_router=scenario.hosts_per_router,
            fat_width=scenario.fat_width,
        )
    if scenario.topology == "tree":
        return fat_tree3(
            k=scenario.tree_k,
            hosts_per_leaf=scenario.hosts_per_leaf,
        )
    if scenario.topology == "butterfly":
        return butterfly(
            arity=scenario.bfly_arity,
            levels=scenario.bfly_levels,
            hosts_per_leaf=scenario.hosts_per_leaf,
        )
    raise ConfigurationError(
        f"scenario topology {scenario.topology!r} has no router fabric"
    )


# ----------------------------------------------------------------------
# the scenario space


@dataclass(frozen=True)
class ScenarioSpace:
    """The distribution chaos campaigns draw scenarios from.

    Every axis is a plain tuple/range so the space itself serialises
    into the campaign checkpoint metadata — resuming a checkpoint with
    a different space recomputes instead of splicing foreign verdicts.
    """

    scale: float = 100.0
    topologies: Tuple[str, ...] = ("single", "mesh", "tree", "butterfly")
    num_ports_choices: Tuple[int, ...] = (4, 8)
    mesh_sizes: Tuple[Tuple[int, int], ...] = ((2, 2),)
    #: "tree" shapes: k of the 3-level fat tree (k=4 -> 16 hosts)
    tree_k_choices: Tuple[int, ...] = (4,)
    #: "butterfly" shapes: (arity, levels) of the k-ary n-tree
    bfly_shapes: Tuple[Tuple[int, int], ...] = ((2, 3), (4, 2))
    schedulers: Tuple[str, ...] = (
        SchedulingPolicy.VIRTUAL_CLOCK,
        SchedulingPolicy.FIFO,
    )
    vcs_choices: Tuple[int, ...] = (4, 8, 16)
    load_range: Tuple[float, float] = (0.3, 0.85)
    mixes: Tuple[Tuple[float, float], ...] = (
        (100.0, 0.0),
        (80.0, 20.0),
        (50.0, 50.0),
    )
    rt_classes: Tuple[str, ...] = (TrafficClass.VBR, TrafficClass.CBR)
    message_sizes: Tuple[int, ...] = (8, 20, 40)
    max_measure_frames: int = 2
    #: fraction of scenarios drawn with no faults at all (these feed
    #: the fused-vs-legacy parity and health-no-op differential oracles)
    zero_fault_fraction: float = 0.4
    #: of the zero-fault scenarios: fraction run with (passive) health
    #: monitoring, checked bit-identical against an unmonitored twin
    health_fraction: float = 0.5
    #: of the faulted mesh/tree/butterfly scenarios: fraction run with
    #: the full adaptive-failover stack (symptom-driven rerouting,
    #: switch-level suspicion and degradation)
    adaptive_fraction: float = 0.4
    #: of the faulted tree/butterfly scenarios: fraction whose outage is
    #: drawn switch-shaped (a finite :class:`~repro.faults
    #: .DomainDownWindow` over a whole switch, or a pod on fat trees)
    #: instead of individual link windows
    switch_fault_fraction: float = 0.35
    loss_range: Tuple[float, float] = (0.001, 0.01)
    corrupt_range: Tuple[float, float] = (0.0, 0.005)
    max_down_windows: int = 2
    wall_timeout_s: float = 120.0

    def to_meta(self) -> dict:
        """Checkpoint-metadata form (JSON-plain, order-stable).

        Round-trips through JSON so nested tuples become lists — the
        checkpoint loader compares this against what it parsed back
        from disk, and the comparison must be representation-stable.
        """
        return json.loads(json.dumps(dataclasses.asdict(self)))

    # -- drawing ---------------------------------------------------------

    def draw(self, rng: random.Random, key: str) -> Scenario:
        """One scenario, fully determined by ``rng``'s state."""
        topology = rng.choice(self.topologies)
        scenario = Scenario(
            key=key,
            seed=rng.randrange(1, 2**31),
            topology=topology,
            num_ports=rng.choice(self.num_ports_choices),
            scheduler=rng.choice(self.schedulers),
            vcs_per_pc=rng.choice(self.vcs_choices),
            load=round(rng.uniform(*self.load_range), 3),
            mix=rng.choice(self.mixes),
            rt_class=rng.choice(self.rt_classes),
            message_size=rng.choice(self.message_sizes),
            scale=self.scale,
            warmup_frames=1,
            measure_frames=rng.randint(1, self.max_measure_frames),
            wall_timeout_s=self.wall_timeout_s,
        )
        if topology == "mesh":
            rows, cols = rng.choice(self.mesh_sizes)
            scenario = dataclasses.replace(scenario, rows=rows, cols=cols)
        elif topology == "tree":
            scenario = dataclasses.replace(
                scenario, tree_k=rng.choice(self.tree_k_choices)
            )
        elif topology == "butterfly":
            arity, levels = rng.choice(self.bfly_shapes)
            scenario = dataclasses.replace(
                scenario, bfly_arity=arity, bfly_levels=levels
            )
        if rng.random() < self.zero_fault_fraction:
            return self._finish_zero_fault(rng, scenario)
        return self._finish_faulted(rng, scenario)

    def _finish_zero_fault(
        self, rng: random.Random, scenario: Scenario
    ) -> Scenario:
        """Optionally add passive health monitoring (no-op oracle)."""
        if rng.random() < self.health_fraction:
            scenario = dataclasses.replace(scenario, health=HealthConfig())
        return scenario

    def _finish_faulted(
        self, rng: random.Random, scenario: Scenario
    ) -> Scenario:
        """Attach a fault plan, its recovery transport, and (sometimes)
        the adaptive-failover stack."""
        adaptive = (
            scenario.topology in ("mesh", "tree", "butterfly")
            and rng.random() < self.adaptive_fraction
        )
        if adaptive:
            # the failover stack is validated at 16 VCs (reserved
            # escape VC per class partition needs the headroom)
            scenario = dataclasses.replace(
                scenario,
                vcs_per_pc=16,
                routing_mode=RoutingMode.ADAPTIVE,
                health=HealthConfig(),
            )
        interval = scenario.frame_interval_cycles
        loss = round(rng.uniform(*self.loss_range), 5)
        corrupt = round(rng.uniform(*self.corrupt_range), 5)
        domains: Tuple[DomainDownWindow, ...] = ()
        if (
            scenario.topology in ("tree", "butterfly")
            and rng.random() < self.switch_fault_fraction
        ):
            domains = (self._draw_domain(rng, scenario, interval),)
            windows: Tuple[LinkDownWindow, ...] = ()
        else:
            windows = self._draw_windows(rng, scenario, interval)
        plan = FaultPlan(
            flit_loss_prob=loss,
            flit_corrupt_prob=corrupt,
            down_windows=windows,
            domains=domains,
        )
        # transport clocks scale with the frame interval, mirroring the
        # fault/failover campaigns; generous retries keep a healthy
        # fabric's losses recoverable inside the watchdog window
        recovery = RecoveryConfig(
            timeout=max(512, interval // 2),
            max_retries=8,
            backoff_base=max(16, interval // 256),
            backoff_cap=max(64, interval // 16),
            qos_deadline=4 * interval,
        )
        return dataclasses.replace(
            scenario, faults=plan, recovery=recovery
        )

    def _draw_windows(
        self, rng: random.Random, scenario: Scenario, interval: int
    ) -> Tuple[LinkDownWindow, ...]:
        """0..max finite down windows over concrete link labels.

        Windows are bounded to half a frame interval and always end, so
        no generated plan can permanently isolate a host.
        """
        count = rng.randint(0, self.max_down_windows)
        if count == 0:
            return ()
        labels = self._link_labels(scenario)
        horizon = (
            scenario.warmup_frames + scenario.measure_frames
        ) * interval
        windows: List[LinkDownWindow] = []
        for _ in range(count):
            start = rng.randrange(0, max(1, horizon - interval // 2))
            duration = rng.randint(
                max(1, interval // 8), max(2, interval // 2)
            )
            windows.append(
                LinkDownWindow(
                    link=rng.choice(labels),
                    start=start,
                    end=start + duration,
                )
            )
        return tuple(windows)

    def _draw_domain(
        self, rng: random.Random, scenario: Scenario, interval: int
    ) -> DomainDownWindow:
        """One finite switch-shaped outage on a tree/butterfly fabric.

        Mirrors :meth:`_draw_windows`' bounds — the outage always ends
        within half a frame interval, so the recovery transport can
        repair the damage and no host stays isolated (which keeps
        :func:`~repro.faults.install_faults` accepting every plan).
        Fat trees occasionally lose a whole pod instead of one switch.
        """
        topology = scenario_topology(scenario)
        horizon = (
            scenario.warmup_frames + scenario.measure_frames
        ) * interval
        start = rng.randrange(0, max(1, horizon - interval // 2))
        duration = rng.randint(
            max(1, interval // 8), max(2, interval // 2)
        )
        if scenario.topology == "tree" and rng.random() < 0.25:
            domain = f"pod:{rng.randrange(scenario.tree_k)}"
        else:
            domain = f"switch:{rng.randrange(topology.num_routers)}"
        return DomainDownWindow(
            domain=domain, start=start, end=start + duration
        )

    def _link_labels(self, scenario: Scenario) -> List[str]:
        """Concrete link labels a down window may sever."""
        if scenario.topology == "single":
            return [
                f"host{node}:{half}"
                for node in range(scenario.num_ports)
                for half in ("inject", "eject")
            ]
        topology = scenario_topology(scenario)
        return [
            f"ch:{src}.{sp}->{dst}.{dp}"
            for src, sp, dst, dp in topology.channels
        ]


def generate(
    space: ScenarioSpace, seed: int, count: int
) -> List[Scenario]:
    """The campaign's scenario stream: ``count`` deterministic draws.

    Each scenario gets its own :class:`random.Random` seeded from a
    stable string, so inserting or reordering draws of one scenario
    never perturbs its neighbours, and the stream is identical across
    platforms and Python versions.
    """
    return [
        space.draw(random.Random(f"chaos/{seed}/{index}"), f"s{index:03d}")
        for index in range(count)
    ]
