"""Chaos harness: randomized differential fault campaigns.

Draws seeded random scenarios over the simulator's whole configuration
space (topology, router config, traffic mix, fault plan, routing mode,
health monitoring), runs each under the invariant checker and deadlock
watchdog, judges it with differential oracles (fused-vs-legacy loop
parity, health-monitoring no-op, conservation accounting), and shrinks
every failure to a minimal replayable JSON repro.

Entry points: ``mediaworm chaos`` (CLI), :func:`run_campaign`,
:func:`replay`, :func:`selftest`.
"""

from repro.chaos.campaign import (
    REPRO_FORMAT,
    load_repro,
    replay,
    run_campaign,
    run_scenario,
    sabotage_scenario,
    selftest,
    shrink,
    write_repro,
)
from repro.chaos.oracles import (
    ORACLES,
    canonical_metrics,
    check_accounting,
    classify_error,
    metrics_digest,
)
from repro.chaos.scenario import (
    SABOTAGES,
    Scenario,
    ScenarioSpace,
    generate,
)

__all__ = [
    "ORACLES",
    "REPRO_FORMAT",
    "SABOTAGES",
    "Scenario",
    "ScenarioSpace",
    "canonical_metrics",
    "check_accounting",
    "classify_error",
    "generate",
    "load_repro",
    "metrics_digest",
    "replay",
    "run_campaign",
    "run_scenario",
    "sabotage_scenario",
    "selftest",
    "shrink",
    "write_repro",
]
