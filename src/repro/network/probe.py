"""Link utilisation probing.

Every router counts the flits it puts on each output link
(:attr:`WormholeRouter.out_flits`); this module turns those counters
into utilisation fractions and answers the questions the fat-mesh study
raises — is the load balanced across the two physical links of a fat
pair ("a message can use any one of the two links ... based on the
current load"), and which links run hot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.network.network import Network


@dataclass(frozen=True)
class LinkUtilization:
    """Utilisation of one output link over a measurement window."""

    router_id: int
    port: int
    flits: int
    cycles: int
    is_host_port: bool

    @property
    def utilization(self) -> float:
        """Fraction of cycles the link carried a flit."""
        if self.cycles <= 0:
            return float("nan")
        return self.flits / self.cycles


class UtilizationProbe:
    """Snapshot-based utilisation measurement over a network.

    >>> probe = UtilizationProbe(network)      # doctest: +SKIP
    ... network.run(until)
    ... for link in probe.measure():
    ...     print(link.router_id, link.port, link.utilization)
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self._start_cycle = network.clock
        self._baseline: Dict[Tuple[int, int], int] = {}
        self.reset()

    def reset(self) -> None:
        """Restart the measurement window at the current cycle."""
        self._start_cycle = self.network.clock
        self._baseline = {
            (router.router_id, port): count
            for router in self.network.routers
            for port, count in enumerate(router.out_flits)
        }

    def measure(self) -> List[LinkUtilization]:
        """Per-link utilisation since the last ``reset``."""
        cycles = self.network.clock - self._start_cycle
        results = []
        for router in self.network.routers:
            for port, count in enumerate(router.out_flits):
                baseline = self._baseline.get((router.router_id, port), 0)
                results.append(
                    LinkUtilization(
                        router_id=router.router_id,
                        port=port,
                        flits=count - baseline,
                        cycles=cycles,
                        is_host_port=router.is_host_port[port],
                    )
                )
        return results

    def fat_group_balance(
        self, router_id: int, ports: Tuple[int, ...]
    ) -> float:
        """Load-balance ratio (min/max flits) across a fat-link group.

        1.0 is a perfect split; values near 0 mean one link carried
        everything.  Returns nan when the group carried no flits.
        """
        if len(ports) < 2:
            raise ConfigurationError(
                f"a fat group needs >= 2 ports, got {ports!r}"
            )
        by_port = {
            (u.router_id, u.port): u.flits for u in self.measure()
        }
        try:
            counts = [by_port[(router_id, port)] for port in ports]
        except KeyError as exc:
            raise ConfigurationError(f"unknown port in group: {exc}") from None
        if max(counts) == 0:
            return float("nan")
        return min(counts) / max(counts)

    def hottest(self, count: int = 5) -> List[LinkUtilization]:
        """The ``count`` busiest links of the window."""
        return sorted(
            self.measure(), key=lambda u: u.flits, reverse=True
        )[:count]
