"""Network layer: links, host interfaces, topologies, the simulator.

This package assembles routers (:mod:`repro.router`) into systems — a
single switch with one host per port, or the paper's 2x2 fat mesh — and
runs the cycle loop that moves flits between them.
"""

from repro.network.health import (
    HealthConfig,
    LinkHealthMonitor,
    install_health,
)
from repro.network.interface import HostInterface, HostSink
from repro.network.link import Link
from repro.network.network import Network
from repro.network.probe import LinkUtilization, UtilizationProbe
from repro.network.topology import (
    Topology,
    butterfly,
    fat_mesh,
    fat_mesh_2x2,
    fat_tree,
    fat_tree3,
    single_switch,
)

__all__ = [
    "HealthConfig",
    "HostInterface",
    "HostSink",
    "Link",
    "LinkHealthMonitor",
    "LinkUtilization",
    "Network",
    "Topology",
    "UtilizationProbe",
    "butterfly",
    "fat_mesh",
    "fat_mesh_2x2",
    "fat_tree",
    "fat_tree3",
    "single_switch",
]
