"""The network simulator: wired routers + hosts + the cycle loop.

``Network`` owns everything that moves flits: routers, links, host
interfaces and sinks, the injection event heap, and the global cycle
counter.  The loop visits only the *active* set each cycle — links with
in-flight flits due, NIs with backlog, routers with busy stages — and
jumps the clock to the next component wake time (or injection event)
whenever nothing is runnable, so simulation cost tracks activity, not
topology size or wall-clock span.

Setting ``REPRO_LEGACY_LOOP=1`` in the environment (read at network
construction) selects the original full-scan loop instead; the two are
bit-identical by contract (see ``docs/simulator-internals.md`` and the
golden-run test in ``tests/test_activation.py``).
"""

from __future__ import annotations

import logging
import os
from functools import partial
from time import perf_counter
from typing import Callable, Dict, List, Optional

from repro.errors import (
    ConfigurationError,
    DeadlockError,
    PortCountError,
    SimulationError,
)
from repro.network.interface import HostInterface, HostSink
from repro.network.link import DEFAULT_LINK_LATENCY, Link
from repro.network.topology import Topology
from repro.router.config import RouterConfig
from repro.router.flit import Message
from repro.router.router import WormholeRouter
from repro.sim.activation import ActivationScheduler
from repro.sim.engine import ENGINE_ARRAY, ENGINE_OBJECT, resolve_engine
from repro.sim.events import EventHeap

logger = logging.getLogger(__name__)


class Network:
    """A wormhole network instance ready to simulate."""

    def __init__(
        self,
        topology: Topology,
        config: RouterConfig,
        link_latency: int = DEFAULT_LINK_LATENCY,
        on_message: Optional[Callable[[Message, int], None]] = None,
        watchdog_window: Optional[int] = None,
        engine: str = ENGINE_OBJECT,
    ) -> None:
        self.topology = topology
        if config.num_ports != topology.ports_per_router:
            raise PortCountError(
                f"config.num_ports={config.num_ports} does not match the "
                f"topology's ports_per_router={topology.ports_per_router}; "
                f"build the config with "
                f"num_ports={topology.ports_per_router}"
            )
        self.config = config
        self.clock = 0
        self.events = EventHeap()
        self._flits_in_flight = 0
        self.flits_injected = 0
        self.flits_ejected = 0
        self.flits_dropped = 0
        #: flits lost to injected link faults (subset of flits_dropped)
        self.flits_lost = 0
        #: flits delivered with fault-injected corruption
        self.flits_corrupted = 0
        self.messages_delivered = 0
        self.preemptions = 0
        #: cycles a preempted message waits before retransmission
        self.preemption_backoff = config.preemption_backoff
        #: progress watchdog: raise DeadlockError when no flit is
        #: delivered for this many cycles while flits are in flight
        #: (None disables the check)
        if watchdog_window is not None and watchdog_window < 1:
            raise ConfigurationError(
                f"watchdog_window must be >= 1 cycle, got {watchdog_window}"
            )
        self.watchdog_window = watchdog_window
        self._stall_clock = 0
        #: FaultInjector installed by repro.faults.install_faults
        self.fault_injector = None
        #: EndToEndTransport installed by repro.faults.install_recovery
        self.transport = None
        #: LinkHealthMonitor installed by repro.network.health
        self.health_monitor = None
        #: host nodes the failover layer has declared unreachable
        #: (sessions shed; transport charges their abandons separately)
        self.isolated_hosts: "set[int]" = set()
        #: trace sink installed by repro.obs.install_tracing (purge events)
        self.trace = None
        #: LoopProfiler installed by the runner (per-phase wall time)
        self.profiler = None
        self._on_message = on_message

        #: this network's private routing facade: shares the topology's
        #: compiled route program but owns its mask overlays and
        #: reroute/detour counters, so topologies cached across runs
        #: (sweep workers, repeat digests) never leak failover state
        #: between networks
        self.routing = topology.routing.fork()
        self.routers: List[WormholeRouter] = [
            WormholeRouter(rid, config, self.routing)
            for rid in range(topology.num_routers)
        ]
        self.links: List[Link] = []
        self.interfaces: Dict[int, HostInterface] = {}
        self.sinks: Dict[int, HostSink] = {}

        self._wire_hosts(link_latency)
        self._wire_channels(link_latency)
        self._check_wiring()
        if config.preemption:
            for router in self.routers:
                router.on_preempt = self._preempt

        #: original full-scan loop fallback (read once, at construction)
        self._legacy_loop = os.environ.get("REPRO_LEGACY_LOOP", "") == "1"
        #: selected simulation engine (validated here so a bad name or a
        #: contradictory array+legacy selection fails before any state
        #: exists); the array engine itself is built lazily on first run
        #: so object-engine networks never import numpy
        self._engine_name = resolve_engine(engine, self._legacy_loop)
        self._engine_impl = None
        # Activation schedulers, one per component kind — kept separate
        # because the dispatch order (links, then NIs, then routers)
        # must let a link delivery activate its destination router
        # within the same cycle.  Registration ids follow the legacy
        # loop's iteration order (link list index, NI wiring order,
        # router id) so sorted active subsets replay the legacy order
        # exactly — the bit-identical contract.  Every component's
        # activation hook is a bound ``activate`` call; sinks are
        # passive and never register (see repro.sim.component).
        self._link_sched = ActivationScheduler()
        self._ni_sched = ActivationScheduler()
        self._router_sched = ActivationScheduler()
        self._ni_list: List[HostInterface] = list(self.interfaces.values())
        for link in self.links:
            cid = self._link_sched.register(link)
            link.on_wake = partial(self._link_sched.activate, cid)
        for ni in self._ni_list:
            cid = self._ni_sched.register(ni)
            ni.on_activated = partial(self._ni_sched.activate, cid)
        for router in self.routers:
            cid = self._router_sched.register(router)
            router.on_activated = partial(self._router_sched.activate, cid)

    # ------------------------------------------------------------------
    # construction

    def _wire_hosts(self, latency: int) -> None:
        depth = self.config.flit_buffer_depth
        for node, rid, port in self.topology.hosts:
            router = self.routers[rid]
            # Injection: NI -> router input port.
            in_link = Link(
                dest_router=router,
                dest_port=port,
                latency=latency,
                label=f"host{node}:inject",
            )
            ni = HostInterface(
                node_id=node,
                vcs_per_pc=self.config.vcs_per_pc,
                buffer_depth=depth,
                policy=self.config.ni_policy,
                link=in_link,
            )
            for vc in router.inputs[port]:
                vc.credit_sink = ni.vcs[vc.index]
            # Ejection: router output port -> host sink.
            sink = HostSink(
                node_id=node,
                on_message=self._message_delivered,
                on_flit=self._flit_ejected,
            )
            out_link = Link(sink=sink, latency=latency, label=f"host{node}:eject")
            out_link.src_router = router
            out_link.src_port = port
            router.wire_output(port, out_link, host=True)
            # Host ports have no downstream router buffer; the sink
            # consumes at link rate, so output VCs are never credit
            # limited there (downstream stays None).
            self.links.extend((in_link, out_link))
            self.interfaces[node] = ni
            self.sinks[node] = sink

    def _wire_channels(self, latency: int) -> None:
        depth = self.config.flit_buffer_depth
        for src_r, src_p, dst_r, dst_p in self.topology.channels:
            src = self.routers[src_r]
            dst = self.routers[dst_r]
            link = Link(
                dest_router=dst,
                dest_port=dst_p,
                latency=latency,
                label=f"ch:{src_r}.{src_p}->{dst_r}.{dst_p}",
            )
            link.src_router = src
            link.src_port = src_p
            src.wire_output(src_p, link, host=False)
            for vc_index in range(self.config.vcs_per_pc):
                ovc = src.outputs[src_p][vc_index]
                ivc = dst.inputs[dst_p][vc_index]
                ovc.downstream = ivc
                ovc.credits = depth
                ivc.credit_sink = ovc
            self.links.append(link)

    def _check_wiring(self) -> None:
        host_ports = {(rid, port) for _, rid, port in self.topology.hosts}
        channel_out = {(r, p) for r, p, _, _ in self.topology.channels}
        for router in self.routers:
            for port, link in enumerate(router.out_links):
                wired = (router.router_id, port) in host_ports or (
                    router.router_id,
                    port,
                ) in channel_out
                if wired and link is None:
                    raise ConfigurationError(
                        f"router {router.router_id} port {port} left unwired"
                    )

    # ------------------------------------------------------------------
    # injection API

    def inject_now(self, msg: Message) -> None:
        """Hand a message to its source NI at the current cycle."""
        ni = self.interfaces.get(msg.src_node)
        if ni is None:
            raise ConfigurationError(f"unknown source node {msg.src_node}")
        if msg.dst_node not in self.sinks:
            raise ConfigurationError(f"unknown destination node {msg.dst_node}")
        ni.inject(self.clock, msg)
        self._flits_in_flight += msg.size
        self.flits_injected += msg.size
        if self.transport is not None:
            self.transport.on_inject(msg)

    def schedule_message(self, time: int, msg: Message) -> None:
        """Schedule a message injection at an absolute cycle."""
        if time < self.clock:
            raise SimulationError(
                f"cannot schedule at {time}; clock is already {self.clock}"
            )
        self.events.schedule(time, lambda m=msg: self.inject_now(m))

    def schedule_call(self, time: int, fn: Callable[[], None]) -> None:
        """Schedule an arbitrary callback (used by traffic sources)."""
        if time < self.clock:
            raise SimulationError(
                f"cannot schedule at {time}; clock is already {self.clock}"
            )
        self.events.schedule(time, fn)

    # ------------------------------------------------------------------
    # preemption (kill and retransmit)

    def kill_message(self, msg: Message) -> int:
        """Purge a message's undelivered flits everywhere it may live.

        Returns the number of flits dropped.  The message is marked
        ``killed`` so nothing re-buffers it; the caller decides whether
        to retransmit (see :meth:`_preempt`).
        """
        if msg.killed:
            raise SimulationError(f"message {msg.msg_id} already killed")
        if msg.deliver_time >= 0:
            raise SimulationError(
                f"message {msg.msg_id} was already delivered"
            )
        msg.killed = True
        dropped = 0
        ni_dropped = 0
        ni = self.interfaces.get(msg.src_node)
        if ni is not None:
            ni_dropped = ni.purge_message(msg)
            dropped += ni_dropped
        for link in self.links:
            dropped_vcs = link.purge_message(msg)
            dropped += len(dropped_vcs)
            # flits on a router-bound wire consumed a credit they will
            # never occupy; hand each back to the sender-side VC (the
            # NI VC for host links, the upstream OutputVC for
            # inter-router wires — both are the input VC's credit sink)
            if dropped_vcs and link.dest_router is not None:
                for vc_index in dropped_vcs:
                    sender = link.dest_router.inputs[link.dest_port][
                        vc_index
                    ].credit_sink
                    if sender is not None:
                        sender.credits += 1
        for router in self.routers:
            dropped += router.purge_message(msg)
        self._flits_in_flight -= dropped
        self.flits_dropped += dropped
        if self.trace is not None:
            self.trace.on_event(
                "purge",
                self.clock,
                {"msg": msg.msg_id, "dropped": dropped, "ni": ni_dropped},
            )
        # A purge can both quiesce components (emptied buffers) and
        # create work (a queued message re-entering arbitration), so
        # re-derive the active sets from scratch.  Kills are rare
        # (preemption, recovery teardown); the O(components) resync is
        # far off the hot path.
        self._resync_activity()
        return dropped

    def _resync_activity(self) -> None:
        """Re-derive every activation record from component state."""
        for index, ni in enumerate(self._ni_list):
            if ni.has_backlog:
                self._ni_sched.activate(index)
            else:
                self._ni_sched.deactivate(index)
        for router in self.routers:
            if router.quiescent:
                self._router_sched.deactivate(router.router_id)
            else:
                self._router_sched.activate(router.router_id)
        for index, link in enumerate(self.links):
            if link.pending:
                self._link_sched.activate(index)
            else:
                self._link_sched.deactivate(index)
        if self._engine_impl is not None:
            # A purge rebuilt Link.pending deques behind the array
            # engine's head-arrival mirror; rebuild it from the objects.
            self._engine_impl.resync()

    def _preempt(self, victim: Message) -> None:
        """Router hook: kill ``victim`` and schedule its retransmission."""
        self.kill_message(victim)
        self.preemptions += 1
        clone = victim.clone()
        self.events.schedule(
            self.clock + self.preemption_backoff,
            lambda m=clone: self.inject_now(m),
        )

    def requeue_stuck_worms(self, router, port: int, link=None) -> int:
        """Kill-and-requeue every worm wedged on a newly masked port.

        Called by the health monitor when adaptive routing marks
        ``router``'s output ``port`` down.  Worms already granted the
        port (output-VC owners, flits on the dead wire) would otherwise
        block their input VCs until the watchdog fires; killing them
        frees the buffers and the retransmission path redelivers the
        clone over a healthy route.  Headers that were routed to the
        port but not yet granted are simply re-routed: clearing
        ``route_port`` makes the next arbitration pass consult the
        (now masked) routing function again.
        """
        victims: "list[Message]" = []
        seen: "set[int]" = set()
        for ovc in router.outputs[port]:
            owner = ovc.owner
            if owner is not None and owner.msg_id not in seen:
                seen.add(owner.msg_id)
                victims.append(owner)
        if link is not None:
            for entry in link.pending:
                msg = entry[1]
                if msg.msg_id not in seen:
                    seen.add(msg.msg_id)
                    victims.append(msg)
        for vcs in router.inputs:
            for vc in vcs:
                if vc.route_port == port and vc.route_vc is None:
                    vc.route_port = -1
                    if vc.msg is not None:
                        vc.msg.detoured = None
        requeued = 0
        for msg in victims:
            if msg.killed or msg.deliver_time >= 0:
                continue
            if self.transport is not None:
                # End-to-end recovery owns the retry budget and stats.
                self.transport.on_loss(msg)
            else:
                self.kill_message(msg)
                clone = msg.clone()
                self.events.schedule(
                    self.clock + self.preemption_backoff,
                    lambda m=clone: self.inject_now(m),
                )
            requeued += 1
        return requeued

    # ------------------------------------------------------------------
    # bookkeeping callbacks

    def _flit_ejected(self, count: int) -> None:
        self._flits_in_flight -= count
        self.flits_ejected += count

    def _flit_lost(self, count: int) -> None:
        """A link fault destroyed ``count`` in-flight flits."""
        self._flits_in_flight -= count
        self.flits_dropped += count
        self.flits_lost += count

    def _flit_corrupted(self, count: int) -> None:
        """A link fault corrupted ``count`` delivered flits."""
        self.flits_corrupted += count

    def _message_delivered(self, msg: Message, clock: int) -> None:
        self.messages_delivered += 1
        if self.transport is not None:
            self.transport.on_delivered(msg)
        if self._on_message is not None:
            self._on_message(msg, clock)

    # ------------------------------------------------------------------
    # the cycle loop

    def run(self, until: int) -> None:
        """Advance the simulation to cycle ``until``.

        Dispatches to the selected engine: the object active-set loop
        (:meth:`_run_object`, the default), the legacy full scan
        (``REPRO_LEGACY_LOOP=1``), or the fused array engine
        (``engine="array"``), which itself falls back to the object
        loop for runs using cold features (faults, tracing, adaptive
        routing — see :mod:`repro.sim.engine.array`).  All three are
        bit-identical by contract.
        """
        if self._legacy_loop:
            return self._run_legacy(until)
        if self._engine_name == ENGINE_ARRAY:
            impl = self._engine_impl
            if impl is None:
                from repro.sim.engine.array import ArrayEngine

                impl = self._engine_impl = ArrayEngine(self)
            return impl.run(until)
        return self._run_object(until)

    def _run_object(self, until: int) -> None:
        """The per-component active-set loop (the object engine).

        Visits, per executed cycle, only the links with a delivery due,
        the NIs with backlog, and the routers with busy stages — in the
        legacy full-scan order, so results are bit-identical to
        :meth:`_run_legacy`.  When nothing is runnable it jumps the
        clock to the earliest wake time (link arrival or scheduled
        event); with flits in flight and the watchdog armed, the jump
        is capped at ``stall_clock + watchdog_window`` so a
        :class:`DeadlockError` fires at exactly the cycle the legacy
        loop would have raised it.

        With :attr:`watchdog_window` set, the loop tracks delivery
        progress (flits handed over by links) and raises
        :class:`DeadlockError` when flits are in flight but nothing has
        been delivered for a full window — a wedged network (credit
        starvation, a worm broken by a link fault, a routing cycle)
        fails fast with a diagnostic dump instead of spinning to the
        horizon.
        """
        clock = self.clock
        events = self.events
        link_sched = self._link_sched
        ni_sched = self._ni_sched
        router_sched = self._router_sched
        links = link_sched.components
        interfaces = ni_sched.components
        routers = router_sched.components
        # Hot-path friend access: the jump predicate reads the raw
        # active sets directly to avoid method-call overhead; all
        # *mutations* still go through the scheduler API so its
        # memoised order stays valid.
        ni_active = ni_sched._active
        router_active = router_sched._active
        watchdog = self.watchdog_window
        profiler = self.profiler
        stall_clock = max(self._stall_clock, clock - 1)
        while clock < until:
            if not (ni_active or router_active):
                # Nothing is runnable every-cycle; jump to the earliest
                # timed activity.  Active links know their next arrival
                # exactly (the head of their in-flight deque), so the
                # jump target is the min over those and the event heap.
                nxt = events.next_time()
                for index in link_sched.active_ids():
                    pending = links[index].pending
                    if pending:
                        arrival = pending[0][0]
                        if nxt is None or arrival < nxt:
                            nxt = arrival
                if nxt is None:
                    if self._flits_in_flight == 0:
                        clock = until
                        break
                    # Defensive backstop: flits are alive but no wake is
                    # armed — activity tracking must have been bypassed
                    # (e.g. hand-driven components).  Degrade this
                    # network to the legacy full scan permanently
                    # rather than mis-simulating.
                    logger.warning(
                        "active-set tracking lost %d in-flight flits at "
                        "cycle %d; falling back to the legacy loop",
                        self._flits_in_flight,
                        clock,
                    )
                    self._legacy_loop = True
                    self._stall_clock = stall_clock
                    self.clock = clock
                    return self._run_legacy(until)
                if nxt > clock:
                    if watchdog is not None and self._flits_in_flight:
                        # Never jump past the cycle the legacy loop
                        # would raise the watchdog at.
                        nxt = min(nxt, stall_clock + watchdog)
                    clock = min(nxt, until)
                    if self._flits_in_flight == 0:
                        stall_clock = clock
                    if clock >= until:
                        break
            self.clock = clock
            if profiler is not None:
                t0 = perf_counter()
            events.fire_due(clock)
            if profiler is not None:
                t1 = perf_counter()
                profiler.events_s += t1 - t0
            progress = 0
            # Phase 1: links.  A delivery that gives an idle router work
            # fires router.on_activated, so the router phase below sees
            # it this same cycle — the reason the three kinds keep
            # separate schedulers instead of one fused due list.
            for index in link_sched.due(clock):
                link = links[index]
                pending = link.pending
                if not pending:
                    # Emptied behind our back (purge); drop from the set.
                    link_sched.deactivate(index)
                elif pending[0][0] <= clock:
                    progress += link.deliver_due(clock)
                    if not link.pending:
                        link_sched.deactivate(index)
            if profiler is not None:
                t2 = perf_counter()
                profiler.links_s += t2 - t1
            # Phase 2: host interfaces.
            for index in ni_sched.due(clock):
                if not interfaces[index].step(clock):
                    ni_sched.deactivate(index)
            if profiler is not None:
                t3 = perf_counter()
                profiler.nis_s += t3 - t2
            # Phase 3: routers.
            for rid in router_sched.due(clock):
                if not routers[rid].step(clock):
                    router_sched.deactivate(rid)
            if profiler is not None:
                profiler.routers_s += perf_counter() - t3
                profiler.cycles += 1
            if watchdog is not None:
                if progress or not self._flits_in_flight:
                    stall_clock = clock
                elif clock - stall_clock >= watchdog:
                    self._watchdog_fire(clock, stall_clock, watchdog)
            clock += 1
        self._stall_clock = stall_clock
        self.clock = clock

    def _watchdog_fire(self, clock: int, stall_clock: int, watchdog: int):
        """Persist loop state and raise the no-progress DeadlockError."""
        self._stall_clock = stall_clock
        self.clock = clock
        raise DeadlockError(
            f"no flit delivered for {clock - stall_clock} cycles "
            f"(watchdog window {watchdog}) at cycle {clock} with "
            f"{self._flits_in_flight} flits in flight\n"
            + self.stall_report()
        )

    def _run_legacy(self, until: int) -> None:
        """The original full-scan cycle loop (``REPRO_LEGACY_LOOP=1``).

        Thin parity shim: visits every link, NI, and router each
        executed cycle in wiring order (ignoring the activity sets the
        components still maintain) and jumps the clock only when the
        network is empty.  The active-set loop in :meth:`run` is
        validated bit-identical against this reference by the golden
        runs in ``tests/test_activation.py``.
        """
        clock = self.clock
        events = self.events
        links = self.links
        interfaces = self._ni_list
        routers = self.routers
        watchdog = self.watchdog_window
        profiler = self.profiler
        stall_clock = max(self._stall_clock, clock - 1)
        while clock < until:
            if self._flits_in_flight == 0:
                nxt = events.next_time()
                if nxt is None:
                    clock = until
                    break
                if nxt > clock:
                    clock = min(nxt, until)
                    stall_clock = clock
                    if clock >= until:
                        break
            self.clock = clock
            if profiler is not None:
                t0 = perf_counter()
            events.fire_due(clock)
            if profiler is not None:
                t1 = perf_counter()
                profiler.events_s += t1 - t0
            progress = 0
            for link in links:
                if link.pending:
                    progress += link.deliver_due(clock)
            if profiler is not None:
                t2 = perf_counter()
                profiler.links_s += t2 - t1
            for ni in interfaces:
                ni.step(clock)
            if profiler is not None:
                t3 = perf_counter()
                profiler.nis_s += t3 - t2
            for router in routers:
                router.step(clock)
            if profiler is not None:
                profiler.routers_s += perf_counter() - t3
                profiler.cycles += 1
            if watchdog is not None:
                if progress or not self._flits_in_flight:
                    stall_clock = clock
                elif clock - stall_clock >= watchdog:
                    self._watchdog_fire(clock, stall_clock, watchdog)
            clock += 1
        self._stall_clock = stall_clock
        self.clock = clock

    def run_until_drained(
        self, max_extra: int = 10_000_000, drain_events: bool = False
    ) -> None:
        """Run until no flit remains in the network (bounded).

        By default pending *future* events (e.g. a stream's next frame)
        do not count as undrained — the criterion is that every flit
        already offered has reached its destination.  With
        ``drain_events=True`` the clock also chases scheduled events
        until the heap is empty, which is only sensible for workloads
        with a finite injection schedule.
        """
        deadline = self.clock + max_extra
        while self.clock < deadline:
            if self._flits_in_flight == 0:
                next_event = self.events.next_time() if drain_events else None
                if next_event is None:
                    return
                self.run(min(deadline, next_event + 1))
                continue
            self.run(min(deadline, self.clock + 4096))
        raise SimulationError(
            f"network failed to drain within {max_extra} extra cycles "
            f"({self._flits_in_flight} flits still in flight)"
        )

    # ------------------------------------------------------------------
    # audit helpers

    @property
    def faults_active(self) -> "list[str]":
        """Labels of links currently inside a fault down window."""
        if self.fault_injector is None:
            return []
        return self.fault_injector.links_down(self.clock)

    def stall_report(self, max_lines: int = 40) -> str:
        """Per-router dump of every occupied VC (watchdog diagnostics).

        One line per occupied input VC (front message, routed port,
        grant state) and per busy output VC (owner, staged flits,
        credits), so a :class:`DeadlockError` names the wedged
        routers/VCs without a debugger attached.
        """
        lines: "list[str]" = []
        for router in self.routers:
            for port, vcs in enumerate(router.inputs):
                for vc in vcs:
                    if vc.is_free and not vc.buffered:
                        continue
                    msg = vc.msg
                    grant = (
                        f"granted ovc {vc.route_vc.index}"
                        if vc.route_vc is not None
                        else "no grant"
                    )
                    lines.append(
                        f"router {router.router_id} in ({port},{vc.index}): "
                        f"{vc.buffered} flits, msg "
                        f"{msg.msg_id if msg else '?'} "
                        f"-> port {vc.route_port}, {grant}"
                    )
            for port, vcs in enumerate(router.outputs):
                for ovc in vcs:
                    if ovc.owner is None and not ovc.queue:
                        continue
                    owner = ovc.owner.msg_id if ovc.owner else "?"
                    lines.append(
                        f"router {router.router_id} out ({port},{ovc.index}): "
                        f"owner {owner}, {len(ovc.queue)} staged, "
                        f"{ovc.credits} credits"
                    )
        for node, ni in self.interfaces.items():
            backlog = ni.backlog_flits
            if backlog:
                lines.append(f"host {node} NI: {backlog} flits queued")
        down = self.faults_active
        if down:
            lines.append(f"links down: {', '.join(sorted(down))}")
        if self.health_monitor is not None:
            suspected = self.health_monitor.suspected()
            if suspected:
                lines.append(
                    "suspected unhealthy links/switches: "
                    + ", ".join(suspected)
                )
        if self.isolated_hosts:
            lines.append(
                "isolated hosts: "
                + ", ".join(str(n) for n in sorted(self.isolated_hosts))
            )
        if len(lines) > max_lines:
            extra = len(lines) - max_lines
            lines = lines[:max_lines] + [f"... {extra} more lines elided"]
        return "\n".join(lines) if lines else "(no occupied buffers)"

    @property
    def flits_in_flight(self) -> int:
        """Flits injected but not yet ejected."""
        return self._flits_in_flight

    def buffered_flits(self) -> int:
        """Flits held anywhere in the system right now (audit)."""
        total = sum(r.buffered_flits() for r in self.routers)
        total += sum(link.in_flight for link in self.links)
        total += sum(ni.backlog_flits for ni in self.interfaces.values())
        return total

    def check_conservation(self) -> None:
        """Raise unless injected == ejected + buffered + dropped."""
        buffered = self.buffered_flits()
        if self.flits_injected != (
            self.flits_ejected + buffered + self.flits_dropped
        ):
            raise SimulationError(
                f"flit conservation violated: injected={self.flits_injected} "
                f"ejected={self.flits_ejected} buffered={buffered} "
                f"dropped={self.flits_dropped}"
            )
        if self._flits_in_flight != buffered:
            raise SimulationError(
                f"in-flight counter drifted: counter={self._flits_in_flight} "
                f"actual={buffered}"
            )

    def check_invariants(self) -> None:
        """Validate router buffer bookkeeping everywhere (test hook)."""
        for router in self.routers:
            router.check_invariants()
        self.check_conservation()
