"""Online link-health monitoring and the failover control plane.

The fault injector (:mod:`repro.faults`) knows ground truth about every
link; real routers do not.  This module infers link failure from the
*observable symptoms* a router actually sees — missed delivery
heartbeats (flits that were due but never arrived), checksum-corruption
rate, and credit starvation during a down window — and drives the
failover machinery from those inferences alone:

* mask the dead port in the routing function so fat-link groups shrink
  to the healthy sibling (and detour when a whole group dies),
* kill-and-requeue worms stuck on the newly masked port so the
  end-to-end retransmission path redelivers them over a healthy route,
* degrade the admission controller's view of the lost channel (shedding
  best-effort before CBR/VBR) and pause best-effort sources while any
  link is down, re-admitting and resuming on recovery.

On top of the per-link verdicts the monitor aggregates *switch-level*
suspicion: a router whose every inbound inter-router link is at least
SUSPECT with at least one DOWN is declared a dead switch (its outbound
links carry no traffic, so they never show symptoms of their own).  On
up*/down* fabrics a dead-switch verdict applies the topology's
precomputed :class:`~repro.router.routeprog.UpDownFailover` masks —
re-steering every surviving pair through alternate ancestors — and
sheds the sessions of hosts the analysis proves unreachable (admission
degrade + media-stream pause) instead of letting them wedge the fabric
until the watchdog fires.

Hysteresis keeps transient glitches from flapping routes; every link
walks a four-state machine::

    UP --misses in window--> SUSPECT --more misses--> DOWN
     ^                          |                       |
     |<----consecutive oks------+     (masked; probe timer armed)
     |                                                  v
     +<---clean probation deliveries---- PROBATION <----+
                (recovery recorded)         |  any miss
                                            +----------> DOWN (a flap)

Determinism rules (the zero-fault bit-identity contract):

* State transitions are pure functions of the cycle clock and the
  delivery/miss/corruption events the links feed in; a fault-free run
  generates only ``on_ok`` events, which are no-ops in the UP state, so
  monitoring alone never perturbs a simulation.
* The only randomness is the probe-timer jitter, drawn from a dedicated
  ``health/<link label>`` RNG substream that is created lazily on the
  link's *first* DOWN transition — a run that never sees a failure never
  touches it, and named substreams never perturb each other.
* Probe wake-ups ride :meth:`Network.schedule_call`, which both cycle
  loops honour identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.router.config import RoutingMode

#: link health states (strings so stall reports read naturally)
UP = "up"
SUSPECT = "suspect"
DOWN = "down"
PROBATION = "probation"


@dataclass(frozen=True)
class HealthConfig:
    """Hysteresis thresholds and probe policy for link-health monitoring.

    All windows and intervals are in cycles.  ``suspect_misses`` and
    ``down_misses`` count missed/corrupted flits inside a sliding
    ``miss_window``; a link in PROBATION relapses to DOWN on a *single*
    miss (probation is exactly the state where the link must prove
    itself).  Probe intervals escalate by doubling from
    ``probe_interval`` up to ``probe_cap``, with up to ``probe_jitter``
    cycles of deterministic per-link jitter so simultaneous failures
    don't probe in lockstep.
    """

    suspect_misses: int = 3
    down_misses: int = 8
    miss_window: int = 4096
    #: consecutive clean deliveries that clear a SUSPECT back to UP
    recover_oks: int = 8
    #: clean deliveries a PROBATION link needs to be declared UP
    probation_oks: int = 16
    probe_interval: int = 1024
    probe_cap: int = 16384
    probe_jitter: int = 32
    #: pause best-effort sources while any monitored link is DOWN
    shed_best_effort: bool = True

    def __post_init__(self) -> None:
        if self.suspect_misses < 1 or self.down_misses < 1:
            raise ConfigurationError(
                f"miss thresholds must be >= 1, got "
                f"{self.suspect_misses}/{self.down_misses}"
            )
        if self.down_misses < self.suspect_misses:
            raise ConfigurationError(
                f"down_misses ({self.down_misses}) must be >= "
                f"suspect_misses ({self.suspect_misses})"
            )
        if self.miss_window < 1:
            raise ConfigurationError(
                f"miss_window must be >= 1 cycle, got {self.miss_window}"
            )
        if self.recover_oks < 1 or self.probation_oks < 1:
            raise ConfigurationError(
                f"recovery thresholds must be >= 1, got "
                f"{self.recover_oks}/{self.probation_oks}"
            )
        if self.probe_interval < 1 or self.probe_cap < self.probe_interval:
            raise ConfigurationError(
                f"need 1 <= probe_interval <= probe_cap, got "
                f"{self.probe_interval}/{self.probe_cap}"
            )
        if self.probe_jitter < 0:
            raise ConfigurationError(
                f"probe_jitter must be >= 0, got {self.probe_jitter}"
            )


class LinkHealth:
    """Per-link health record: state machine plus outage statistics.

    Fed by the link's delivery loop (``on_ok`` / ``on_miss`` /
    ``on_corrupt``); transitions call back into the owning monitor,
    which performs the failover actions.
    """

    __slots__ = (
        "link",
        "label",
        "channel",
        "monitor",
        "state",
        "window_start",
        "misses",
        "corrupts",
        "ok_streak",
        "down_since",
        "probes",
        "downs",
        "flaps",
        "recoveries",
        "ttr_total",
    )

    def __init__(self, link, channel, monitor: "LinkHealthMonitor") -> None:
        self.link = link
        self.label = link.label
        #: admission-controller channel id this link's bandwidth lives on
        self.channel = channel
        self.monitor = monitor
        self.state = UP
        self.window_start = 0
        self.misses = 0
        self.corrupts = 0
        self.ok_streak = 0
        #: cycle the current outage began (-1 while healthy)
        self.down_since = -1
        #: probes sent during the current outage (escalation counter)
        self.probes = 0
        self.downs = 0
        #: relapses DOWN from PROBATION (route flapping)
        self.flaps = 0
        self.recoveries = 0
        #: summed time-to-recovery over completed outages, cycles
        self.ttr_total = 0

    @property
    def routable(self) -> bool:
        """False only while the link is declared DOWN (masked)."""
        return self.state != DOWN

    def _emit(self, clock: int, prev: str) -> None:
        """Trace a state transition (no-op without an installed sink)."""
        trace = self.monitor.trace
        if trace is not None:
            trace.on_event(
                "health",
                clock,
                {"link": self.label, "state": self.state, "prev": prev},
            )

    def on_ok(self, clock: int, count: int = 1) -> None:
        """``count`` flits delivered cleanly at ``clock``."""
        state = self.state
        if state == UP:
            return
        if state == SUSPECT:
            self.ok_streak += count
            if self.ok_streak >= self.monitor.config.recover_oks:
                self.state = UP
                self.misses = 0
                self.ok_streak = 0
                self._emit(clock, SUSPECT)
                self.monitor._on_suspicion_changed(self, clock)
        elif state == PROBATION:
            self.ok_streak += count
            if self.ok_streak >= self.monitor.config.probation_oks:
                self._declare_up(clock)
        # DOWN: stragglers already on the wire before the mask landed;
        # re-entry goes through the probe path only.

    def on_miss(self, clock: int) -> None:
        """A due flit never arrived (lost on the wire) at ``clock``."""
        state = self.state
        if state == DOWN:
            return
        if state == PROBATION:
            self._declare_down(clock, relapse=True)
            return
        config = self.monitor.config
        if clock - self.window_start > config.miss_window:
            self.window_start = clock
            self.misses = 0
        self.misses += 1
        self.ok_streak = 0
        if state == UP and self.misses >= config.suspect_misses:
            self.state = SUSPECT
            self._emit(clock, UP)
            self.monitor._on_suspicion_changed(self, clock)
        if self.misses >= config.down_misses:
            self._declare_down(clock, relapse=False)

    def on_corrupt(self, clock: int) -> None:
        """A flit arrived corrupted; counts toward the miss thresholds."""
        self.corrupts += 1
        self.on_miss(clock)

    # -- transitions ----------------------------------------------------

    def _declare_down(self, clock: int, relapse: bool) -> None:
        prev = self.state
        self.state = DOWN
        self._emit(clock, prev)
        self.downs += 1
        if relapse:
            self.flaps += 1
        if self.down_since < 0:
            # time-to-recovery measures the whole outage, across
            # probation relapses
            self.down_since = clock
        self.misses = 0
        self.ok_streak = 0
        self.monitor._on_down(self, clock)

    def _declare_up(self, clock: int) -> None:
        prev = self.state
        self.state = UP
        self._emit(clock, prev)
        self.recoveries += 1
        if self.down_since >= 0:
            self.ttr_total += clock - self.down_since
            self.down_since = -1
        self.probes = 0
        self.misses = 0
        self.ok_streak = 0
        self.monitor._on_up(self, clock)

    def enter_probation(self) -> None:
        """Probe timer fired: unmask and let traffic test the link."""
        if self.state != DOWN:
            return
        self.state = PROBATION
        self.ok_streak = 0
        if self.monitor.trace is not None:
            self._emit(self.monitor.network.clock, DOWN)
        self.monitor._on_probation(self)


class SwitchHealth:
    """Aggregated health verdict for one router.

    A router emits no heartbeat of its own; its death is inferred from
    the links *entering* it (the outbound links of a crashed switch
    carry no traffic, so they never show symptoms).  The switch is
    declared DOWN when every inbound inter-router link is at least
    SUSPECT and at least one is DOWN; it mirrors the link machinery's
    hysteresis by entering PROBATION while an inbound link probes and
    returning UP as soon as any inbound link proves healthy.
    """

    __slots__ = (
        "rid",
        "state",
        "down_since",
        "downs",
        "flaps",
        "recoveries",
        "ttr_total",
    )

    def __init__(self, rid: int) -> None:
        self.rid = rid
        self.state = UP
        #: cycle the current outage began (-1 while healthy)
        self.down_since = -1
        self.downs = 0
        #: relapses DOWN from PROBATION
        self.flaps = 0
        self.recoveries = 0
        #: summed time-to-recovery over completed outages, cycles
        self.ttr_total = 0


def _link_channel(link):
    """The admission-controller channel id carrying this link's bandwidth.

    Matches the ids the experiment runner reserves on: inter-router
    wires are ``("link", src_router, src_port)``; host links map to the
    node's ``host-in`` / ``host-out`` channel.
    """
    if link.src_router is not None:
        return ("link", link.src_router.router_id, link.src_port)
    label = link.label
    if label.startswith("host") and ":" in label:
        node_text, _, side = label.partition(":")
        try:
            node = int(node_text[4:])
        except ValueError:
            return ("link-label", label, 0)
        return ("host-in" if side == "inject" else "host-out", node, 0)
    return ("link-label", label, 0)


class LinkHealthMonitor:
    """Network-wide link-health state and the failover actions.

    Built by :func:`install_health`.  Holds one :class:`LinkHealth` per
    link; performs masking/requeue (only when the router config runs in
    adaptive routing mode), admission degradation, and best-effort
    shedding on state transitions.
    """

    def __init__(self, network, config: HealthConfig, rngs) -> None:
        self.network = network
        self.config = config
        self._rngs = rngs
        self.states: Dict[str, LinkHealth] = {}
        for link in network.links:
            record = LinkHealth(link, _link_channel(link), self)
            link.health = record
            self.states[link.label] = record
        #: failover actions require symptom-based adaptive routing
        self.adaptive = (
            network.config.routing_mode == RoutingMode.ADAPTIVE
        )
        #: optional AdmissionController degraded on capacity loss
        self.admission = None
        #: best-effort sources paused while any link is DOWN
        self.be_sources: List[object] = []
        self._be_paused = False
        self.worms_requeued = 0
        self.streams_shed = 0
        self.streams_readmitted = 0
        #: trace sink installed by repro.obs.install_tracing
        self.trace = None
        # -- switch-level aggregation (pure topology data; building the
        # -- maps at install time never touches an RNG substream) ------
        inbound: Dict[int, List[str]] = {}
        self._link_switch: Dict[str, int] = {}
        for src_r, src_p, dst_r, dst_p in network.topology.channels:
            label = f"ch:{src_r}.{src_p}->{dst_r}.{dst_p}"
            inbound.setdefault(dst_r, []).append(label)
            self._link_switch[label] = dst_r
        #: rid -> SwitchHealth for every router with inbound channels
        self.switches: Dict[int, SwitchHealth] = {
            rid: SwitchHealth(rid) for rid in sorted(inbound)
        }
        self._switch_inbound = {
            rid: tuple(labels) for rid, labels in inbound.items()
        }
        #: the topology's alternate-ancestor overlay (None off-tree)
        self.overlay = getattr(network.routing, "overlay", None)
        #: switches currently believed crashed (drives the overlay)
        self._down_switches: "set[int]" = set()
        #: overlay masks applied for the current dead-switch set
        self._overlay_masks: "set[tuple[int, int]]" = set()
        #: (router, port) -> mask refcount; link symptoms and overlay
        #: repair can mask the same port, and it must stay masked until
        #: *both* reasons clear
        self._mask_refs: Dict[tuple, int] = {}
        #: MediaStreams paused/resumed as their endpoints (dis)appear
        self.streams: List[object] = []
        #: distinct hosts ever declared isolated (probation churn can
        #: re-isolate the same host; it is only counted once)
        self._ever_isolated: "set[int]" = set()
        self._isolation_since: Dict[int, int] = {}
        self._host_downtime = 0
        #: per-host availability timeline: dicts of cycle/host/event
        self.availability_events: List[Dict[str, object]] = []

    # -- bindings -------------------------------------------------------

    def bind_admission(self, controller) -> None:
        """Degrade/recover ``controller`` on link down/up transitions."""
        self.admission = controller

    def bind_besteffort(self, sources) -> None:
        """Pause these sources while any monitored link is DOWN."""
        self.be_sources = list(sources)

    def bind_streams(self, streams) -> None:
        """Pause these media streams while an endpoint is isolated."""
        self.streams = list(streams)

    # -- queries --------------------------------------------------------

    def down_links(self) -> List[str]:
        """Labels currently declared DOWN, sorted."""
        return sorted(
            label for label, h in self.states.items() if h.state == DOWN
        )

    def suspected(self) -> List[str]:
        """``label (state)`` for every link/switch not plainly UP, sorted.

        When a whole switch is implicated the report names the router
        (``switch 34 (down)``) alongside the per-link verdicts, so a
        stall report reads as a datacenter incident, not link noise.
        """
        entries = [
            f"{label} ({h.state})"
            for label, h in self.states.items()
            if h.state != UP
        ]
        entries.extend(
            f"switch {rid} ({s.state})"
            for rid, s in self.switches.items()
            if s.state != UP
        )
        return sorted(entries)

    def summary(self) -> Dict[str, object]:
        """Aggregate health/failover statistics for one run."""
        downs = sum(h.downs for h in self.states.values())
        flaps = sum(h.flaps for h in self.states.values())
        recoveries = sum(h.recoveries for h in self.states.values())
        ttr_total = sum(h.ttr_total for h in self.states.values())
        switch_downs = sum(s.downs for s in self.switches.values())
        switch_recoveries = sum(s.recoveries for s in self.switches.values())
        switch_ttr = sum(s.ttr_total for s in self.switches.values())
        clock = self.network.clock
        # hosts still isolated contribute their open interval
        downtime = self._host_downtime + sum(
            clock - since for since in self._isolation_since.values()
        )
        routing = self.network.routing
        return {
            "links_monitored": len(self.states),
            "link_downs": downs,
            "link_flaps": flaps,
            "link_recoveries": recoveries,
            "mean_time_to_recovery_cycles": (
                ttr_total / recoveries if recoveries else 0.0
            ),
            "reroutes": getattr(routing, "reroutes", 0),
            "detours": getattr(routing, "detours_taken", 0),
            "worms_requeued": self.worms_requeued,
            "streams_shed": self.streams_shed,
            "streams_readmitted": self.streams_readmitted,
            "be_messages_shed": sum(
                getattr(src, "messages_shed", 0) for src in self.be_sources
            ),
            "switches_monitored": len(self.switches),
            "switch_downs": switch_downs,
            "switch_flaps": sum(s.flaps for s in self.switches.values()),
            "switch_recoveries": switch_recoveries,
            "mean_switch_time_to_recover_cycles": (
                switch_ttr / switch_recoveries if switch_recoveries else 0.0
            ),
            "hosts_isolated": len(self._ever_isolated),
            "host_downtime_cycles": downtime,
            "availability": list(self.availability_events),
        }

    # -- transition actions ---------------------------------------------

    def _mask(self, router_id: int, port: int) -> None:
        """Mask a port, refcounted across independent reasons.

        A port can be masked both because its own link shows symptoms
        and because the failover overlay prunes it (the two sets
        overlap on every port aimed at a dead switch); it must stay
        masked until the last reason clears.
        """
        key = (router_id, port)
        refs = self._mask_refs.get(key, 0)
        self._mask_refs[key] = refs + 1
        if refs == 0:
            self.network.routing.mask_port(router_id, port)

    def _unmask(self, router_id: int, port: int) -> None:
        key = (router_id, port)
        refs = self._mask_refs.get(key, 0)
        if refs <= 1:
            self._mask_refs.pop(key, None)
            self.network.routing.unmask_port(router_id, port)
        else:
            self._mask_refs[key] = refs - 1

    def _on_down(self, health: LinkHealth, clock: int) -> None:
        link = health.link
        network = self.network
        if self.adaptive and link.src_router is not None:
            # The network's forked facade: masking mutates this run's
            # thin per-router overlay, never the shared route program.
            self._mask(link.src_router.router_id, link.src_port)
            self.worms_requeued += network.requeue_stuck_worms(
                link.src_router, link.src_port, link
            )
        if self.admission is not None:
            shed = self.admission.degrade(health.channel, 0.0)
            self.streams_shed += len(shed)
        if (
            self.config.shed_best_effort
            and self.be_sources
            and not self._be_paused
        ):
            self._be_paused = True
            for source in self.be_sources:
                source.pause()
        self._arm_probe(health, clock)
        self._reassess_switch(health, clock)

    def _arm_probe(self, health: LinkHealth, clock: int) -> None:
        config = self.config
        interval = min(
            config.probe_interval << min(health.probes, 20), config.probe_cap
        )
        health.probes += 1
        if config.probe_jitter > 0:
            rng = self._rngs.stream(f"health/{health.label}")
            interval += rng.randrange(config.probe_jitter)
        self.network.schedule_call(clock + interval, health.enter_probation)

    def _on_probation(self, health: LinkHealth) -> None:
        link = health.link
        if self.adaptive and link.src_router is not None:
            self._unmask(link.src_router.router_id, link.src_port)
        self._reassess_switch(health, self.network.clock)

    def _on_up(self, health: LinkHealth, clock: int) -> None:
        if self.admission is not None:
            readmitted = self.admission.recover(health.channel)
            self.streams_readmitted += len(readmitted)
        if self._be_paused and not any(
            h.state == DOWN for h in self.states.values()
        ):
            self._be_paused = False
            for source in self.be_sources:
                source.resume()
        self._reassess_switch(health, clock)

    def _on_suspicion_changed(self, health: LinkHealth, clock: int) -> None:
        """A link crossed UP<->SUSPECT (no failover action of its own)."""
        self._reassess_switch(health, clock)

    # -- switch-level verdicts ------------------------------------------

    def _reassess_switch(self, health: LinkHealth, clock: int) -> None:
        rid = self._link_switch.get(health.label)
        if rid is None:
            return
        switch = self.switches[rid]
        states = [
            self.states[label].state for label in self._switch_inbound[rid]
        ]
        if all(s in (SUSPECT, DOWN) for s in states) and DOWN in states:
            self._switch_down(switch, clock)
        elif UP in states:
            self._switch_up(switch, clock)
        elif switch.state == DOWN and PROBATION in states:
            self._switch_probation(switch, clock)

    def _emit_switch(self, switch: SwitchHealth, clock: int, prev) -> None:
        if self.trace is not None:
            self.trace.on_event(
                "health",
                clock,
                {"switch": switch.rid, "state": switch.state, "prev": prev},
            )

    def _switch_down(self, switch: SwitchHealth, clock: int) -> None:
        prev = switch.state
        if prev == DOWN:
            return
        switch.state = DOWN
        switch.downs += 1
        if prev == PROBATION:
            switch.flaps += 1
        if switch.down_since < 0:
            switch.down_since = clock
        self._emit_switch(switch, clock, prev)
        if switch.rid not in self._down_switches:
            self._down_switches.add(switch.rid)
            self._refresh_overlay(clock)

    def _switch_probation(self, switch: SwitchHealth, clock: int) -> None:
        """An inbound link probes: lift the overlay and let traffic test.

        Mirrors the link machinery — overlay masks around the switch
        come off so probe traffic can actually exercise it; a relapse
        re-applies them, a clean probation graduates to UP.
        """
        switch.state = PROBATION
        self._emit_switch(switch, clock, DOWN)
        if switch.rid in self._down_switches:
            self._down_switches.discard(switch.rid)
            self._refresh_overlay(clock)

    def _switch_up(self, switch: SwitchHealth, clock: int) -> None:
        prev = switch.state
        if prev == UP:
            return
        switch.state = UP
        switch.recoveries += 1
        if switch.down_since >= 0:
            switch.ttr_total += clock - switch.down_since
            switch.down_since = -1
        self._emit_switch(switch, clock, prev)
        if switch.rid in self._down_switches:
            self._down_switches.discard(switch.rid)
            self._refresh_overlay(clock)

    def _refresh_overlay(self, clock: int) -> None:
        """Re-derive overlay masks + casualties for the dead-switch set.

        Correlated failures are analysed as a *set* (a pod kill prunes
        differently than the union of its per-switch analyses), so any
        membership change recomputes from scratch and applies the
        difference through the refcounted mask helpers.
        """
        if not self.adaptive or self.overlay is None:
            return
        masks, isolated = self.overlay.masks_for(
            frozenset(self._down_switches)
        )
        new = set(masks)
        old = self._overlay_masks
        for router_id, port in sorted(new - old):
            self._mask(router_id, port)
        for router_id, port in sorted(old - new):
            self._unmask(router_id, port)
        self._overlay_masks = new
        self._update_isolated(isolated, clock)

    def _update_isolated(self, isolated, clock: int) -> None:
        network = self.network
        current = network.isolated_hosts
        fresh = sorted(set(isolated) - current)
        healed = sorted(current - set(isolated))
        for node in fresh:
            current.add(node)
            self._isolation_since[node] = clock
            self._ever_isolated.add(node)
            self.availability_events.append(
                {"cycle": clock, "host": node, "event": "isolated"}
            )
            if self.admission is not None:
                for channel in (("host-in", node, 0), ("host-out", node, 0)):
                    shed = self.admission.degrade(channel, 0.0)
                    self.streams_shed += len(shed)
        for node in healed:
            current.discard(node)
            since = self._isolation_since.pop(node, None)
            if since is not None:
                self._host_downtime += clock - since
            self.availability_events.append(
                {"cycle": clock, "host": node, "event": "restored"}
            )
            if self.admission is not None:
                for channel in (("host-in", node, 0), ("host-out", node, 0)):
                    readmitted = self.admission.recover(channel)
                    self.streams_readmitted += len(readmitted)
        if fresh or healed:
            self._sync_stream_pauses()

    def _sync_stream_pauses(self) -> None:
        isolated = self.network.isolated_hosts
        for stream in self.streams:
            config = stream.config
            wanted = (
                config.src_node in isolated or config.dst_node in isolated
            )
            if wanted and not stream.paused:
                stream.pause()
            elif not wanted and stream.paused:
                stream.resume()


def install_health(
    network, config: HealthConfig, rngs
) -> LinkHealthMonitor:
    """Attach link-health monitoring to an assembled network.

    Every link gets a :class:`LinkHealth` record fed by its delivery
    loop; the monitor lands on ``network.health_monitor`` (the watchdog
    stall report and the metrics collector read it).  A zero-fault run
    with monitoring installed is bit-identical to one without: healthy
    links only emit ``on_ok`` events, which are no-ops in the UP state,
    and no RNG substream is touched before a first DOWN transition.
    """
    monitor = LinkHealthMonitor(network, config, rngs)
    network.health_monitor = monitor
    return monitor
