"""Physical channels between router stages.

A link carries at most one flit per cycle (that is the definition of a
router cycle) with a fixed pipeline latency.  The default latency of
two cycles models the wire plus the downstream stage-1 synchroniser /
decoder of the PROUD pipeline, giving the paper's per-hop costs: five
stages for a header flit, three for a body flit (which bypasses routing
and arbitration).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, NamedTuple, Optional, Tuple

from repro.errors import FlowControlError
from repro.router.flit import Message

#: default link pipeline latency in cycles (wire + stage-1 sync/decode)
DEFAULT_LINK_LATENCY = 2


class LinkDatapathView(NamedTuple):
    """Hot-path state view of one link (see :meth:`Link.datapath_view`).

    Everything a fused engine needs to inline ``send``/``deliver_due``:
    the consumer (exactly one of ``dest_router``/``sink`` is set) and
    the pipeline latency.  The ``pending`` deque is deliberately *not*
    included — :meth:`Link.purge_message` rebuilds it, so engines must
    read ``link.pending`` through the object to stay on the one source
    of truth.
    """

    link: "Link"
    dest_router: Optional[object]
    dest_port: int
    sink: Optional[object]
    latency: int


class Link:
    """Unidirectional flit pipeline from an output port to a consumer.

    The consumer is either a router input port (``dest_router`` +
    ``dest_port``) or a host sink (ejection).  ``deliver_due`` is called
    once per cycle by the network loop before routers step, so a flit
    sent at cycle ``t`` becomes visible downstream at ``t + latency``.
    """

    __slots__ = (
        "latency",
        "dest_router",
        "dest_port",
        "sink",
        "pending",
        "label",
        "faults",
        "health",
        "src_router",
        "src_port",
        "on_wake",
        "trace",
    )

    def __init__(
        self,
        dest_router=None,
        dest_port: int = -1,
        sink=None,
        latency: int = DEFAULT_LINK_LATENCY,
        label: str = "",
    ) -> None:
        if (dest_router is None) == (sink is None):
            raise FlowControlError(
                "a link needs exactly one consumer: a router port or a sink"
            )
        if latency < 1:
            raise FlowControlError(f"link latency must be >= 1, got {latency}")
        self.latency = latency
        self.dest_router = dest_router
        self.dest_port = dest_port
        self.sink = sink
        #: stable name used by fault plans to address this link
        self.label = label
        #: optional LinkFaultState installed by repro.faults
        self.faults = None
        #: optional LinkHealth record installed by repro.network.health
        self.health = None
        #: sending router + output port (wired by the network; None for
        #: host-injection links, whose sender is an NI)
        self.src_router = None
        self.src_port = -1
        #: in-flight flits: (arrival_cycle, msg, flit_index, vc_index)
        self.pending: Deque[Tuple[int, Message, int, int]] = deque()
        #: no-argument activation hook fired when the wire transitions
        #: from empty to non-empty; installed by the network so the
        #: dispatch loop starts stepping this link (None when the link
        #: is driven manually).  Firing only on the transition — not per
        #: flit — keeps a streaming worm's sends hook-free.
        self.on_wake = None
        #: trace sink installed by repro.obs.install_tracing
        self.trace = None

    def send(self, clock: int, msg: Message, flit_index: int, vc_index: int) -> None:
        """Put one flit on the wire at cycle ``clock``."""
        arrival = clock + self.latency
        pending = self.pending
        if not pending and self.on_wake is not None:
            self.on_wake()
        pending.append((arrival, msg, flit_index, vc_index))
        if self.trace is not None:
            self.trace.on_event(
                "link_tx",
                clock,
                {
                    "link": self.label,
                    "msg": msg.msg_id,
                    "flit": flit_index,
                    "vc": vc_index,
                    "arrive": arrival,
                },
            )

    def step(self, clock: int) -> int:
        """Component protocol: deliver due flits; activity = flits handed over.

        A link stays in the dispatch loop's active set while
        :attr:`pending` is non-empty (the loop checks it directly on
        the hot path); a spurious step with nothing due is a no-op.
        """
        pending = self.pending
        if pending and pending[0][0] <= clock:
            return self.deliver_due(clock)
        return 0

    def next_due(self, clock: int) -> Optional[int]:
        """Component protocol: earliest arrival cycle, or ``None``.

        Unlike NIs and routers, a link knows its future exactly, which
        is what lets the dispatch loop jump the clock over idle spans.
        """
        if not self.pending:
            return None
        return self.pending[0][0]

    def deliver_due(self, clock: int) -> int:
        """Hand over every flit whose latency has elapsed.

        Returns the number of flits delivered.
        """
        if self.faults is not None:
            return self._deliver_due_faulty(clock)
        delivered = 0
        pending = self.pending
        router = self.dest_router
        if router is not None:
            port = self.dest_port
            while pending and pending[0][0] <= clock:
                _, msg, flit_index, vc_index = pending.popleft()
                router.accept_flit(clock, port, vc_index, msg, flit_index)
                delivered += 1
        else:
            sink = self.sink
            while pending and pending[0][0] <= clock:
                _, msg, flit_index, vc_index = pending.popleft()
                sink.eject(clock, msg, flit_index)
                delivered += 1
        if delivered and self.health is not None:
            # Delivery heartbeat: a no-op while the link is UP, streak
            # progress while it is SUSPECT or on PROBATION.
            self.health.on_ok(clock, delivered)
        return delivered

    def _deliver_due_faulty(self, clock: int) -> int:
        """Delivery loop with the installed fault state applied.

        A lost flit on a router-bound wire returns its credit to the
        sender immediately (faults lose data, not flow-control
        capacity); a corrupted flit is delivered but taints its
        message.  See :mod:`repro.faults` for the full semantics.
        """
        from repro.faults import FATE_CORRUPT, FATE_LOST

        faults = self.faults
        health = self.health
        delivered = 0
        pending = self.pending
        router = self.dest_router
        down = faults.down(clock)
        while pending and pending[0][0] <= clock:
            _, msg, flit_index, vc_index = pending.popleft()
            fate = faults.fate(msg, flit_index, down)
            if fate == FATE_LOST:
                if router is not None:
                    sender = router.inputs[self.dest_port][
                        vc_index
                    ].credit_sink
                    if sender is not None:
                        sender.credits += 1
                faults.account_lost()
                if self.trace is not None:
                    self.trace.on_event(
                        "flit_lost",
                        clock,
                        {
                            "link": self.label,
                            "msg": msg.msg_id,
                            "flit": flit_index,
                            "down": down,
                        },
                    )
                # The teardowns below (loss recovery, and a health
                # transition's kill-and-requeue) may purge this link and
                # rebuild self.pending; re-fetch so we keep draining the
                # live deque, not the pre-purge snapshot.
                faults.report_loss(msg)
                if health is not None:
                    health.on_miss(clock)
                pending = self.pending
                continue
            if fate == FATE_CORRUPT:
                msg.corrupted = True
                faults.account_corrupted()
            if router is not None:
                router.accept_flit(
                    clock, self.dest_port, vc_index, msg, flit_index
                )
            else:
                self.sink.eject(clock, msg, flit_index)
            delivered += 1
            if fate == FATE_CORRUPT and self.trace is not None:
                # Emitted only after the flit landed: an event sink may
                # audit credits on any event (InvariantChecker's
                # periodic check), and between the wire pop above and
                # accept/eject the flit is in neither ledger.
                self.trace.on_event(
                    "flit_corrupt",
                    clock,
                    {
                        "link": self.label,
                        "msg": msg.msg_id,
                        "flit": flit_index,
                    },
                )
            if health is not None:
                if fate == FATE_CORRUPT:
                    health.on_corrupt(clock)
                    pending = self.pending
                else:
                    health.on_ok(clock)
        return delivered

    def is_available(self, clock: int) -> bool:
        """False while the link sits inside a fault down window."""
        return self.faults is None or not self.faults.down(clock)

    @property
    def in_flight(self) -> int:
        """Flits currently on the wire."""
        return len(self.pending)

    def purge_message(self, msg: Message) -> "list[int]":
        """Drop a killed message's in-flight flits (preemption support).

        Returns the VC index of every dropped flit, so the caller can
        hand the credits they consumed back to the sender.
        """
        if self.faults is not None:
            self.faults.forget(msg)
        if not self.pending:
            return []
        kept = deque()
        dropped_vcs = []
        for entry in self.pending:
            if entry[1] is msg:
                dropped_vcs.append(entry[3])
            else:
                kept.append(entry)
        self.pending = kept
        return dropped_vcs

    def datapath_view(self) -> LinkDatapathView:
        """The hot state both engines share (fused-engine binding hook)."""
        return LinkDatapathView(
            link=self,
            dest_router=self.dest_router,
            dest_port=self.dest_port,
            sink=self.sink,
            latency=self.latency,
        )

    def next_arrival(self) -> Optional[int]:
        """Cycle of the earliest pending delivery, or ``None``."""
        if not self.pending:
            return None
        return self.pending[0][0]
