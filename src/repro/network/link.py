"""Physical channels between router stages.

A link carries at most one flit per cycle (that is the definition of a
router cycle) with a fixed pipeline latency.  The default latency of
two cycles models the wire plus the downstream stage-1 synchroniser /
decoder of the PROUD pipeline, giving the paper's per-hop costs: five
stages for a header flit, three for a body flit (which bypasses routing
and arbitration).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.errors import FlowControlError
from repro.router.flit import Message

#: default link pipeline latency in cycles (wire + stage-1 sync/decode)
DEFAULT_LINK_LATENCY = 2


class Link:
    """Unidirectional flit pipeline from an output port to a consumer.

    The consumer is either a router input port (``dest_router`` +
    ``dest_port``) or a host sink (ejection).  ``deliver_due`` is called
    once per cycle by the network loop before routers step, so a flit
    sent at cycle ``t`` becomes visible downstream at ``t + latency``.
    """

    __slots__ = ("latency", "dest_router", "dest_port", "sink", "pending")

    def __init__(
        self,
        dest_router=None,
        dest_port: int = -1,
        sink=None,
        latency: int = DEFAULT_LINK_LATENCY,
    ) -> None:
        if (dest_router is None) == (sink is None):
            raise FlowControlError(
                "a link needs exactly one consumer: a router port or a sink"
            )
        if latency < 1:
            raise FlowControlError(f"link latency must be >= 1, got {latency}")
        self.latency = latency
        self.dest_router = dest_router
        self.dest_port = dest_port
        self.sink = sink
        #: in-flight flits: (arrival_cycle, msg, flit_index, vc_index)
        self.pending: Deque[Tuple[int, Message, int, int]] = deque()

    def send(self, clock: int, msg: Message, flit_index: int, vc_index: int) -> None:
        """Put one flit on the wire at cycle ``clock``."""
        self.pending.append((clock + self.latency, msg, flit_index, vc_index))

    def deliver_due(self, clock: int) -> int:
        """Hand over every flit whose latency has elapsed.

        Returns the number of flits delivered.
        """
        delivered = 0
        pending = self.pending
        router = self.dest_router
        if router is not None:
            port = self.dest_port
            while pending and pending[0][0] <= clock:
                _, msg, flit_index, vc_index = pending.popleft()
                router.accept_flit(clock, port, vc_index, msg, flit_index)
                delivered += 1
        else:
            sink = self.sink
            while pending and pending[0][0] <= clock:
                _, msg, flit_index, vc_index = pending.popleft()
                sink.eject(clock, msg, flit_index)
                delivered += 1
        return delivered

    @property
    def in_flight(self) -> int:
        """Flits currently on the wire."""
        return len(self.pending)

    def purge_message(self, msg: Message) -> "list[int]":
        """Drop a killed message's in-flight flits (preemption support).

        Returns the VC index of every dropped flit, so the caller can
        hand the credits they consumed back to the sender.
        """
        if not self.pending:
            return []
        kept = deque()
        dropped_vcs = []
        for entry in self.pending:
            if entry[1] is msg:
                dropped_vcs.append(entry[3])
            else:
                kept.append(entry)
        self.pending = kept
        return dropped_vcs

    def next_arrival(self) -> Optional[int]:
        """Cycle of the earliest pending delivery, or ``None``."""
        if not self.pending:
            return None
        return self.pending[0][0]
