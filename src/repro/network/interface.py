"""Host network interfaces: injection multiplexer and ejection sink.

The paper's "input link load" is offered on the physical channel between
a host and its router port.  That link is a scheduled resource exactly
like a router's output PC: the NI holds a per-VC queue of messages and a
VC multiplexer (same policy as the router under test — Virtual Clock in
MediaWorm, FIFO in the vanilla router) chooses which VC sends its next
flit, subject to credit flow control into the router's input buffers.

The ejection side (:class:`HostSink`) consumes flits at link rate and
reports message/frame completions to the metrics collector.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, NamedTuple, Optional

from repro.core.schedulers import MuxScheduler, make_scheduler
from repro.core.virtual_clock import VirtualClockState
from repro.errors import FlowControlError
from repro.network.link import Link
from repro.router.flit import Message


class _NIVC:
    """One virtual channel of the host-to-router link."""

    __slots__ = ("index", "queue", "sent", "credits", "vstate", "head_stamp")

    def __init__(self, index: int, credits: int) -> None:
        self.index = index
        #: messages queued on this VC, head first
        self.queue: Deque[Message] = deque()
        #: flits of the head message already sent
        self.sent = 0
        #: free slots in the router's matching input VC buffer
        self.credits = credits
        self.vstate = VirtualClockState()
        #: lazily computed stamp of the next flit to send (None = compute)
        self.head_stamp: Optional[float] = None

    @property
    def has_flit(self) -> bool:
        return bool(self.queue)


class NIDatapathView(NamedTuple):
    """Hot-path state view of one host interface.

    The containers (``vcs``, ``active``) are stable for the network's
    lifetime and mutated in place by both engines, so binding them once
    is safe; per-VC scalars (``credits``, ``sent``, ``head_stamp``) are
    read through the :class:`_NIVC` objects — the one source of truth.
    """

    interface: "HostInterface"
    vcs: List["_NIVC"]
    active: set
    scheduler: MuxScheduler
    stateless: bool
    link: Link


class HostInterface:
    """Traffic injection point for one host (endpoint) node."""

    __slots__ = (
        "node_id",
        "link",
        "vcs",
        "scheduler",
        "_stateless",
        "_active",
        "flits_injected",
        "messages_injected",
        "on_start",
        "on_activated",
        "trace",
    )

    def __init__(
        self,
        node_id: int,
        vcs_per_pc: int,
        buffer_depth: int,
        policy: str,
        link: Link,
    ) -> None:
        self.node_id = node_id
        self.link = link
        self.vcs: List[_NIVC] = [
            _NIVC(i, buffer_depth) for i in range(vcs_per_pc)
        ]
        self.scheduler: MuxScheduler = make_scheduler(policy)
        #: True when the mux policy's select() carries no state, which
        #: allows the single-backlogged-VC fast path in :meth:`step`
        #: (round-robin must rotate even with one candidate)
        self._stateless = self.scheduler.stateless_select
        self._active: set = set()
        #: total flits accepted for injection (metrics/audit)
        self.flits_injected = 0
        self.messages_injected = 0
        #: fired when a message's header flit leaves for the wire; the
        #: recovery transport arms its delivery timeout here so NI
        #: queueing (frame bursts paced at stream rate) doesn't count
        #: against the timeout
        self.on_start: Optional[Callable[[Message, int], None]] = None
        #: activation hook fired when this NI gains backlog; installed
        #: by the network so the active-set loop starts stepping it
        self.on_activated: Optional[Callable[[], None]] = None
        #: trace sink installed by repro.obs.install_tracing
        self.trace = None

    def inject(self, clock: int, msg: Message) -> None:
        """Queue a message for transmission on its source VC.

        All flits of the message "arrive at the scheduler" at injection
        time, so Virtual Clock stamps pace them at the message's
        reserved rate while FIFO stamps them all with the arrival time.
        """
        if not 0 <= msg.src_vc < len(self.vcs):
            raise FlowControlError(
                f"node {self.node_id}: message source VC {msg.src_vc} out of "
                f"range (have {len(self.vcs)} VCs)"
            )
        msg.inject_time = clock
        vc = self.vcs[msg.src_vc]
        vc.queue.append(msg)
        if len(vc.queue) == 1:
            self._open_head(vc)
        self._active.add(msg.src_vc)
        self.flits_injected += msg.size
        self.messages_injected += 1
        if self.on_activated is not None:
            self.on_activated()

    def _open_head(self, vc: _NIVC) -> None:
        """Start serving a new head message on ``vc``."""
        msg = vc.queue[0]
        vc.sent = 0
        vc.vstate.open(msg.inject_time, msg.vtick)
        vc.head_stamp = None

    def _ensure_stamp(self, vc: _NIVC) -> float:
        """Lazily stamp the next flit of the head message."""
        if vc.head_stamp is None:
            msg = vc.queue[0]
            vc.head_stamp = self.scheduler.stamp(msg.inject_time, vc.vstate)
        return vc.head_stamp

    def step(self, clock: int) -> int:
        """Component protocol: send at most one flit onto the host link.

        Returns the NI's activity — non-zero while messages remain
        queued, zero once the backlog drained (the dispatch loop then
        drops the NI from the active set until :meth:`inject` fires
        ``on_activated`` again).
        """
        active = self._active
        if not active:
            return 0
        vcs = self.vcs
        if len(active) == 1 and self._stateless:
            # One backlogged VC and a stateless selector: nothing to
            # arbitrate.  The stamp is still computed (lazily, once per
            # flit) because Virtual Clock stamping advances the VC's
            # auxVC register.
            chosen = next(iter(active))
            vc = vcs[chosen]
            if vc.credits <= 0:
                return 1
            self._ensure_stamp(vc)
        else:
            candidates = []
            for index in active:
                vc = vcs[index]
                if vc.credits > 0:
                    candidates.append((self._ensure_stamp(vc), index))
            if not candidates:
                return 1
            chosen = self.scheduler.select(candidates)
            vc = vcs[chosen]
        msg = vc.queue[0]
        flit_index = vc.sent
        vc.credits -= 1
        vc.sent += 1
        vc.head_stamp = None
        self.link.send(clock, msg, flit_index, chosen)
        if self.trace is not None:
            self.trace.on_event(
                "flit_inject",
                clock,
                {
                    "node": self.node_id,
                    "vc": chosen,
                    "msg": msg.msg_id,
                    "flit": flit_index,
                    "size": msg.size,
                    "cls": msg.traffic_class,
                },
            )
        if flit_index == 0 and self.on_start is not None:
            self.on_start(msg, clock)
        if flit_index == msg.last_flit:
            vc.queue.popleft()
            vc.vstate.close()
            if vc.queue:
                self._open_head(vc)
            else:
                active.discard(chosen)
        return 1 if active else 0

    def purge_message(self, msg: Message) -> int:
        """Drop a killed message's untransmitted flits (preemption).

        Returns the number of flits that never reached the link.
        """
        vc = self.vcs[msg.src_vc]
        removed = 0
        if vc.queue and vc.queue[0] is msg:
            removed = msg.size - vc.sent
            vc.queue.popleft()
            vc.vstate.close()
            if vc.queue:
                self._open_head(vc)
        else:
            for index, queued in enumerate(vc.queue):
                if queued is msg:
                    del vc.queue[index]
                    removed = msg.size
                    break
        if not vc.queue:
            self._active.discard(msg.src_vc)
        return removed

    def datapath_view(self) -> NIDatapathView:
        """The hot state both engines share (fused-engine binding hook)."""
        return NIDatapathView(
            interface=self,
            vcs=self.vcs,
            active=self._active,
            scheduler=self.scheduler,
            stateless=self._stateless,
            link=self.link,
        )

    @property
    def backlog_flits(self) -> int:
        """Flits queued at this NI not yet put on the link (audit)."""
        total = 0
        for vc in self.vcs:
            for position, msg in enumerate(vc.queue):
                total += msg.size - (vc.sent if position == 0 else 0)
        return total

    @property
    def has_backlog(self) -> bool:
        return bool(self._active)

    def next_due(self, clock: int) -> Optional[int]:
        """When this NI next needs a :meth:`step`, or ``None`` when idle.

        An NI with backlog must be stepped every cycle (whether it can
        send depends on credits, which it cannot predict), so the wake
        time is ``clock`` while busy.  This is the NI half of the
        component wake-time contract; links report concrete future
        arrival cycles instead (:meth:`repro.network.link.Link
        .next_arrival`).
        """
        return clock if self._active else None


class HostSink:
    """Flit consumer at a destination host.

    Flits are consumed at link rate (the stage-5 multiplexer upstream
    already enforces one flit per cycle); the sink only accounts for
    them and reports tail-flit deliveries.
    """

    __slots__ = (
        "node_id",
        "on_message",
        "on_flit",
        "on_corrupt",
        "flits_ejected",
        "messages_ejected",
        "messages_corrupt",
        "trace",
    )

    def __init__(
        self,
        node_id: int,
        on_message: Optional[Callable[[Message, int], None]] = None,
        on_flit: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.node_id = node_id
        self.on_message = on_message
        self.on_flit = on_flit
        #: end-to-end checksum handler: when set, a message whose flits
        #: were corrupted in transit is rejected at its tail instead of
        #: being reported delivered (repro.faults.install_recovery)
        self.on_corrupt: Optional[Callable[[Message, int], None]] = None
        self.flits_ejected = 0
        self.messages_ejected = 0
        self.messages_corrupt = 0
        #: trace sink installed by repro.obs.install_tracing
        self.trace = None

    def step(self, clock: int) -> int:
        """Component protocol: sinks are passive consumers, never active."""
        return 0

    def next_due(self, clock: int) -> Optional[int]:
        """Component protocol: a sink never needs a step of its own."""
        return None

    def eject(self, clock: int, msg: Message, flit_index: int) -> None:
        """Consume one flit; fire callbacks on tails."""
        self.flits_ejected += 1
        tail = flit_index == msg.last_flit
        if self.trace is not None:
            self.trace.on_event(
                "flit_eject",
                clock,
                {
                    "node": self.node_id,
                    "msg": msg.msg_id,
                    "flit": flit_index,
                    "tail": tail,
                },
            )
        if self.on_flit is not None:
            self.on_flit(1)
        if tail:
            if msg.dst_node != self.node_id:
                raise FlowControlError(
                    f"message {msg.msg_id} for node {msg.dst_node} ejected "
                    f"at node {self.node_id}"
                )
            if msg.corrupted and self.on_corrupt is not None:
                # checksum failure: the payload arrived but is garbage;
                # don't report delivery — the transport decides whether
                # to retransmit
                self.messages_corrupt += 1
                self.on_corrupt(msg, clock)
                return
            msg.deliver_time = clock
            self.messages_ejected += 1
            if self.on_message is not None:
                self.on_message(msg, clock)
