"""Topology descriptions: single switch, fat meshes, fat trees, Clos.

A :class:`Topology` is pure data: where hosts attach, which router
ports face which other router ports, and the routing function.  The
:class:`~repro.network.network.Network` builder turns it into wired
routers, links, and host interfaces.

The paper evaluates an 8-port single switch (sections 5.1-5.6) and a
2x2 fat mesh (section 5.7): four 8-port switches, four hosts per
switch, and **two** physical links between each adjacent pair so the
inter-switch bandwidth matches the multi-endpoint load ("fat" links,
section 3.4).  ``fat_mesh`` generalises to k x k for the scalability
studies the paper lists as future work; ``fat_tree3`` (a 3-level
pod/spine/core k-ary fat tree) and ``butterfly`` (a k-ary n-tree, the
folded multistage Clos/Butterfly) extend the reproduction to the
datacenter scales the ROADMAP names, with deterministic up*/down*
routing compiled by the shared :func:`_updown_tables` pass.

Every multi-router generator builds its routing tables in dict form
and hands them to :class:`~repro.router.routing.TableRouting`, which
compiles them into one immutable
:class:`~repro.router.routeprog.RouteProgram` — built exactly once per
topology, shared by every network instantiated over it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.router.routing import (
    FLAVOR_XY,
    FLAVOR_YX,
    FatMeshRouting,
    RoutingFunction,
    SingleSwitchRouting,
    TableRouting,
    UpDownFailover,
)


@dataclass
class Topology:
    """Static description of a network.

    * ``hosts`` — one ``(node_id, router_id, port)`` triple per endpoint;
      the port is used for both injection (input side) and ejection
      (output side).
    * ``channels`` — unidirectional inter-router wires
      ``(src_router, src_port, dst_router, dst_port)``; bidirectional
      physical links appear as two entries.
    * ``routing`` — the routing function all routers share.
    """

    name: str
    num_routers: int
    ports_per_router: int
    hosts: List[Tuple[int, int, int]]
    channels: List[Tuple[int, int, int, int]]
    routing: RoutingFunction
    extras: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        used = set()
        for node, router, port in self.hosts:
            if not 0 <= router < self.num_routers:
                raise ConfigurationError(f"host {node}: bad router {router}")
            if not 0 <= port < self.ports_per_router:
                raise ConfigurationError(f"host {node}: bad port {port}")
            if (router, port) in used:
                raise ConfigurationError(
                    f"port ({router},{port}) attached twice"
                )
            used.add((router, port))
        out_used = set(used)
        in_used = set(used)
        for src_r, src_p, dst_r, dst_p in self.channels:
            if (src_r, src_p) in out_used and (src_r, src_p) not in used:
                raise ConfigurationError(
                    f"output port ({src_r},{src_p}) wired twice"
                )
            if (src_r, src_p) in used:
                raise ConfigurationError(
                    f"port ({src_r},{src_p}) is both host and channel port"
                )
            if (dst_r, dst_p) in used:
                raise ConfigurationError(
                    f"port ({dst_r},{dst_p}) is both host and channel port"
                )
            out_used.add((src_r, src_p))
            in_used.add((dst_r, dst_p))

    @property
    def num_hosts(self) -> int:
        """Number of endpoint nodes."""
        return len(self.hosts)

    @property
    def node_ids(self) -> List[int]:
        """All endpoint node ids."""
        return [node for node, _, _ in self.hosts]

    @property
    def route_program(self):
        """The compiled :class:`RouteProgram`, or None (single switch)."""
        return getattr(self.routing, "program", None)


def single_switch(num_ports: int = 8) -> Topology:
    """One switch with a host on every port (the paper's main testbed)."""
    if num_ports < 2:
        raise ConfigurationError(f"need >= 2 ports, got {num_ports}")
    hosts = [(i, 0, i) for i in range(num_ports)]
    routing = SingleSwitchRouting({i: i for i in range(num_ports)})
    return Topology(
        name=f"single-switch-{num_ports}",
        num_routers=1,
        ports_per_router=num_ports,
        hosts=hosts,
        channels=[],
        routing=routing,
    )


def fat_mesh(
    rows: int = 2,
    cols: int = 2,
    hosts_per_router: int = 4,
    fat_width: int = 2,
) -> Topology:
    """A rows x cols mesh with ``fat_width`` links between neighbours.

    Port layout per router: hosts occupy ports ``0..hosts_per_router-1``;
    each direction that has a neighbour gets ``fat_width`` consecutive
    ports, allocated in +X, -X, +Y, -Y order.  Deterministic
    dimension-order (X then Y) routing; the per-hop fat-link choice is
    made by the router from the candidate group based on load.
    """
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ConfigurationError("mesh needs at least two routers")
    if hosts_per_router < 1:
        raise ConfigurationError("need at least one host per router")
    if fat_width < 1:
        raise ConfigurationError("fat_width must be >= 1")

    def rid(x: int, y: int) -> int:
        return y * cols + x

    num_routers = rows * cols
    # Assign port groups per router and direction.
    directions = {}  # (router, dx, dy) -> tuple of ports
    ports_needed = []
    for y in range(rows):
        for x in range(cols):
            router = rid(x, y)
            cursor = hosts_per_router
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                nx, ny = x + dx, y + dy
                if 0 <= nx < cols and 0 <= ny < rows:
                    group = tuple(range(cursor, cursor + fat_width))
                    directions[(router, dx, dy)] = group
                    cursor += fat_width
            ports_needed.append(cursor)
    ports_per_router = max(ports_needed)

    hosts = []
    host_router: Dict[int, int] = {}
    host_port: Dict[int, int] = {}
    for router in range(num_routers):
        for k in range(hosts_per_router):
            node = router * hosts_per_router + k
            hosts.append((node, router, k))
            host_router[node] = router
            host_port[node] = k

    # Channels: the i-th fat port toward a neighbour wires to the
    # neighbour's i-th fat port back toward us.
    channels = []
    for (router, dx, dy), group in directions.items():
        x, y = router % cols, router // cols
        neighbour = rid(x + dx, y + dy)
        back = directions[(neighbour, -dx, -dy)]
        for src_p, dst_p in zip(group, back):
            channels.append((router, src_p, neighbour, dst_p))

    # Dimension-order routing tables.  The primary is X-then-Y; the
    # alternate (Y-then-X) is ridden by messages carrying the "yx"
    # detour flavour.  ``detours`` lists, per (router, destination),
    # the perpendicular escape hops adaptive routing may take when the
    # primary fat group is entirely masked: a hop in Y resumes
    # X-then-Y downstream ("xy"), a hop in X switches the worm to
    # Y-then-X ("yx") so it cannot ping-pong back into the dead group.
    table: Dict[Tuple[int, int], Tuple[int, ...]] = {}
    alt_table: Dict[Tuple[int, int], Tuple[int, ...]] = {}
    detours: Dict[Tuple[int, int], Tuple] = {}
    for router in range(num_routers):
        x, y = router % cols, router // cols
        for node, dst_router in host_router.items():
            if dst_router == router:
                table[(router, node)] = (host_port[node],)
                alt_table[(router, node)] = (host_port[node],)
                continue
            dst_x, dst_y = dst_router % cols, dst_router // cols
            if dst_x > x:
                step = (1, 0)
            elif dst_x < x:
                step = (-1, 0)
            elif dst_y > y:
                step = (0, 1)
            else:
                step = (0, -1)
            table[(router, node)] = directions[(router, step[0], step[1])]
            if dst_y > y:
                alt_step = (0, 1)
            elif dst_y < y:
                alt_step = (0, -1)
            elif dst_x > x:
                alt_step = (1, 0)
            else:
                alt_step = (-1, 0)
            alt_table[(router, node)] = directions[
                (router, alt_step[0], alt_step[1])
            ]
            if step[0] != 0:  # X step blocked -> escape in Y
                flavor = FLAVOR_XY
                if dst_y < y:
                    prefs = ((0, -1), (0, 1))
                else:
                    prefs = ((0, 1), (0, -1))
            else:  # Y step blocked -> escape in X
                flavor = FLAVOR_YX
                if dst_x < x:
                    prefs = ((-1, 0), (1, 0))
                else:
                    prefs = ((1, 0), (-1, 0))
            options = tuple(
                (directions[(router, dx, dy)], flavor)
                for dx, dy in prefs
                if (router, dx, dy) in directions
            )
            if options:
                detours[(router, node)] = options

    return Topology(
        name=f"fat-mesh-{rows}x{cols}w{fat_width}",
        num_routers=num_routers,
        ports_per_router=ports_per_router,
        hosts=hosts,
        channels=channels,
        routing=FatMeshRouting(table, alt_table, detours),
        extras={
            "rows": rows,
            "cols": cols,
            "hosts_per_router": hosts_per_router,
            "fat_width": fat_width,
        },
    )


def fat_mesh_2x2() -> Topology:
    """The paper's fat mesh: 2x2, four hosts per 8-port switch, 2 fat links."""
    return fat_mesh(rows=2, cols=2, hosts_per_router=4, fat_width=2)


def fat_tree(
    leaves: int = 4,
    spines: int = 2,
    hosts_per_leaf: int = 2,
    fat_width: int = 1,
) -> Topology:
    """A two-level fat tree (folded Clos) — the paper's other fat topology.

    Every leaf switch connects to every spine switch with ``fat_width``
    physical links.  Routing is up/down (deadlock-free): a message for
    a remote leaf may go up on *any* spine link (the router picks by
    load, as on fat-mesh link groups), then down the unique link group
    toward the destination leaf.

    Router ids: leaves are ``0 .. leaves-1``, spines follow.
    """
    if leaves < 2:
        raise ConfigurationError("a fat tree needs >= 2 leaf switches")
    if spines < 1:
        raise ConfigurationError("a fat tree needs >= 1 spine switch")
    if hosts_per_leaf < 1:
        raise ConfigurationError("need at least one host per leaf")
    if fat_width < 1:
        raise ConfigurationError("fat_width must be >= 1")

    num_routers = leaves + spines
    leaf_ports = hosts_per_leaf + spines * fat_width
    spine_ports = leaves * fat_width
    ports_per_router = max(leaf_ports, spine_ports)

    hosts = []
    host_leaf: Dict[int, int] = {}
    host_port: Dict[int, int] = {}
    for leaf in range(leaves):
        for k in range(hosts_per_leaf):
            node = leaf * hosts_per_leaf + k
            hosts.append((node, leaf, k))
            host_leaf[node] = leaf
            host_port[node] = k

    # Leaf port layout: hosts, then fat groups toward each spine.
    # Spine port layout: fat groups toward each leaf.
    def leaf_up_ports(spine: int) -> Tuple[int, ...]:
        base = hosts_per_leaf + spine * fat_width
        return tuple(range(base, base + fat_width))

    def spine_down_ports(leaf: int) -> Tuple[int, ...]:
        base = leaf * fat_width
        return tuple(range(base, base + fat_width))

    channels = []
    for leaf in range(leaves):
        for spine in range(spines):
            spine_router = leaves + spine
            for up, down in zip(leaf_up_ports(spine), spine_down_ports(leaf)):
                channels.append((leaf, up, spine_router, down))
                channels.append((spine_router, down, leaf, up))

    table: Dict[Tuple[int, int], Tuple[int, ...]] = {}
    all_up = tuple(
        port for spine in range(spines) for port in leaf_up_ports(spine)
    )
    for node, leaf in host_leaf.items():
        for router in range(leaves):
            if router == leaf:
                table[(router, node)] = (host_port[node],)
            else:
                # up: any spine link is a legal first hop
                table[(router, node)] = all_up
        for spine in range(spines):
            # down: the unique fat group toward the destination leaf
            table[(leaves + spine, node)] = spine_down_ports(leaf)

    return Topology(
        name=f"fat-tree-{leaves}l{spines}s-w{fat_width}",
        num_routers=num_routers,
        ports_per_router=ports_per_router,
        hosts=hosts,
        channels=channels,
        routing=FatMeshRouting(table),
        extras={
            "leaves": leaves,
            "spines": spines,
            "hosts_per_leaf": hosts_per_leaf,
            "fat_width": fat_width,
        },
    )


# ----------------------------------------------------------------------
# multilevel trees: shared up*/down* route construction


def _updown_tables(
    num_routers: int,
    levels: List[int],
    adjacency: Dict[Tuple[int, int], Tuple[int, ...]],
    host_router: Dict[int, int],
    host_port: Dict[int, int],
) -> Dict[Tuple[int, int], Tuple[int, ...]]:
    """Deterministic up*/down* routing tables for a levelled topology.

    ``adjacency`` maps ``(router, neighbour) -> fat port group``; every
    physical adjacency appears in both directions, and adjacent routers
    sit on consecutive levels (hosts attach at level 0).  The routing
    discipline is the classic deadlock-free one: a message travels *up*
    (any parent group — the router picks by load, as on fat-mesh link
    groups) exactly until the destination is in the subtree below, then
    strictly *down* along the group(s) toward the child subtree holding
    it.  Because down-subtrees partition the hosts at every level of a
    folded-Clos-style fabric, down candidates are a single fat group —
    there is provably no down-path diversity to build detour tables
    from, which is why tree topologies compile with an empty detour
    table.  Down-path *repair* exists anyway, but it is global rather
    than local: ascend through a different ancestor.  The generators
    attach an :class:`~repro.router.routeprog.UpDownFailover` overlay
    (compiled lazily from the same levels/adjacency data) that turns a
    dead-switch set into the up-port masks realising exactly that
    repair — see docs/simulator-internals.md, "Switch failures and
    datacenter failover".
    """
    children: Dict[int, List[int]] = {r: [] for r in range(num_routers)}
    parents: Dict[int, List[int]] = {r: [] for r in range(num_routers)}
    for (rid, nbr) in sorted(adjacency):
        if levels[nbr] == levels[rid] - 1:
            children[rid].append(nbr)
        elif levels[nbr] == levels[rid] + 1:
            parents[rid].append(nbr)
        else:
            raise ConfigurationError(
                f"adjacency {rid}->{nbr} spans levels "
                f"{levels[rid]}->{levels[nbr]}; up*/down* needs "
                f"consecutive levels"
            )
    up_ports = {
        rid: tuple(
            port for nbr in parents[rid] for port in adjacency[(rid, nbr)]
        )
        for rid in range(num_routers)
    }

    # Propagate host sets up the tree, remembering which child subtree
    # each host arrived through (hosts may be reachable through several
    # children in a generalised fabric; candidates concatenate groups
    # in child-id order, deterministically).
    hosts_via: Dict[int, Dict[int, List[int]]] = {
        r: {} for r in range(num_routers)
    }
    below: Dict[int, set] = {r: set() for r in range(num_routers)}
    for node, rid in host_router.items():
        below[rid].add(node)
    for rid in sorted(range(num_routers), key=lambda r: (levels[r], r)):
        for child in children[rid]:
            for node in below[child]:
                below[rid].add(node)
                hosts_via[rid].setdefault(node, []).append(child)

    table: Dict[Tuple[int, int], Tuple[int, ...]] = {}
    for node, dst_rid in host_router.items():
        for rid in range(num_routers):
            if rid == dst_rid:
                table[(rid, node)] = (host_port[node],)
            elif node in below[rid]:
                table[(rid, node)] = tuple(
                    port
                    for child in hosts_via[rid][node]
                    for port in adjacency[(rid, child)]
                )
            else:
                if not up_ports[rid]:
                    raise ConfigurationError(
                        f"router {rid} (level {levels[rid]}) cannot reach "
                        f"node {node}: not below and no parents"
                    )
                table[(rid, node)] = up_ports[rid]
    return table


def _wire_levelled(
    levels: List[int],
    adjacency: Dict[Tuple[int, int], Tuple[int, ...]],
) -> List[Tuple[int, int, int, int]]:
    """Bidirectional channels from a both-direction adjacency map.

    The i-th port of the upward fat group wires to the i-th port of the
    matching downward group, like fat-mesh neighbour pairs.
    """
    channels: List[Tuple[int, int, int, int]] = []
    for (a, b) in sorted(adjacency):
        if levels[a] < levels[b]:
            up_group = adjacency[(a, b)]
            down_group = adjacency[(b, a)]
            for pa, pb in zip(up_group, down_group):
                channels.append((a, pa, b, pb))
                channels.append((b, pb, a, pa))
    return channels


def fat_tree3(
    k: int = 4,
    hosts_per_leaf: Optional[int] = None,
    fat_width: int = 1,
) -> Topology:
    """A 3-level k-ary fat tree: k pods of leaves+spines under a core.

    The classic datacenter shape: ``k`` pods, each with ``k/2`` leaf
    and ``k/2`` spine switches; every leaf connects to every spine of
    its pod, and spine ``j`` of every pod connects to the same group of
    ``k/2`` core switches (so a core reaches exactly one spine per
    pod).  ``hosts_per_leaf`` defaults to ``k/2``, giving the full
    ``k^3/4`` hosts — ``k=16`` is the 1024-host configuration with
    uniform 16-port switches.  ``fat_width`` parallel links per
    adjacency form fat groups exactly as on the mesh.

    Routing is compiled up*/down* (see :func:`_updown_tables`): up
    candidates span *all* parent groups so health-masking a link
    shrinks the group naturally; down paths are unique per switch, so
    the generated detour table is empty by theorem, not omission.
    """
    if k < 2 or k % 2:
        raise ConfigurationError(f"fat_tree3 needs an even k >= 2, got {k}")
    if fat_width < 1:
        raise ConfigurationError("fat_width must be >= 1")
    half = k // 2
    hpl = half if hosts_per_leaf is None else hosts_per_leaf
    if hpl < 1:
        raise ConfigurationError("need at least one host per leaf")
    num_leaves = k * half
    num_spines = k * half
    num_cores = half * half
    num_routers = num_leaves + num_spines + num_cores

    def leaf_rid(pod: int, i: int) -> int:
        return pod * half + i

    def spine_rid(pod: int, j: int) -> int:
        return num_leaves + pod * half + j

    def core_rid(c: int) -> int:
        return num_leaves + num_spines + c

    levels = [0] * num_leaves + [1] * num_spines + [2] * num_cores

    adjacency: Dict[Tuple[int, int], Tuple[int, ...]] = {}

    def group(base: int) -> Tuple[int, ...]:
        return tuple(range(base, base + fat_width))

    for pod in range(k):
        for i in range(half):
            leaf = leaf_rid(pod, i)
            for j in range(half):
                spine = spine_rid(pod, j)
                # leaf: hosts first, then one up group per pod spine;
                # spine: down groups to pod leaves, then up groups.
                adjacency[(leaf, spine)] = group(hpl + j * fat_width)
                adjacency[(spine, leaf)] = group(i * fat_width)
        for j in range(half):
            spine = spine_rid(pod, j)
            for m in range(half):
                core = core_rid(j * half + m)
                adjacency[(spine, core)] = group(
                    half * fat_width + m * fat_width
                )
                adjacency[(core, spine)] = group(pod * fat_width)

    hosts = []
    host_router: Dict[int, int] = {}
    host_port: Dict[int, int] = {}
    for leaf in range(num_leaves):
        for h in range(hpl):
            node = leaf * hpl + h
            hosts.append((node, leaf, h))
            host_router[node] = leaf
            host_port[node] = h

    leaf_ports = hpl + half * fat_width
    spine_ports = 2 * half * fat_width
    core_ports = k * fat_width
    ports_per_router = max(leaf_ports, spine_ports, core_ports)

    table = _updown_tables(
        num_routers, levels, adjacency, host_router, host_port
    )
    name = f"fat-tree3-k{k}h{hpl}w{fat_width}"
    overlay = UpDownFailover(levels, adjacency, host_router)
    return Topology(
        name=name,
        num_routers=num_routers,
        ports_per_router=ports_per_router,
        hosts=hosts,
        channels=_wire_levelled(levels, adjacency),
        routing=TableRouting(table, name=name, overlay=overlay),
        extras={
            "generator": "fat_tree3",
            "k": k,
            "hosts_per_leaf": hpl,
            "fat_width": fat_width,
            "levels": tuple(levels),
        },
    )


def butterfly(
    arity: int = 2,
    levels: int = 3,
    hosts_per_leaf: Optional[int] = None,
    fat_width: int = 1,
) -> Topology:
    """A k-ary n-tree: the folded multistage Clos/Butterfly network.

    ``levels`` stages of ``arity**(levels-1)`` switches each; the
    switch at ``(level l, index d)`` connects upward to the ``arity``
    level-``l+1`` switches whose index differs from ``d`` only in base-
    ``arity`` digit ``l`` — the butterfly permutation, folded into a
    bidirectional fabric.  Hosts (``hosts_per_leaf`` each, default
    ``arity``) hang off the level-0 switches.  Routing is the same
    compiled up*/down* pass as :func:`fat_tree3`; every top-level
    switch reaches every leaf, so up candidates are always the full
    parent set.
    """
    if arity < 2:
        raise ConfigurationError(f"butterfly needs arity >= 2, got {arity}")
    if levels < 2:
        raise ConfigurationError(f"butterfly needs >= 2 levels, got {levels}")
    if fat_width < 1:
        raise ConfigurationError("fat_width must be >= 1")
    hpl = arity if hosts_per_leaf is None else hosts_per_leaf
    if hpl < 1:
        raise ConfigurationError("need at least one host per leaf")
    per_level = arity ** (levels - 1)
    num_routers = levels * per_level

    def rid(level: int, index: int) -> int:
        return level * per_level + index

    level_of = [
        level for level in range(levels) for _ in range(per_level)
    ]

    def group(base: int) -> Tuple[int, ...]:
        return tuple(range(base, base + fat_width))

    adjacency: Dict[Tuple[int, int], Tuple[int, ...]] = {}
    for level in range(levels - 1):
        stride = arity**level
        for index in range(per_level):
            digit = (index // stride) % arity
            lower = rid(level, index)
            # lower's up groups follow its down groups (or its host
            # ports at level 0); upper's down groups come first.
            up_base = hpl if level == 0 else arity * fat_width
            for v in range(arity):
                upper_index = index + (v - digit) * stride
                upper = rid(level + 1, upper_index)
                adjacency[(lower, upper)] = group(up_base + v * fat_width)
                adjacency[(upper, lower)] = group(digit * fat_width)

    hosts = []
    host_router: Dict[int, int] = {}
    host_port: Dict[int, int] = {}
    for leaf in range(per_level):
        for h in range(hpl):
            node = leaf * hpl + h
            hosts.append((node, leaf, h))
            host_router[node] = leaf
            host_port[node] = h

    leaf_ports = hpl + arity * fat_width
    mid_ports = 2 * arity * fat_width
    top_ports = arity * fat_width
    ports_per_router = max(
        leaf_ports, top_ports, mid_ports if levels > 2 else 0
    )

    table = _updown_tables(
        num_routers, level_of, adjacency, host_router, host_port
    )
    name = f"butterfly-a{arity}n{levels}h{hpl}w{fat_width}"
    overlay = UpDownFailover(level_of, adjacency, host_router)
    return Topology(
        name=name,
        num_routers=num_routers,
        ports_per_router=ports_per_router,
        hosts=hosts,
        channels=_wire_levelled(level_of, adjacency),
        routing=TableRouting(table, name=name, overlay=overlay),
        extras={
            "generator": "butterfly",
            "arity": arity,
            "tree_levels": levels,
            "hosts_per_leaf": hpl,
            "fat_width": fat_width,
            "levels": tuple(level_of),
        },
    )
