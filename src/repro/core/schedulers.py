"""Multiplexer scheduling policies: Virtual Clock, FIFO, round-robin.

Every shared resource in the router pipeline — the crossbar input
multiplexer of a multiplexed crossbar (contention point A in Fig. 2 of
the paper), the output virtual-channel multiplexer (point C), and the
host interface's injection link — is a *multiplexer* choosing one flit
per cycle among the virtual channels that have one ready.

A policy does two things:

* **stamp** a flit when it arrives at the multiplexer's buffer, and
* **select** among the head-of-line flits of the candidate VCs.

Virtual Clock and FIFO both select the minimum stamp; they differ only
in how stamps are computed (rate-paced virtual time vs wall-clock
arrival time).  Round-robin ignores stamps and rotates priority — it is
the other "rate agnostic" baseline the paper's conclusion mentions.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.virtual_clock import VirtualClockState
from repro.errors import ConfigurationError


class SchedulingPolicy:
    """String constants naming the available policies."""

    VIRTUAL_CLOCK = "virtual_clock"
    FIFO = "fifo"
    ROUND_ROBIN = "round_robin"

    ALL = (VIRTUAL_CLOCK, FIFO, ROUND_ROBIN)


class MuxScheduler:
    """Base class: FIFO stamping with minimum-stamp selection."""

    #: policy name, overridden by subclasses
    policy = SchedulingPolicy.FIFO
    #: True when select() carries no state between calls, so callers may
    #: skip it entirely when only one candidate exists (the router and
    #: NI single-candidate fast paths).  Round-robin rotates on every
    #: grant and must see even single-candidate selections.
    stateless_select = True

    def stamp(self, clock: int, state: VirtualClockState) -> float:
        """Stamp an arriving flit.  FIFO stamps with the arrival time."""
        return float(clock)

    def select(self, candidates: Sequence[Tuple[float, int]]) -> int:
        """Pick a VC index from ``(head_stamp, vc_index)`` candidates.

        Ties break toward the lower VC index, which keeps runs
        deterministic.  ``candidates`` must be non-empty.
        """
        return min(candidates)[1]


class FifoScheduler(MuxScheduler):
    """First-come-first-served over head-of-line flits.

    This is the conventional wormhole router's scheduler: the flit that
    has waited longest at the multiplexer goes first, regardless of any
    bandwidth reservation.  Under bursty VBR arrivals one stream's burst
    can monopolise the mux, which is exactly the jitter source the
    paper's Fig. 3 exposes.
    """

    policy = SchedulingPolicy.FIFO


class VirtualClockScheduler(MuxScheduler):
    """Rate-based scheduling: serve the smallest virtual-clock stamp.

    Arriving flits advance their message's :class:`VirtualClockState`
    and take the resulting stamp, so each message is paced at its
    reserved rate in *virtual* time even when it arrives in a burst.
    """

    policy = SchedulingPolicy.VIRTUAL_CLOCK

    def stamp(self, clock: int, state: VirtualClockState) -> float:
        return state.stamp_arrival(clock)


class RoundRobinScheduler(MuxScheduler):
    """Rotating-priority selection; stamps are ignored.

    Rate agnostic like FIFO, but fair across VCs at flit granularity.
    """

    policy = SchedulingPolicy.ROUND_ROBIN
    stateless_select = False

    def __init__(self) -> None:
        self._last = -1

    def select(self, candidates: Sequence[Tuple[float, int]]) -> int:
        indices: List[int] = sorted(vc for _, vc in candidates)
        for vc in indices:
            if vc > self._last:
                self._last = vc
                return vc
        self._last = indices[0]
        return indices[0]


def make_scheduler(policy: str) -> MuxScheduler:
    """Instantiate a scheduler by policy name.

    Each multiplexer gets its own instance because round-robin carries
    rotation state.
    """
    if policy == SchedulingPolicy.VIRTUAL_CLOCK:
        return VirtualClockScheduler()
    if policy == SchedulingPolicy.FIFO:
        return FifoScheduler()
    if policy == SchedulingPolicy.ROUND_ROBIN:
        return RoundRobinScheduler()
    raise ConfigurationError(
        f"unknown scheduling policy {policy!r}; expected one of "
        f"{SchedulingPolicy.ALL}"
    )
