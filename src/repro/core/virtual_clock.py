"""Per-connection Virtual Clock state (Zhang, 1991; paper section 3.3).

Virtual Clock regulates each connection's bandwidth share by keeping two
variables per connection, ``auxVC`` and ``Vtick``.  On every arrival::

    auxVC = max(Clock, auxVC)
    auxVC = auxVC + Vtick

and the arrival is stamped with the new ``auxVC``; the scheduler serves
stamps in increasing order.  ``Vtick`` is the negotiated inter-service
interval — the reciprocal of the connection's flit rate — so a stream
that reserved 1% of a link gets a stamp every 100 cycles and cannot
monopolise the multiplexer even when it bursts.

In a wormhole router there is no explicit connection setup: *each
message acts as a connection and each flit as the scheduled unit*.  The
header flit carries ``Vtick``; the state is discarded when the tail flit
leaves the router.

Best-effort traffic has "infinite" slack.  We use a finite but
astronomically large ``Vtick`` (:data:`BEST_EFFORT_VTICK`) so best-effort
flits always lose to real-time flits yet still have a total order among
themselves (earlier arrivals first, approximately round-robin across
messages), which is what an implementation with a saturating timestamp
register would do.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: Vtick assigned to best-effort messages ("infinity" in the paper).
#: Any simulated run is far shorter than 1e12 cycles, so a single
#: best-effort stamp always exceeds every real-time stamp.
BEST_EFFORT_VTICK = 1.0e12


def vtick_for_rate(rate_flits_per_cycle: float) -> float:
    """Vtick (cycles between services) for a flit rate in flits/cycle.

    The paper's example: a message requiring 120 K flits/sec has
    ``Vtick = 1/120K`` seconds; in cycle units this is simply the
    reciprocal of the per-cycle flit rate.
    """
    if rate_flits_per_cycle <= 0:
        raise ConfigurationError(
            f"flit rate must be positive, got {rate_flits_per_cycle}"
        )
    return 1.0 / rate_flits_per_cycle


def vtick_for_fraction(bandwidth_fraction: float) -> float:
    """Vtick for a stream reserving ``bandwidth_fraction`` of a PC.

    A PC moves one flit per cycle, so a stream holding fraction ``f`` of
    the link is entitled to one flit every ``1/f`` cycles.
    """
    if not 0 < bandwidth_fraction <= 1:
        raise ConfigurationError(
            f"bandwidth fraction must be in (0, 1], got {bandwidth_fraction}"
        )
    return 1.0 / bandwidth_fraction


class VirtualClockState:
    """Mutable Virtual Clock register pair for one connection (message).

    The state is embedded in each buffer that feeds a scheduled
    multiplexer.  ``open()`` corresponds to connection setup (header
    acceptance); ``stamp_arrival()`` implements the two-line update
    above; ``close()`` corresponds to the tail flit leaving, after which
    the paper says the Vtick information is discarded.
    """

    __slots__ = ("auxvc", "vtick", "is_open")

    def __init__(self) -> None:
        self.auxvc = 0.0
        self.vtick = BEST_EFFORT_VTICK
        self.is_open = False

    def open(self, clock: float, vtick: float) -> None:
        """Initialise the connection at time ``clock`` with the given Vtick."""
        if vtick <= 0:
            raise ConfigurationError(f"Vtick must be positive, got {vtick}")
        self.auxvc = float(clock)
        self.vtick = vtick
        self.is_open = True

    def stamp_arrival(self, clock: float) -> float:
        """Advance the virtual clock for one arrival and return its stamp."""
        auxvc = self.auxvc
        if clock > auxvc:
            auxvc = clock
        auxvc += self.vtick
        self.auxvc = auxvc
        return auxvc

    def close(self) -> None:
        """Discard the connection state (tail flit departed)."""
        self.is_open = False
        self.auxvc = 0.0
        self.vtick = BEST_EFFORT_VTICK
