"""The paper's primary contribution: rate-based mux scheduling.

The MediaWorm router is a conventional pipelined wormhole router whose
multiplexing scheduler — the policy that decides, each cycle, which
virtual channel's flit gets the shared resource — is replaced by the
rate-based **Virtual Clock** algorithm (Zhang 1991).  This package holds
the scheduler implementations, the per-message Virtual Clock state, the
MediaWorm configuration presets, and the admission-control scheme the
paper's conclusion sketches.
"""

from repro.core.admission import AdmissionController, AdmissionDecision
from repro.core.mediaworm import (
    mediaworm_router_config,
    vanilla_router_config,
)
from repro.core.schedulers import (
    FifoScheduler,
    MuxScheduler,
    RoundRobinScheduler,
    SchedulingPolicy,
    VirtualClockScheduler,
    make_scheduler,
)
from repro.core.virtual_clock import (
    BEST_EFFORT_VTICK,
    VirtualClockState,
    vtick_for_fraction,
    vtick_for_rate,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "BEST_EFFORT_VTICK",
    "FifoScheduler",
    "MuxScheduler",
    "RoundRobinScheduler",
    "SchedulingPolicy",
    "VirtualClockScheduler",
    "VirtualClockState",
    "make_scheduler",
    "mediaworm_router_config",
    "vanilla_router_config",
    "vtick_for_fraction",
    "vtick_for_rate",
]
