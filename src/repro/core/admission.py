"""Admission control for real-time streams.

The paper's conclusion sketches the scheme: "Admission control criteria
... have to consider (for an expected traffic pattern) what is the
maximum load and proportion of VBR to best-effort traffic that will
provide statistically acceptable QoS."  The single-switch results put
that boundary at 70-80% of physical-channel bandwidth for the real-time
component.

:class:`AdmissionController` implements the utilisation-based test: it
tracks the reserved rate on every physical channel a stream's path
crosses (source input link, every inter-router hop, destination output
link) and admits a stream only if each stays at or below the jitter-safe
threshold.  It also enforces the VC-capacity constraint of section 4.2.3
(at most ``threshold / stream_fraction`` concurrent streams per link,
since a VC's bandwidth must cover the sum of its streams' demands).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import AdmissionError, ConfigurationError

#: the paper's empirical jitter-free operating point (section 6)
DEFAULT_RT_THRESHOLD = 0.75

ChannelId = Tuple[str, int, int]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of offering one stream to the controller."""

    admitted: bool
    #: channel that rejected the stream (None when admitted)
    bottleneck: Tuple[ChannelId, float] = None

    def __bool__(self) -> bool:
        return self.admitted


@dataclass
class AdmissionController:
    """Utilisation-based admission control over named channels.

    A *channel* is any bandwidth resource identified by a hashable id —
    the experiment runner uses ``("host-in", node, 0)``,
    ``("host-out", node, 0)`` and ``("link", router, port)``.  Rates are
    fractions of channel bandwidth.
    """

    threshold: float = DEFAULT_RT_THRESHOLD
    _reserved: Dict[ChannelId, float] = field(default_factory=dict)
    _streams: Dict[int, Tuple[float, Tuple[ChannelId, ...]]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if not 0 < self.threshold <= 1:
            raise ConfigurationError(
                f"admission threshold must be in (0, 1], got {self.threshold}"
            )

    def reserved(self, channel: ChannelId) -> float:
        """Current reserved fraction on ``channel``."""
        return self._reserved.get(channel, 0.0)

    def would_admit(
        self, rate_fraction: float, path: Sequence[ChannelId]
    ) -> AdmissionDecision:
        """Check a stream without committing it."""
        if rate_fraction <= 0:
            raise ConfigurationError(
                f"stream rate must be positive, got {rate_fraction}"
            )
        for channel in path:
            after = self._reserved.get(channel, 0.0) + rate_fraction
            if after > self.threshold + 1e-12:
                return AdmissionDecision(False, (channel, after))
        return AdmissionDecision(True)

    def admit(
        self, stream_id: int, rate_fraction: float, path: Sequence[ChannelId]
    ) -> AdmissionDecision:
        """Admit a stream, reserving its rate on every path channel."""
        if stream_id in self._streams:
            raise AdmissionError(f"stream {stream_id} already admitted")
        decision = self.would_admit(rate_fraction, path)
        if not decision:
            return decision
        for channel in path:
            self._reserved[channel] = (
                self._reserved.get(channel, 0.0) + rate_fraction
            )
        self._streams[stream_id] = (rate_fraction, tuple(path))
        return decision

    def release(self, stream_id: int) -> None:
        """Release a previously admitted stream's reservations."""
        try:
            rate, path = self._streams.pop(stream_id)
        except KeyError:
            raise AdmissionError(f"stream {stream_id} was not admitted") from None
        for channel in path:
            remaining = self._reserved.get(channel, 0.0) - rate
            if remaining <= 1e-12:
                self._reserved.pop(channel, None)
            else:
                self._reserved[channel] = remaining

    @property
    def admitted_streams(self) -> List[int]:
        """Ids of currently admitted streams."""
        return list(self._streams)

    def utilization(self) -> Dict[ChannelId, float]:
        """Snapshot of reserved fractions per channel."""
        return dict(self._reserved)
