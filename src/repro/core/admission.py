"""Admission control for real-time streams.

The paper's conclusion sketches the scheme: "Admission control criteria
... have to consider (for an expected traffic pattern) what is the
maximum load and proportion of VBR to best-effort traffic that will
provide statistically acceptable QoS."  The single-switch results put
that boundary at 70-80% of physical-channel bandwidth for the real-time
component.

:class:`AdmissionController` implements the utilisation-based test: it
tracks the reserved rate on every physical channel a stream's path
crosses (source input link, every inter-router hop, destination output
link) and admits a stream only if each stays at or below the jitter-safe
threshold.  It also enforces the VC-capacity constraint of section 4.2.3
(at most ``threshold / stream_fraction`` concurrent streams per link,
since a VC's bandwidth must cover the sum of its streams' demands).

**Degraded mode** (the failover extension): when the link-health
monitor declares a channel's capacity lost, :meth:`degrade` recomputes
the channel's budget against the surviving fraction and sheds admitted
streams — VBR before CBR, mirroring the shed order best-effort → VBR →
CBR (best-effort never holds reservations; the monitor pauses those
sources directly) — until the survivors fit.  Shed streams are parked,
and :meth:`recover` re-admits as many as the restored capacity allows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import AdmissionError, ConfigurationError

#: the paper's empirical jitter-free operating point (section 6)
DEFAULT_RT_THRESHOLD = 0.75

ChannelId = Tuple[str, int, int]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of offering one stream to the controller."""

    admitted: bool
    #: channel that rejected the stream (None when admitted)
    bottleneck: Tuple[ChannelId, float] = None

    def __bool__(self) -> bool:
        return self.admitted


@dataclass
class AdmissionController:
    """Utilisation-based admission control over named channels.

    A *channel* is any bandwidth resource identified by a hashable id —
    the experiment runner uses ``("host-in", node, 0)``,
    ``("host-out", node, 0)`` and ``("link", router, port)``.  Rates are
    fractions of channel bandwidth.
    """

    threshold: float = DEFAULT_RT_THRESHOLD
    _reserved: Dict[ChannelId, float] = field(default_factory=dict)
    _streams: Dict[int, Tuple[float, Tuple[ChannelId, ...], str]] = field(
        default_factory=dict
    )
    #: surviving capacity fraction per channel (absent = 1.0, healthy)
    _capacity: Dict[ChannelId, float] = field(default_factory=dict)
    #: streams shed by degrade(), parked for re-admission on recovery
    _parked: Dict[int, Tuple[float, Tuple[ChannelId, ...], str]] = field(
        default_factory=dict
    )
    streams_shed: int = 0
    streams_readmitted: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.threshold <= 1:
            raise ConfigurationError(
                f"admission threshold must be in (0, 1], got {self.threshold}"
            )

    def reserved(self, channel: ChannelId) -> float:
        """Current reserved fraction on ``channel``."""
        return self._reserved.get(channel, 0.0)

    def would_admit(
        self, rate_fraction: float, path: Sequence[ChannelId]
    ) -> AdmissionDecision:
        """Check a stream without committing it."""
        if rate_fraction <= 0:
            raise ConfigurationError(
                f"stream rate must be positive, got {rate_fraction}"
            )
        for channel in path:
            after = self._reserved.get(channel, 0.0) + rate_fraction
            limit = self.threshold * self._capacity.get(channel, 1.0)
            if after > limit + 1e-12:
                return AdmissionDecision(False, (channel, after))
        return AdmissionDecision(True)

    def admit(
        self,
        stream_id: int,
        rate_fraction: float,
        path: Sequence[ChannelId],
        traffic_class: str = "cbr",
    ) -> AdmissionDecision:
        """Admit a stream, reserving its rate on every path channel.

        ``traffic_class`` orders degraded-mode shedding: VBR streams
        are shed before CBR when capacity is lost.
        """
        if stream_id in self._streams:
            raise AdmissionError(f"stream {stream_id} already admitted")
        decision = self.would_admit(rate_fraction, path)
        if not decision:
            return decision
        for channel in path:
            self._reserved[channel] = (
                self._reserved.get(channel, 0.0) + rate_fraction
            )
        self._streams[stream_id] = (rate_fraction, tuple(path), traffic_class)
        return decision

    def release(self, stream_id: int) -> None:
        """Release a previously admitted stream's reservations."""
        try:
            rate, path, _ = self._streams.pop(stream_id)
        except KeyError:
            raise AdmissionError(f"stream {stream_id} was not admitted") from None
        for channel in path:
            remaining = self._reserved.get(channel, 0.0) - rate
            if remaining <= 1e-12:
                self._reserved.pop(channel, None)
            else:
                self._reserved[channel] = remaining

    # -- degraded mode (failover) --------------------------------------

    def degrade(self, channel: ChannelId, capacity: float) -> List[int]:
        """Capacity on ``channel`` dropped to ``capacity`` (fraction).

        Sheds admitted streams crossing the channel — VBR before CBR,
        newest reservation first within a class — until the survivors
        fit the reduced budget.  Returns the shed stream ids; they stay
        parked for :meth:`recover`.
        """
        if not 0.0 <= capacity <= 1.0:
            raise ConfigurationError(
                f"channel capacity must be in [0, 1], got {capacity}"
            )
        self._capacity[channel] = capacity
        limit = self.threshold * capacity
        shed: List[int] = []
        while self._reserved.get(channel, 0.0) > limit + 1e-12:
            victim = self._pick_victim(channel)
            if victim is None:
                break
            self._parked[victim] = self._streams[victim]
            self.release(victim)
            shed.append(victim)
        self.streams_shed += len(shed)
        return shed

    def _pick_victim(self, channel: ChannelId) -> "int | None":
        """Next stream to shed from ``channel``: VBR first, then CBR."""
        victim = None
        victim_key = None
        for stream_id, (_, path, tclass) in self._streams.items():
            if channel not in path:
                continue
            # (is_cbr, -id): all VBR before any CBR, newest-admitted
            # first within a class so long-held guarantees survive.
            key = (tclass == "cbr", -stream_id)
            if victim_key is None or key < victim_key:
                victim_key = key
                victim = stream_id
        return victim

    def recover(self, channel: ChannelId) -> List[int]:
        """``channel`` is healthy again: restore its full budget.

        Re-admits parked streams that now fit (CBR first, then VBR, in
        admission order); streams blocked by capacity still lost
        elsewhere stay parked.  Returns the re-admitted stream ids.
        """
        self._capacity.pop(channel, None)
        readmitted: List[int] = []
        order = sorted(
            self._parked,
            key=lambda s: (self._parked[s][2] != "cbr", s),
        )
        for stream_id in order:
            rate, path, tclass = self._parked[stream_id]
            if self.would_admit(rate, path):
                for chan in path:
                    self._reserved[chan] = (
                        self._reserved.get(chan, 0.0) + rate
                    )
                self._streams[stream_id] = (rate, path, tclass)
                readmitted.append(stream_id)
        for stream_id in readmitted:
            del self._parked[stream_id]
        self.streams_readmitted += len(readmitted)
        return readmitted

    @property
    def shed_streams(self) -> List[int]:
        """Ids of streams currently shed (degraded mode), sorted."""
        return sorted(self._parked)

    @property
    def admitted_streams(self) -> List[int]:
        """Ids of currently admitted streams."""
        return list(self._streams)

    def utilization(self) -> Dict[ChannelId, float]:
        """Snapshot of reserved fractions per channel."""
        return dict(self._reserved)
