"""MediaWorm router presets.

The paper's proposal is deliberately minimal: take a conventional
pipelined wormhole router and swap the rate-agnostic multiplexer
scheduler (FIFO) for Virtual Clock at the QoS contention point —
the crossbar input multiplexer for a multiplexed crossbar, the output
VC multiplexer for a full crossbar.  These helpers capture the two
configurations the evaluation compares.
"""

from __future__ import annotations

from typing import Optional

from repro.core.schedulers import SchedulingPolicy
from repro.router.config import CrossbarKind, RouterConfig


def mediaworm_router_config(
    num_ports: int = 8,
    vcs_per_pc: int = 16,
    crossbar: str = CrossbarKind.MULTIPLEXED,
    rt_vc_count: Optional[int] = None,
    flit_buffer_depth: int = 8,
    **overrides,
) -> RouterConfig:
    """The MediaWorm router: Virtual Clock at the QoS contention point."""
    return RouterConfig(
        num_ports=num_ports,
        vcs_per_pc=vcs_per_pc,
        crossbar=crossbar,
        qos_policy=SchedulingPolicy.VIRTUAL_CLOCK,
        rt_vc_count=rt_vc_count,
        flit_buffer_depth=flit_buffer_depth,
        **overrides,
    )


def vanilla_router_config(
    num_ports: int = 8,
    vcs_per_pc: int = 16,
    crossbar: str = CrossbarKind.MULTIPLEXED,
    rt_vc_count: Optional[int] = None,
    flit_buffer_depth: int = 8,
    scheduler: str = SchedulingPolicy.FIFO,
    **overrides,
) -> RouterConfig:
    """A conventional wormhole router (FIFO or round-robin scheduling)."""
    return RouterConfig(
        num_ports=num_ports,
        vcs_per_pc=vcs_per_pc,
        crossbar=crossbar,
        qos_policy=scheduler,
        rt_vc_count=rt_vc_count,
        flit_buffer_depth=flit_buffer_depth,
        **overrides,
    )
