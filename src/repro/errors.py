"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of range."""


class FaultConfigError(ConfigurationError):
    """A fault-injection plan is inconsistent or names unknown hardware."""


class EngineError(ConfigurationError):
    """An unknown or incompatible simulation engine was requested.

    Raised at :class:`repro.network.network.Network` construction for
    engine names outside :data:`repro.sim.engine.ENGINES` and for
    contradictory selections (the array engine together with
    ``REPRO_LEGACY_LOOP=1``, which pins the legacy full-scan loop).
    """


class PortCountError(ConfigurationError):
    """RouterConfig.num_ports disagrees with the topology's port count.

    Every router port is wired at network construction, so a mismatched
    ``num_ports`` silently over- or under-provisions VC buffers and
    skews per-port metrics.  The network refuses the pair instead of
    adapting; build the config with
    ``num_ports=topology.ports_per_router``.
    """


class SimulationError(ReproError):
    """The simulation reached an internally inconsistent state."""


class DeadlockError(SimulationError):
    """The watchdog saw no progress while flits were still in flight.

    Carries a diagnostic dump of every occupied virtual channel so the
    wedged routers/VCs can be identified from the exception alone.
    """


class RoutingError(SimulationError):
    """A message could not be routed (unknown destination, bad port)."""


class FlowControlError(SimulationError):
    """A credit or buffer invariant was violated."""


class InvariantViolation(SimulationError):
    """An observability-layer invariant check failed.

    Raised by :class:`repro.obs.InvariantChecker` (flit conservation,
    credit consistency, monotone worm progress) and by trace-event
    schema validation; carries enough context to name the offending
    message/link/router.
    """


class AdmissionError(ReproError):
    """A stream was offered to a full admission controller."""


class PointTimeoutError(SimulationError):
    """A sweep point exceeded its wall-clock budget.

    Raised from inside the point's own worker (SIGALRM-based, see
    :func:`repro.experiments.resilience.wall_clock_limit`), so a hung
    simulation interrupts itself instead of stalling the campaign.
    """


class ChaosFailure(SimulationError):
    """A chaos-campaign scenario failed one of its oracles.

    Carries the oracle name and the scenario key so a campaign report
    (or a replayed repro file) can state *which* property broke, not
    just that something did.
    """

    def __init__(self, oracle: str, key: str, detail: str) -> None:
        super().__init__(f"[{oracle}] scenario {key}: {detail}")
        self.oracle = oracle
        self.key = key
        self.detail = detail
