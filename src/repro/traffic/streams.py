"""Real-time (VBR/CBR) stream sources.

A stream is a long-lived flow between one source-destination pair.
Every ``frame_interval`` cycles it emits one video frame, packetised
into fixed-size messages that are injected evenly across the frame
interval (paper: 20-flit messages, 200 to a frame, one every 165 us).
All messages of a stream use the stream's pre-drawn source and
destination VCs and carry the stream's Vtick in their header.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.router.flit import TrafficClass, messages_for_frame
from repro.traffic.mpeg import FrameSizeModel

_stream_ids = itertools.count()


@dataclass
class StreamConfig:
    """Static description of one VBR/CBR stream."""

    src_node: int
    dst_node: int
    src_vc: int
    dst_vc: int
    vtick: float
    message_size: int
    frame_interval: int
    frame_model: FrameSizeModel
    traffic_class: str = TrafficClass.VBR
    #: injection phase offset in cycles (decorrelates streams)
    phase: int = 0
    #: per-message header flits riding on top of frame payload
    header_flits: int = 0

    def __post_init__(self) -> None:
        if self.traffic_class not in TrafficClass.REAL_TIME:
            raise ConfigurationError(
                f"stream class must be VBR or CBR, got {self.traffic_class!r}"
            )
        if self.frame_interval < 1:
            raise ConfigurationError(
                f"frame interval must be >= 1 cycle, got {self.frame_interval}"
            )
        if self.message_size < 1:
            raise ConfigurationError(
                f"message size must be >= 1 flit, got {self.message_size}"
            )
        if not 0 <= self.phase < self.frame_interval:
            raise ConfigurationError(
                f"phase must be in [0, frame_interval), got {self.phase}"
            )


class MediaStream:
    """Self-scheduling VBR/CBR source.

    ``start(network)`` schedules the first frame; each frame event
    packetises itself and schedules its message injections plus the next
    frame event, so the network's event heap drives the whole stream.
    """

    def __init__(self, config: StreamConfig, rng: random.Random) -> None:
        self.config = config
        self.rng = rng
        self.stream_id = next(_stream_ids)
        self.frames_emitted = 0
        #: True while failover shed this session (endpoint isolated)
        self.paused = False
        #: frames skipped while paused (availability accounting)
        self.frames_suppressed = 0
        self._network = None

    def start(self, network) -> None:
        """Register with ``network`` and schedule the first frame."""
        self._network = network
        first = network.clock + self.config.phase
        network.schedule_call(first, self._emit_frame)

    def pause(self) -> None:
        """Stop emitting frames (the frame clock keeps ticking).

        Used by the failover layer when an endpoint becomes isolated:
        the session is shed instead of pumping messages at a host that
        can never acknowledge them.  The per-frame callback stays
        scheduled — only the frame draw and its injections are
        suppressed — so the stream's RNG is untouched while paused and
        a later :meth:`resume` picks up on the original cadence.
        """
        self.paused = True

    def resume(self) -> None:
        """Start emitting frames again at the next frame tick."""
        self.paused = False

    def _emit_frame(self) -> None:
        network = self._network
        cfg = self.config
        now = network.clock
        if self.paused:
            self.frames_suppressed += 1
            network.schedule_call(now + cfg.frame_interval, self._emit_frame)
            return
        frame_flits = cfg.frame_model.draw(self.rng)
        messages = messages_for_frame(
            frame_flits=frame_flits,
            message_size=cfg.message_size,
            src_node=cfg.src_node,
            dst_node=cfg.dst_node,
            vtick=cfg.vtick,
            traffic_class=cfg.traffic_class,
            stream_id=self.stream_id,
            frame_id=self.frames_emitted,
            src_vc=cfg.src_vc,
            dst_vc=cfg.dst_vc,
            header_flits=cfg.header_flits,
        )
        # Spread message injections evenly across the frame interval
        # (paper section 4.2.1).  Injections are aligned to the *end* of
        # the interval so the last message of every frame is offered at
        # frame_start + interval regardless of how many messages the
        # frame packetised into; otherwise the (n-1)/n quantisation of
        # variable-size frames would register as delivery jitter that no
        # network could remove (negligible at 200 messages/frame, large
        # at scaled-down frame sizes).
        spacing = cfg.frame_interval / len(messages)
        for j, msg in enumerate(messages):
            network.schedule_message(now + int((j + 1) * spacing), msg)
        self.frames_emitted += 1
        network.schedule_call(now + cfg.frame_interval, self._emit_frame)

    @property
    def rate_fraction(self) -> float:
        """Mean fraction of a PC this stream consumes."""
        return self.config.frame_model.mean_flits / self.config.frame_interval

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cfg = self.config
        return (
            f"MediaStream(id={self.stream_id}, {cfg.src_node}->{cfg.dst_node}, "
            f"class={cfg.traffic_class}, vc={cfg.src_vc}->{cfg.dst_vc})"
        )
