"""Trace-driven frame sources.

The multimedia-router studies the paper compares against ([3], [10])
evaluate with recorded MPEG-2 frame-size traces instead of statistical
models.  This module provides the same capability:

* :class:`TraceFrameModel` — a drop-in replacement for
  :class:`~repro.traffic.mpeg.FrameSizeModel` that replays a recorded
  sequence of frame sizes (looping), so :class:`MediaStream` works
  unchanged;
* :func:`load_frame_trace` / :func:`save_frame_trace` — one frame size
  per line, ``#`` comments allowed;
* :func:`generate_mpeg2_gop_trace` — a synthetic trace with MPEG-2
  group-of-pictures structure (large I frames, medium P, small B),
  which is burstier than the paper's normal model and useful for
  stress-testing the Virtual Clock pacing.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import List, Sequence, Union

from repro.errors import ConfigurationError
from repro.traffic.mpeg import FrameSizeModel

#: canonical MPEG-2 GOP pattern (15 frames, N=15 M=3)
DEFAULT_GOP_PATTERN = "IBBPBBPBBPBBPBB"

#: relative frame sizes by picture type (I largest, B smallest); the
#: absolute scale is set by the requested mean
GOP_TYPE_WEIGHTS = {"I": 2.5, "P": 1.2, "B": 0.6}


class TraceFrameModel(FrameSizeModel):
    """Replays a recorded frame-size trace, looping past the end."""

    def __init__(self, sizes: Sequence[int]) -> None:
        sizes = [int(s) for s in sizes]
        if not sizes:
            raise ConfigurationError("frame trace must be non-empty")
        if any(s < 1 for s in sizes):
            raise ConfigurationError("frame trace sizes must be >= 1 flit")
        mean = sum(sizes) / len(sizes)
        variance = sum((s - mean) ** 2 for s in sizes) / len(sizes)
        super().__init__(mean_flits=mean, std_flits=variance ** 0.5)
        self.sizes: List[int] = sizes
        self._cursor = 0

    def draw(self, rng: random.Random) -> int:
        """Next trace entry; the RNG is unused (traces are determined)."""
        size = self.sizes[self._cursor]
        self._cursor = (self._cursor + 1) % len(self.sizes)
        return size

    @property
    def is_constant(self) -> bool:
        first = self.sizes[0]
        return all(s == first for s in self.sizes)

    def rewind(self) -> None:
        """Restart the trace from its first frame."""
        self._cursor = 0


def load_frame_trace(path: Union[str, Path]) -> List[int]:
    """Read a frame-size trace: one positive integer per line.

    Blank lines and ``#``-prefixed comments are ignored.
    """
    sizes: List[int] = []
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            size = int(line)
        except ValueError:
            raise ConfigurationError(
                f"{path}:{lineno}: not an integer frame size: {line!r}"
            ) from None
        if size < 1:
            raise ConfigurationError(
                f"{path}:{lineno}: frame size must be >= 1, got {size}"
            )
        sizes.append(size)
    if not sizes:
        raise ConfigurationError(f"{path}: trace contains no frames")
    return sizes


def save_frame_trace(path: Union[str, Path], sizes: Sequence[int]) -> None:
    """Write a frame-size trace in the format ``load_frame_trace`` reads."""
    if not sizes:
        raise ConfigurationError("refusing to write an empty trace")
    lines = ["# frame sizes in flits, one per frame"]
    lines.extend(str(int(s)) for s in sizes)
    Path(path).write_text("\n".join(lines) + "\n")


def generate_mpeg2_gop_trace(
    frames: int,
    mean_flits: float,
    rng: random.Random,
    pattern: str = DEFAULT_GOP_PATTERN,
    noise: float = 0.1,
) -> List[int]:
    """Synthesize a GOP-structured MPEG-2 trace with the given mean.

    Frame sizes follow the I/P/B weights of ``pattern`` scaled so the
    long-run mean is ``mean_flits``, with multiplicative Gaussian noise
    of relative magnitude ``noise`` per frame.
    """
    if frames < 1:
        raise ConfigurationError(f"need >= 1 frame, got {frames}")
    if not pattern or any(ch not in GOP_TYPE_WEIGHTS for ch in pattern):
        raise ConfigurationError(
            f"pattern must use letters {sorted(GOP_TYPE_WEIGHTS)}, "
            f"got {pattern!r}"
        )
    if not 0 <= noise < 1:
        raise ConfigurationError(f"noise must be in [0, 1), got {noise}")
    pattern_mean = sum(GOP_TYPE_WEIGHTS[ch] for ch in pattern) / len(pattern)
    sizes: List[int] = []
    for index in range(frames):
        weight = GOP_TYPE_WEIGHTS[pattern[index % len(pattern)]]
        size = mean_flits * weight / pattern_mean
        if noise:
            size *= max(0.1, rng.gauss(1.0, noise))
        sizes.append(max(1, round(size)))
    return sizes
