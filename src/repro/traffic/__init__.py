"""Workload generation: MPEG-2 VBR/CBR streams, best-effort, mixes.

Implements section 4.2 of the paper: VBR streams with Normal(16666 B,
3333 B) frame sizes every 33 ms (4 Mbps mean), CBR streams with constant
frames, best-effort messages of 20 flits at a constant rate to uniform
random destinations, and the x:y traffic mixes with statically
partitioned virtual channels.
"""

from repro.traffic.besteffort import BestEffortConfig, BestEffortSource
from repro.traffic.mix import (
    TrafficMix,
    Workload,
    WorkloadConfig,
    build_workload,
    rt_vc_count,
)
from repro.traffic.mpeg import FrameSizeModel, cbr_frame_model, vbr_frame_model
from repro.traffic.streams import MediaStream, StreamConfig
from repro.traffic.trace import (
    TraceFrameModel,
    generate_mpeg2_gop_trace,
    load_frame_trace,
    save_frame_trace,
)

__all__ = [
    "BestEffortConfig",
    "BestEffortSource",
    "FrameSizeModel",
    "MediaStream",
    "StreamConfig",
    "TraceFrameModel",
    "TrafficMix",
    "Workload",
    "WorkloadConfig",
    "build_workload",
    "cbr_frame_model",
    "generate_mpeg2_gop_trace",
    "load_frame_trace",
    "rt_vc_count",
    "save_frame_trace",
    "vbr_frame_model",
]
