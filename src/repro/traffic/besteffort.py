"""Best-effort traffic sources (paper section 4.2.2).

Each node emits fixed-length (20-flit) messages at a constant injection
rate; destinations are drawn uniformly over the other nodes, and the
source and destination VCs are drawn uniformly over the VCs allocated
to the best-effort class.  Best-effort messages carry the "infinite"
Vtick, so a Virtual Clock scheduler always defers them to real-time
flits.

An optional Poisson mode replaces the constant spacing with exponential
inter-arrivals at the same mean rate (used by robustness studies; the
paper's experiments use the constant-rate process).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.core.virtual_clock import BEST_EFFORT_VTICK
from repro.errors import ConfigurationError
from repro.router.flit import Message, TrafficClass


@dataclass
class BestEffortConfig:
    """Static description of one node's best-effort source."""

    src_node: int
    dst_nodes: Sequence[int]
    vcs: Sequence[int]
    message_size: int
    #: fraction of the input link's bandwidth this source offers
    rate_fraction: float
    #: "deterministic" (constant spacing) or "poisson"
    process: str = "deterministic"
    phase: int = 0

    def __post_init__(self) -> None:
        if not self.dst_nodes:
            raise ConfigurationError("best-effort source needs destinations")
        if not self.vcs:
            raise ConfigurationError("best-effort source needs at least one VC")
        if self.message_size < 1:
            raise ConfigurationError(
                f"message size must be >= 1 flit, got {self.message_size}"
            )
        if not 0 < self.rate_fraction <= 1:
            raise ConfigurationError(
                f"rate fraction must be in (0, 1], got {self.rate_fraction}"
            )
        if self.process not in ("deterministic", "poisson"):
            raise ConfigurationError(
                f"process must be deterministic or poisson, got {self.process!r}"
            )
        if self.phase < 0:
            raise ConfigurationError(f"phase must be >= 0, got {self.phase}")

    @property
    def mean_interval(self) -> float:
        """Mean cycles between message injections."""
        return self.message_size / self.rate_fraction


class BestEffortSource:
    """Self-scheduling best-effort message source for one node."""

    def __init__(self, config: BestEffortConfig, rng: random.Random) -> None:
        self.config = config
        self.rng = rng
        self.messages_emitted = 0
        #: messages suppressed while paused (graceful degradation)
        self.messages_shed = 0
        #: set by the link-health monitor while capacity is lost
        self.paused = False
        self._network = None
        self._next_time = 0.0

    def start(self, network) -> None:
        """Register with ``network`` and schedule the first message."""
        self._network = network
        self._next_time = float(network.clock + self.config.phase)
        network.schedule_call(int(self._next_time), self._emit)

    def _interval(self) -> float:
        mean = self.config.mean_interval
        if self.config.process == "poisson":
            return self.rng.expovariate(1.0 / mean)
        return mean

    def pause(self) -> None:
        """Shed offered load: emissions are counted, not injected."""
        self.paused = True

    def resume(self) -> None:
        """Resume injecting at the configured rate."""
        self.paused = False

    def _emit(self) -> None:
        network = self._network
        cfg = self.config
        rng = self.rng
        if self.paused:
            # Keep the emission clock ticking so the source resumes on
            # its own schedule, but shed the message itself.
            self.messages_shed += 1
            self._next_time = max(self._next_time, float(network.clock))
            self._next_time += self._interval()
            network.schedule_call(
                max(network.clock + 1, int(self._next_time)), self._emit
            )
            return
        dst = rng.choice(cfg.dst_nodes)
        msg = Message(
            src_node=cfg.src_node,
            dst_node=dst,
            size=cfg.message_size,
            vtick=BEST_EFFORT_VTICK,
            traffic_class=TrafficClass.BEST_EFFORT,
            src_vc=rng.choice(cfg.vcs),
            dst_vc=rng.choice(cfg.vcs),
        )
        network.inject_now(msg)
        self.messages_emitted += 1
        # Track fractional spacing exactly so the long-run rate matches
        # the configured fraction even for non-integer intervals.
        self._next_time = max(self._next_time, float(network.clock))
        self._next_time += self._interval()
        network.schedule_call(
            max(network.clock + 1, int(self._next_time)), self._emit
        )
