"""MPEG-2 frame-size models (paper section 4.2.1).

VBR traffic draws each frame's size from a normal distribution with a
mean of 16,666 bytes and a standard deviation of 3,333 bytes at a 33 ms
inter-frame interval — a mean rate of 500 KB/s (4 Mbps).  CBR traffic
is identical except the frame size is constant at the mean.

Sizes are produced directly in (scaled) flits; draws are clamped to at
least one flit so a pathological tail sample can never produce an empty
frame.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.errors import ConfigurationError


class FrameSizeModel:
    """Generates per-frame sizes in flits."""

    def __init__(
        self,
        mean_flits: float,
        std_flits: float,
        sampler: Callable[[random.Random, float, float], float] = None,
    ) -> None:
        if mean_flits < 1:
            raise ConfigurationError(
                f"mean frame size must be >= 1 flit, got {mean_flits}"
            )
        if std_flits < 0:
            raise ConfigurationError(
                f"frame size std must be >= 0, got {std_flits}"
            )
        self.mean_flits = mean_flits
        self.std_flits = std_flits
        self._sampler = sampler or self._default_sampler

    @staticmethod
    def _default_sampler(rng: random.Random, mean: float, std: float) -> float:
        if std == 0:
            return mean
        return rng.gauss(mean, std)

    def draw(self, rng: random.Random) -> int:
        """One frame size in whole flits (always >= 1)."""
        size = self._sampler(rng, self.mean_flits, self.std_flits)
        return max(1, round(size))

    @property
    def is_constant(self) -> bool:
        """True for CBR-style constant frames."""
        return self.std_flits == 0


def vbr_frame_model(mean_flits: float, std_flits: float) -> FrameSizeModel:
    """The paper's VBR model: normally distributed frame sizes."""
    return FrameSizeModel(mean_flits, std_flits)


def cbr_frame_model(mean_flits: float) -> FrameSizeModel:
    """The paper's CBR model: constant frames at the VBR mean."""
    return FrameSizeModel(mean_flits, 0.0)
