"""Traffic mixes: offered load split between real-time and best-effort.

Section 4.2.3 of the paper: the input load is a fraction of the
physical link bandwidth; a mix ``x:y`` assigns ``x/(x+y)`` of that load
to VBR/CBR streams and the rest to best-effort.  The same fraction of
the virtual channels is statically reserved for real-time traffic.

``build_workload`` turns a :class:`WorkloadConfig` into live sources
attached to a network: per node, ``round(load * rt_fraction /
stream_fraction)`` media streams (each stream is 4 Mbps, i.e. 1% of a
400 Mbps link) and one best-effort source carrying the remaining load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.virtual_clock import vtick_for_fraction
from repro.errors import ConfigurationError
from repro.router.flit import TrafficClass
from repro.sim.rng import RngStreams
from repro.sim.units import (
    MPEG2_FRAME_BYTES_MEAN,
    MPEG2_FRAME_BYTES_STD,
    MPEG2_FRAME_INTERVAL_MS,
    LinkSpec,
    WorkloadScale,
)
from repro.traffic.besteffort import BestEffortConfig, BestEffortSource
from repro.traffic.mpeg import FrameSizeModel
from repro.traffic.streams import MediaStream, StreamConfig


@dataclass(frozen=True)
class TrafficMix:
    """An ``x:y`` real-time to best-effort proportion."""

    rt: float
    be: float

    def __post_init__(self) -> None:
        if self.rt < 0 or self.be < 0 or self.rt + self.be == 0:
            raise ConfigurationError(f"invalid mix {self.rt}:{self.be}")

    @property
    def rt_fraction(self) -> float:
        """Fraction of the offered load that is real-time."""
        return self.rt / (self.rt + self.be)

    def __str__(self) -> str:
        return f"{self.rt:g}:{self.be:g}"


def rt_vc_count(vcs_per_pc: int, mix: TrafficMix) -> int:
    """VCs reserved for real-time traffic under static partitioning.

    ``x/(x+y)`` of the VCs go to VBR/CBR (section 4.2.3), with at least
    one VC left for whichever class actually carries load.
    """
    fraction = mix.rt_fraction
    count = round(vcs_per_pc * fraction)
    if fraction > 0:
        count = max(count, 1)
    if fraction < 1:
        count = min(count, vcs_per_pc - 1)
    if fraction == 0:
        count = 0
    return count


@dataclass
class WorkloadConfig:
    """Everything needed to offer a paper-style traffic mix."""

    link: LinkSpec = field(default_factory=LinkSpec)
    scale: WorkloadScale = field(default_factory=WorkloadScale)
    load: float = 0.8
    mix: TrafficMix = field(default_factory=lambda: TrafficMix(80, 20))
    rt_class: str = TrafficClass.VBR
    message_size: int = 20
    frame_interval_ms: float = MPEG2_FRAME_INTERVAL_MS
    frame_bytes_mean: float = MPEG2_FRAME_BYTES_MEAN
    frame_bytes_std: float = MPEG2_FRAME_BYTES_STD
    be_message_size: int = 20
    be_process: str = "deterministic"
    #: per-message header flits on real-time messages, carried on the
    #: wire on top of the frame payload (the Fig. 7 overhead: "1 header
    #: flit in a message size of 20 flits consumes 5% of the stream
    #: bandwidth").  ``load`` counts frame payload; headers ride on top.
    header_flits: int = 0
    #: when True (default), stream destinations are assigned by a
    #: shuffled round-robin so every node sinks the same number of
    #: streams.  The marginal distribution stays uniform (as in the
    #: paper), but the binomial imbalance of fully independent draws —
    #: which can push one output link's real-time load past the point
    #: where best-effort starves — is removed.  Set False for i.i.d.
    #: destination draws.
    balanced_destinations: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.load <= 1.5:
            raise ConfigurationError(
                f"load must be in (0, 1.5], got {self.load}"
            )
        if self.rt_class not in TrafficClass.REAL_TIME:
            raise ConfigurationError(
                f"rt_class must be VBR or CBR, got {self.rt_class!r}"
            )
        if not 0 <= self.header_flits < self.message_size:
            raise ConfigurationError(
                f"header_flits must be in [0, message_size), got "
                f"{self.header_flits}"
            )

    # -- derived, in scaled simulation units ---------------------------

    @property
    def frame_interval_cycles(self) -> int:
        """Scaled inter-frame interval in cycles."""
        cycles = self.scale.scale_cycles(
            self.link.ms_to_cycles(self.frame_interval_ms)
        )
        return max(1, round(cycles))

    @property
    def frame_mean_flits(self) -> float:
        """Scaled mean frame size in flits."""
        return self.scale.scale_flits(self.link.bytes_to_flits(self.frame_bytes_mean))

    @property
    def frame_std_flits(self) -> float:
        """Scaled frame size standard deviation in flits."""
        return self.scale.scale_flits(self.link.bytes_to_flits(self.frame_bytes_std))

    @property
    def stream_fraction(self) -> float:
        """Fraction of a PC's bandwidth one stream consumes on average."""
        return self.frame_mean_flits / self.frame_interval_cycles

    @property
    def rt_load(self) -> float:
        """Real-time share of the offered input-link load."""
        return self.load * self.mix.rt_fraction

    @property
    def be_load(self) -> float:
        """Best-effort share of the offered input-link load."""
        return self.load * (1.0 - self.mix.rt_fraction)

    def streams_per_node(self) -> int:
        """Number of media streams each node sources."""
        return round(self.rt_load / self.stream_fraction)

    def frame_model(self) -> FrameSizeModel:
        """The frame-size model for the configured real-time class."""
        if self.rt_class == TrafficClass.CBR:
            return FrameSizeModel(self.frame_mean_flits, 0.0)
        return FrameSizeModel(self.frame_mean_flits, self.frame_std_flits)


@dataclass
class Workload:
    """Live sources attached to a network, plus accounting."""

    config: WorkloadConfig
    streams: List[MediaStream]
    besteffort: List[BestEffortSource]
    streams_per_node: int
    achieved_rt_load: float
    achieved_be_load: float

    @property
    def achieved_load(self) -> float:
        """Offered input-link load actually realised after rounding."""
        return self.achieved_rt_load + self.achieved_be_load

    @property
    def stream_ids(self) -> List[int]:
        """Ids of every media stream in the workload."""
        return [s.stream_id for s in self.streams]


def build_workload(
    network,
    config: WorkloadConfig,
    rngs: Optional[RngStreams] = None,
    start: bool = True,
) -> Workload:
    """Create and (optionally) start the paper's workload on ``network``.

    VC choices respect the network's static partition
    (``network.config.rt_vc_count``): stream source/destination VCs are
    drawn from the real-time partition, best-effort VCs from the rest.
    """
    rngs = rngs or RngStreams(0)
    router_config = network.config
    rt_vcs = list(router_config.vc_range_for_class(True))
    be_vcs = list(router_config.vc_range_for_class(False))
    nodes = network.topology.node_ids
    if len(nodes) < 2:
        raise ConfigurationError("workload needs at least two hosts")

    per_node = config.streams_per_node()
    if per_node > 0 and not rt_vcs:
        raise ConfigurationError(
            "workload offers real-time streams but no VC is reserved for "
            "real-time traffic"
        )
    if config.be_load > 1e-9 and not be_vcs:
        raise ConfigurationError(
            "workload offers best-effort traffic but no VC is available "
            "for it"
        )

    streams: List[MediaStream] = []
    sources: List[BestEffortSource] = []
    interval = config.frame_interval_cycles
    vtick = vtick_for_fraction(config.stream_fraction)
    model = config.frame_model()

    for node in nodes:
        node_rng = rngs.stream(f"node{node}/placement")
        others = [n for n in nodes if n != node]
        if config.balanced_destinations:
            rotation = list(others)
            node_rng.shuffle(rotation)
        for k in range(per_node):
            stream_rng = rngs.stream(f"node{node}/stream{k}")
            if config.balanced_destinations:
                destination = rotation[k % len(rotation)]
            else:
                destination = node_rng.choice(others)
            stream = MediaStream(
                StreamConfig(
                    src_node=node,
                    dst_node=destination,
                    src_vc=node_rng.choice(rt_vcs),
                    dst_vc=node_rng.choice(rt_vcs),
                    vtick=vtick,
                    message_size=config.message_size,
                    frame_interval=interval,
                    frame_model=model,
                    traffic_class=config.rt_class,
                    phase=node_rng.randrange(interval),
                    header_flits=config.header_flits,
                ),
                stream_rng,
            )
            streams.append(stream)
        if config.be_load > 1e-9:
            source = BestEffortSource(
                BestEffortConfig(
                    src_node=node,
                    dst_nodes=others,
                    vcs=be_vcs,
                    message_size=config.be_message_size,
                    rate_fraction=config.be_load,
                    process=config.be_process,
                    phase=node_rng.randrange(
                        max(1, int(config.be_message_size / config.be_load))
                    ),
                ),
                rngs.stream(f"node{node}/besteffort"),
            )
            sources.append(source)

    if start:
        for stream in streams:
            stream.start(network)
        for source in sources:
            source.start(network)

    return Workload(
        config=config,
        streams=streams,
        besteffort=sources,
        streams_per_node=per_node,
        achieved_rt_load=per_node * config.stream_fraction,
        achieved_be_load=config.be_load if sources else 0.0,
    )
