"""The PCS router simulation (paper sections 3.5 and 5.6).

The data phase reuses the flit-level substrate with a configuration
that captures what a circuit means:

* every established stream holds a **dedicated VC** on its source input
  link and destination output link (one stream per VC, as PCS requires);
* routing and arbitration delays are zero — the path was set up by the
  probe, so data flits never wait on per-message decisions;
* the physical-channel multiplexers run Virtual Clock with the rate
  negotiated at setup (the connection's Vtick), which is the bandwidth
  reservation a PCS router enforces.

Connection setup, NACKs, retries and drop accounting live in
:class:`repro.pcs.connection.ConnectionManager`; this module drives
stream arrivals against it and starts the data phase of each circuit
once its probe/ack round-trip completes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.schedulers import SchedulingPolicy
from repro.core.virtual_clock import vtick_for_fraction
from repro.errors import ConfigurationError
from repro.metrics.collector import MetricsCollector
from repro.network.network import Network
from repro.network.topology import Topology, single_switch
from repro.pcs.connection import ConnectionManager
from repro.router.config import RouterConfig
from repro.sim.rng import RngStreams
from repro.traffic.streams import MediaStream, StreamConfig


class _OfferedStream:
    """One stream's lifecycle: arrival, setup attempts, data phase."""

    __slots__ = (
        "index",
        "src_node",
        "dst_node",
        "retries_left",
        "stream",
    )

    def __init__(
        self, index: int, src_node: int, dst_node: int, retries: int
    ) -> None:
        self.index = index
        self.src_node = src_node
        self.dst_node = dst_node
        self.retries_left = retries
        self.stream: Optional[MediaStream] = None


class PCSSimulator:
    """PCS simulation: the paper's single switch, or any topology.

    The circuit path is: the source's input link, every inter-router
    physical channel the deterministic route crosses (fat groups take
    their first candidate link — a circuit cannot rebalance per
    message), and the destination's output link.  Source and
    destination VCs are drawn uniformly per attempt; intermediate links
    reserve whichever VC the manager hands out (one per circuit).
    """

    def __init__(
        self,
        experiment,
        collector: MetricsCollector,
        topology: Optional[Topology] = None,
    ) -> None:
        self.experiment = experiment
        self.collector = collector
        self.rngs = RngStreams(experiment.seed)

        topology = topology or single_switch(experiment.num_ports)
        self.topology = topology
        config = RouterConfig(
            num_ports=topology.ports_per_router,
            vcs_per_pc=experiment.vcs_per_pc,
            flit_buffer_depth=experiment.flit_buffer_depth,
            crossbar=experiment.crossbar,
            qos_policy=SchedulingPolicy.VIRTUAL_CLOCK,
            rt_vc_count=None,
            routing_delay=0,
            arbitration_delay=0,
        )
        self.network = Network(
            topology,
            config,
            on_message=collector.on_message,
            engine=getattr(experiment, "engine", "object"),
        )
        self._host_router = {node: rid for node, rid, _ in topology.hosts}
        self._channel_dest = {
            (src_r, src_p): dst_r
            for src_r, src_p, dst_r, _ in topology.channels
        }
        self.manager = ConnectionManager()
        for node in topology.node_ids:
            self.manager.add_channel(("host-in", node), experiment.vcs_per_pc)
            self.manager.add_channel(("host-out", node), experiment.vcs_per_pc)
        for src_r, src_p, _, _ in topology.channels:
            self.manager.add_channel(("link", src_r, src_p), experiment.vcs_per_pc)

        self.workload = experiment.workload_config()
        if self.workload.mix.rt_fraction < 1.0:
            raise ConfigurationError(
                "the PCS study carries real-time streams only; "
                "use mix=(100, 0)"
            )
        self.offered: List[_OfferedStream] = []
        self.streams: List[MediaStream] = []
        self._build_arrivals()

    def circuit_channels(self, src_node: int, dst_node: int):
        """Inter-router channels of the deterministic circuit path."""
        channels = []
        router = self._host_router[src_node]
        dst_router = self._host_router[dst_node]
        hops = 0
        while router != dst_router:
            ports = self.topology.routing.candidates(router, dst_node)
            port = ports[0]
            channels.append(("link", router, port))
            router = self._channel_dest[(router, port)]
            hops += 1
            if hops > self.topology.num_routers:
                raise ConfigurationError(
                    f"routing loop from node {src_node} to {dst_node}"
                )
        return channels

    # ------------------------------------------------------------------

    def _build_arrivals(self) -> None:
        exp = self.experiment
        interval = self.workload.frame_interval_cycles
        window = max(1, exp.arrival_window_frames * interval)
        per_node = self.workload.streams_per_node()
        nodes = self.network.topology.node_ids
        index = 0
        for node in nodes:
            rng = self.rngs.stream(f"pcs/node{node}/arrivals")
            others = [n for n in nodes if n != node]
            for _ in range(per_node):
                offered = _OfferedStream(
                    index=index,
                    src_node=node,
                    dst_node=rng.choice(others),
                    retries=exp.max_retries,
                )
                index += 1
                self.offered.append(offered)
                arrival = rng.randrange(window)
                self.network.schedule_call(
                    arrival, lambda o=offered: self._attempt_setup(o)
                )

    def _attempt_setup(self, offered: _OfferedStream) -> None:
        exp = self.experiment
        # Each attempt draws fresh source and destination VCs from a
        # uniform distribution (section 4.2.1); the probe NACKs when a
        # drawn VC is already reserved by another circuit, which is the
        # dominant drop mechanism of Table 3.
        rng = self.rngs.stream(f"pcs/vcdraw{offered.index}")
        requests = [
            (("host-in", offered.src_node), rng.randrange(exp.vcs_per_pc)),
        ]
        for channel in self.circuit_channels(
            offered.src_node, offered.dst_node
        ):
            requests.append((channel, rng.randrange(exp.vcs_per_pc)))
        requests.append(
            (("host-out", offered.dst_node), rng.randrange(exp.vcs_per_pc))
        )
        assignment = self.manager.probe_specific(offered.index, requests)
        if assignment is None:
            self._handle_nack(offered)
            return
        # Probe out + ack back across the (two-hop) path before data flows.
        hops = len(requests)
        setup_delay = 2 * hops * exp.setup_hop_cycles
        start_time = self.network.clock + setup_delay
        self._start_data_phase(offered, assignment, start_time)

    def _handle_nack(self, offered: _OfferedStream) -> None:
        if offered.retries_left <= 0:
            self.manager.stats.abandoned_streams += 1
            return
        offered.retries_left -= 1
        exp = self.experiment
        rng = self.rngs.stream(f"pcs/backoff{offered.index}")
        interval = self.workload.frame_interval_cycles
        mean_backoff = max(1.0, exp.backoff_fraction * interval)
        delay = max(1, int(rng.expovariate(1.0 / mean_backoff)))
        self.network.schedule_call(
            self.network.clock + delay,
            lambda o=offered: self._attempt_setup(o),
        )

    def _start_data_phase(self, offered, assignment, start_time: int) -> None:
        vtick = vtick_for_fraction(self.workload.stream_fraction)
        config = StreamConfig(
            src_node=offered.src_node,
            dst_node=offered.dst_node,
            src_vc=assignment[("host-in", offered.src_node)],
            dst_vc=assignment[("host-out", offered.dst_node)],
            vtick=vtick,
            message_size=self.workload.message_size,
            frame_interval=self.workload.frame_interval_cycles,
            frame_model=self.workload.frame_model(),
            traffic_class=self.workload.rt_class,
            phase=0,
        )
        stream = MediaStream(
            config, self.rngs.stream(f"pcs/stream{offered.index}")
        )
        offered.stream = stream
        self.streams.append(stream)
        self.network.schedule_call(
            start_time, lambda s=stream: s.start(self.network)
        )

    # ------------------------------------------------------------------

    def run(self) -> None:
        """Run the configured warmup + measurement horizon."""
        self.network.run(self.experiment.total_cycles)
        self.manager.stats.check()

    @property
    def offered_streams(self) -> int:
        """Streams the workload tried to establish."""
        return len(self.offered)
