"""PCS connection setup: per-channel VC pools, probes, and accounting.

A circuit needs one free VC on every physical channel of its path.  The
manager holds a pool of free VC indices per channel and implements the
probe semantics: reserve hop by hop; on the first hop with no free VC,
release what was taken and report failure (NACK).  Deterministic
routing means a NACKed probe cannot backtrack (footnote 2 of the
paper), so failures are frequent near saturation — Table 3's "dropped
connections".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SimulationError

ChannelId = Hashable


@dataclass
class ConnectionStats:
    """Table 3 accounting: attempts = established + dropped."""

    attempts: int = 0
    established: int = 0
    dropped: int = 0
    #: streams that exhausted their retries and gave up entirely
    abandoned_streams: int = 0
    #: circuits torn down again (stream ended / released)
    released: int = 0

    def check(self) -> None:
        """Raise unless the Table 3 identity holds."""
        if self.attempts != self.established + self.dropped:
            raise SimulationError(
                f"connection accounting broken: attempts={self.attempts} "
                f"!= established={self.established} + dropped={self.dropped}"
            )


class ConnectionManager:
    """Free-VC pools per physical channel, with circuit bookkeeping."""

    def __init__(self) -> None:
        self._free: Dict[ChannelId, List[int]] = {}
        self._capacity: Dict[ChannelId, int] = {}
        self._circuits: Dict[int, Tuple[Tuple[ChannelId, int], ...]] = {}
        self.stats = ConnectionStats()

    def add_channel(self, channel: ChannelId, vcs: int) -> None:
        """Register a physical channel with ``vcs`` reservable VCs."""
        if vcs < 1:
            raise ConfigurationError(f"channel {channel!r} needs >= 1 VC")
        if channel in self._free:
            raise ConfigurationError(f"channel {channel!r} registered twice")
        # Lower indices handed out first, mirroring a priority encoder.
        self._free[channel] = list(range(vcs - 1, -1, -1))
        self._capacity[channel] = vcs

    def free_vcs(self, channel: ChannelId) -> int:
        """Number of currently free VCs on ``channel``."""
        try:
            return len(self._free[channel])
        except KeyError:
            raise ConfigurationError(f"unknown channel {channel!r}") from None

    def capacity(self, channel: ChannelId) -> int:
        """Total VCs on ``channel``."""
        try:
            return self._capacity[channel]
        except KeyError:
            raise ConfigurationError(f"unknown channel {channel!r}") from None

    def probe(
        self, circuit_id: int, path: Sequence[ChannelId]
    ) -> Optional[Dict[ChannelId, int]]:
        """Attempt to establish a circuit along ``path``.

        Returns the channel -> VC assignment on success; ``None`` on a
        NACK (the attempt is counted as dropped and any partial
        reservations are released, as the probe's release signal would).
        """
        if circuit_id in self._circuits:
            raise SimulationError(f"circuit {circuit_id} already established")
        if not path:
            raise ConfigurationError("circuit path must be non-empty")
        # Validate before counting or reserving: a malformed path is a
        # programming error, not a dropped connection, and must not leak
        # partial reservations or break the attempts identity.
        for channel in path:
            if channel not in self._free:
                raise ConfigurationError(f"unknown channel {channel!r}")
        self.stats.attempts += 1
        taken: List[Tuple[ChannelId, int]] = []
        for channel in path:
            free = self._free[channel]
            if not free:
                for ch, vc in taken:
                    self._free[ch].append(vc)
                self.stats.dropped += 1
                return None
            taken.append((channel, free.pop()))
        self._circuits[circuit_id] = tuple(taken)
        self.stats.established += 1
        return dict(taken)

    def probe_specific(
        self, circuit_id: int, requests: Sequence[Tuple[ChannelId, int]]
    ) -> Optional[Dict[ChannelId, int]]:
        """Attempt to establish a circuit on *specific* VCs.

        The paper's workload draws the source and destination VC from a
        uniform distribution (section 4.2.1); the probe asks for exactly
        those VCs and is NACKed if any is already held — the dominant
        source of Table 3's dropped connections (two streams colliding
        on a drawn VC), which a retry re-draws.
        """
        if circuit_id in self._circuits:
            raise SimulationError(f"circuit {circuit_id} already established")
        if not requests:
            raise ConfigurationError("circuit path must be non-empty")
        # Same pre-validation as probe(): raise on malformed requests
        # before any attempt is counted or any VC is taken.
        for channel, vc in requests:
            if channel not in self._free:
                raise ConfigurationError(f"unknown channel {channel!r}")
            if not 0 <= vc < self._capacity[channel]:
                raise ConfigurationError(
                    f"VC {vc} out of range on channel {channel!r}"
                )
        self.stats.attempts += 1
        taken: List[Tuple[ChannelId, int]] = []
        for channel, vc in requests:
            free = self._free[channel]
            if vc not in free:
                for ch, held in taken:
                    self._free[ch].append(held)
                self.stats.dropped += 1
                return None
            free.remove(vc)
            taken.append((channel, vc))
        self._circuits[circuit_id] = tuple(taken)
        self.stats.established += 1
        return dict(taken)

    def release(self, circuit_id: int) -> None:
        """Tear down an established circuit, freeing its VCs."""
        try:
            taken = self._circuits.pop(circuit_id)
        except KeyError:
            raise SimulationError(
                f"circuit {circuit_id} is not established"
            ) from None
        for channel, vc in taken:
            self._free[channel].append(vc)
        self.stats.released += 1

    @property
    def established_circuits(self) -> int:
        """Circuits currently holding VCs."""
        return len(self._circuits)

    def assignment(self, circuit_id: int) -> Dict[ChannelId, int]:
        """The channel -> VC map of an established circuit."""
        try:
            return dict(self._circuits[circuit_id])
        except KeyError:
            raise SimulationError(
                f"circuit {circuit_id} is not established"
            ) from None
