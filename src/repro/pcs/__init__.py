"""Pipelined circuit switching (PCS) baseline (paper sections 3.5, 5.6).

PCS is connection oriented: a setup probe walks the deterministic path
reserving one dedicated virtual channel per physical channel; the
destination returns an acknowledgment, after which the stream's flits
flow pipelined over the reserved circuit.  A hop without a free VC
NACKs the probe and the connection attempt is *dropped* (no
backtracking with deterministic routing); the source may retry after a
backoff.

The data phase runs on the same flit-level substrate as the wormhole
studies, with every circuit holding exclusive VCs end to end, so the
only contention PCS traffic sees is the physical-channel multiplexing
that bandwidth was reserved for — exactly the property that lets PCS
deliver jitter-free streams at high loads at the cost of dropped
connections and one VC per stream.
"""

from repro.pcs.connection import ConnectionManager, ConnectionStats
from repro.pcs.simulator import PCSSimulator

__all__ = ["ConnectionManager", "ConnectionStats", "PCSSimulator"]
