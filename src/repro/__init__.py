"""MediaWorm: QoS support for traffic mixes in wormhole routers.

A full reproduction of *"Investigating QoS Support for Traffic Mixes
with the MediaWorm Router"* (Yum, Vaidya, Das, Sivasubramaniam — HPCA
2000): a flit-level pipelined wormhole router simulator with Virtual
Clock rate-based scheduling, a pipelined circuit switching (PCS)
baseline, MPEG-2 VBR/CBR + best-effort workloads, single-switch and
fat-mesh topologies, and an experiment harness regenerating every
figure and table of the paper's evaluation.

Quickstart::

    from repro import simulate_single_switch, SingleSwitchExperiment

    result = simulate_single_switch(
        SingleSwitchExperiment(load=0.7, mix=(80, 20), seed=1)
    )
    print(result.metrics.d, result.metrics.sigma_d)
"""

from repro.core import (
    AdmissionController,
    SchedulingPolicy,
    VirtualClockState,
    mediaworm_router_config,
    vanilla_router_config,
)
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    DeadlockError,
    FaultConfigError,
    FlowControlError,
    ReproError,
    RoutingError,
    SimulationError,
)
from repro.faults import (
    FaultPlan,
    LinkDownWindow,
    RecoveryConfig,
    install_faults,
    install_recovery,
)
from repro.metrics import MetricsCollector, RunMetrics
from repro.network import (
    HealthConfig,
    Network,
    butterfly,
    fat_mesh,
    fat_mesh_2x2,
    fat_tree,
    fat_tree3,
    single_switch,
)
from repro.router import (
    CrossbarKind,
    Message,
    QosPlacement,
    RouterConfig,
    RoutingMode,
    TrafficClass,
)
from repro.sim import LinkSpec, RngStreams, WorkloadScale
from repro.traffic import TrafficMix, WorkloadConfig, build_workload
from repro.experiments import (
    ButterflyExperiment,
    FatMeshExperiment,
    FatTree3Experiment,
    FatTreeExperiment,
    PCSExperiment,
    SingleSwitchExperiment,
    simulate_butterfly,
    simulate_fat_mesh,
    simulate_fat_tree,
    simulate_fat_tree3,
    simulate_pcs,
    simulate_single_switch,
)

__version__ = "1.0.0"

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "ButterflyExperiment",
    "ConfigurationError",
    "CrossbarKind",
    "DeadlockError",
    "FatMeshExperiment",
    "FatTree3Experiment",
    "FatTreeExperiment",
    "FaultConfigError",
    "FaultPlan",
    "FlowControlError",
    "HealthConfig",
    "LinkDownWindow",
    "LinkSpec",
    "Message",
    "MetricsCollector",
    "Network",
    "PCSExperiment",
    "QosPlacement",
    "RecoveryConfig",
    "ReproError",
    "RngStreams",
    "RouterConfig",
    "RoutingError",
    "RoutingMode",
    "RunMetrics",
    "SchedulingPolicy",
    "SimulationError",
    "SingleSwitchExperiment",
    "TrafficClass",
    "TrafficMix",
    "VirtualClockState",
    "WorkloadConfig",
    "WorkloadScale",
    "__version__",
    "build_workload",
    "butterfly",
    "fat_mesh",
    "fat_mesh_2x2",
    "fat_tree",
    "fat_tree3",
    "install_faults",
    "install_recovery",
    "mediaworm_router_config",
    "simulate_butterfly",
    "simulate_fat_mesh",
    "simulate_fat_tree",
    "simulate_fat_tree3",
    "simulate_pcs",
    "simulate_single_switch",
    "single_switch",
    "vanilla_router_config",
]
