"""Jitter-free classification of sweep points.

The paper's criterion: a stream is delivered jitter-free when the mean
delivery interval matches the 33 ms frame period and the standard
deviation is (near) zero.  Simulated runs over finite horizons never
measure an exact zero, so a small tolerance is applied; the default of
1 ms is far below the multi-millisecond deviations the paper plots for
jittery configurations.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

NOMINAL_INTERVAL_MS = 33.0
JITTER_SIGMA_TOLERANCE_MS = 1.0
JITTER_MEAN_TOLERANCE_MS = 1.0


def is_jitter_free_point(
    d_ms: float,
    sigma_ms: float,
    nominal_ms: float = NOMINAL_INTERVAL_MS,
    sigma_tolerance_ms: float = JITTER_SIGMA_TOLERANCE_MS,
    mean_tolerance_ms: float = JITTER_MEAN_TOLERANCE_MS,
) -> bool:
    """True when (d, sigma_d) meets the jitter-free criterion."""
    if d_ms != d_ms or sigma_ms != sigma_ms:  # nan: nothing delivered
        return False
    return (
        abs(d_ms - nominal_ms) <= mean_tolerance_ms
        and sigma_ms <= sigma_tolerance_ms
    )


def max_jitter_free_load(
    points: Iterable,
    nominal_ms: float = NOMINAL_INTERVAL_MS,
    sigma_tolerance_ms: float = JITTER_SIGMA_TOLERANCE_MS,
) -> Optional[float]:
    """Largest swept load whose point is jitter-free.

    ``points`` are sweep points with ``x`` (numeric load), ``d`` and
    ``sigma_d`` attributes (e.g. :class:`repro.experiments.figures.Point`).
    Returns ``None`` when no point qualifies.  Points above the first
    jittery load are ignored, so a noisy re-entrant point cannot inflate
    the answer.
    """
    best = None
    for point in sorted(points, key=lambda p: p.x):
        if is_jitter_free_point(
            point.d,
            point.sigma_d,
            nominal_ms=nominal_ms,
            sigma_tolerance_ms=sigma_tolerance_ms,
        ):
            best = point.x
        else:
            break
    return best
