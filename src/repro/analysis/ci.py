"""Confidence intervals for simulation outputs.

Single simulation runs give point estimates; when sweeping seeds (the
recommended practice for publication-grade numbers), these helpers turn
the per-seed estimates into a Student-t confidence interval, and
``run_with_seeds`` drives the replication loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

from scipy import stats as scipy_stats

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean with its symmetric confidence half-width."""

    mean: float
    half_width: float
    confidence: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (
            f"{self.mean:.4g} +/- {self.half_width:.3g} "
            f"({self.confidence:.0%}, n={self.n})"
        )


def t_confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval of the mean of ``samples``."""
    if not 0 < confidence < 1:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    n = len(samples)
    if n < 2:
        raise ConfigurationError(
            f"need >= 2 samples for a confidence interval, got {n}"
        )
    mean = sum(samples) / n
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    sem = math.sqrt(variance / n)
    critical = float(scipy_stats.t.ppf((1 + confidence) / 2, n - 1))
    return ConfidenceInterval(
        mean=mean, half_width=critical * sem, confidence=confidence, n=n
    )


def run_with_seeds(
    run: Callable[[int], float],
    seeds: Sequence[int],
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """Replicate ``run(seed)`` over ``seeds`` and summarise the results.

    >>> ci = run_with_seeds(
    ...     lambda seed: simulate(experiment_with(seed)).metrics.sigma_d,
    ...     seeds=range(5),
    ... )                                                   # doctest: +SKIP
    """
    if len(seeds) < 2:
        raise ConfigurationError("need >= 2 seeds for replication")
    samples: List[float] = [float(run(seed)) for seed in seeds]
    return t_confidence_interval(samples, confidence=confidence)
