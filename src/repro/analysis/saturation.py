"""Saturation-load search: the router's effective QoS capacity.

The paper summarises each configuration by the largest load it serves
jitter-free ("70-80% of the physical channel bandwidth").  This module
finds that boundary by bisection over a user-supplied runner, giving a
single *effective capacity* number per configuration — handy for
comparing schedulers (FIFO loses real capacity to burst-induced
blocking) and for sizing admission-control thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.analysis.jitter import is_jitter_free_point
from repro.errors import ConfigurationError

#: a runner maps a load to the measured (d_ms, sigma_d_ms)
LoadRunner = Callable[[float], Tuple[float, float]]


@dataclass(frozen=True)
class SaturationSearch:
    """Outcome of a jitter-free capacity search."""

    #: largest probed load that was jitter-free (nan if none)
    capacity: float
    #: smallest probed load that jittered (nan if none found)
    first_jittery: float
    #: every (load, d, sigma_d, jitter_free) probe, in probe order
    probes: List[Tuple[float, float, float, bool]]

    @property
    def resolved(self) -> bool:
        """True when both sides of the boundary were observed."""
        return self.capacity == self.capacity and (
            self.first_jittery == self.first_jittery
        )


def find_saturation_load(
    runner: LoadRunner,
    low: float = 0.5,
    high: float = 1.0,
    tolerance: float = 0.02,
    sigma_tolerance_ms: float = 1.0,
    nominal_ms: float = 33.0,
    max_probes: int = 12,
) -> SaturationSearch:
    """Bisect for the largest jitter-free load in ``[low, high]``.

    ``runner(load)`` must return the measured ``(d, sigma_d)`` in ms.
    The search assumes the jitter-free property is monotone in load
    (true for every configuration in the paper) and stops when the
    bracket is narrower than ``tolerance`` or ``max_probes`` runs were
    spent.
    """
    if not 0 < low < high:
        raise ConfigurationError(f"need 0 < low < high, got [{low}, {high}]")
    if tolerance <= 0:
        raise ConfigurationError(f"tolerance must be positive: {tolerance}")

    probes: List[Tuple[float, float, float, bool]] = []

    def probe(load: float) -> bool:
        d, sigma = runner(load)
        ok = is_jitter_free_point(
            d,
            sigma,
            nominal_ms=nominal_ms,
            sigma_tolerance_ms=sigma_tolerance_ms,
        )
        probes.append((load, d, sigma, ok))
        return ok

    nan = float("nan")
    # Establish the bracket.
    if not probe(low):
        return SaturationSearch(capacity=nan, first_jittery=low, probes=probes)
    if probe(high):
        return SaturationSearch(capacity=high, first_jittery=nan, probes=probes)

    good, bad = low, high
    while bad - good > tolerance and len(probes) < max_probes:
        mid = (good + bad) / 2
        if probe(mid):
            good = mid
        else:
            bad = mid
    return SaturationSearch(capacity=good, first_jittery=bad, probes=probes)
