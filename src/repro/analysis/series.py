"""Series comparison helpers for paired sweeps."""

from __future__ import annotations

from typing import Callable, Optional, Sequence


def dominates(
    better: Sequence,
    worse: Sequence,
    key: Callable = lambda p: p.sigma_d,
    slack: float = 0.0,
) -> bool:
    """True when ``better`` is <= ``worse`` (plus slack) at every shared x.

    Used for claims like "Virtual Clock's sigma_d never exceeds FIFO's".
    Points are matched by their ``x`` values; unmatched points are
    ignored.
    """
    worse_by_x = {p.x: p for p in worse}
    compared = 0
    for point in better:
        other = worse_by_x.get(point.x)
        if other is None:
            continue
        compared += 1
        a, b = key(point), key(other)
        if a != a or b != b:  # nan values cannot be compared
            continue
        if a > b + slack:
            return False
    return compared > 0


def crossover_x(
    series_a: Sequence,
    series_b: Sequence,
    key: Callable = lambda p: p.sigma_d,
) -> Optional[float]:
    """Smallest shared x where ``key(a)`` first exceeds ``key(b)``.

    Returns ``None`` when series A stays at or below series B across the
    sweep (no crossover).
    """
    b_by_x = {p.x: p for p in series_b}
    for point in sorted(series_a, key=lambda p: p.x):
        other = b_by_x.get(point.x)
        if other is None:
            continue
        if key(point) > key(other):
            return point.x
    return None


def monotonic_tail(
    values: Sequence[float], tolerance: float = 0.0
) -> bool:
    """True when ``values`` never decreases by more than ``tolerance``.

    Used for claims like "best-effort latency grows with load".
    """
    previous = None
    for value in values:
        if value != value:  # skip nan cells
            continue
        if previous is not None and value < previous - tolerance:
            return False
        previous = value
    return True
