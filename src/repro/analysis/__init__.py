"""Analysis helpers: jitter-free thresholds, series comparison.

These utilities turn raw sweep data into the qualitative claims the
paper makes — "jitter-free up to a load of 0.7-0.8", "FIFO degrades
beyond 0.8 while Virtual Clock holds to 0.96" — so EXPERIMENTS.md and
the test suite can check shapes rather than absolute numbers.
"""

from repro.analysis.ascii_plot import ascii_xy_plot, figure_plot, sparkline
from repro.analysis.ci import (
    ConfidenceInterval,
    run_with_seeds,
    t_confidence_interval,
)
from repro.analysis.jitter import (
    JITTER_SIGMA_TOLERANCE_MS,
    NOMINAL_INTERVAL_MS,
    is_jitter_free_point,
    max_jitter_free_load,
)
from repro.analysis.saturation import SaturationSearch, find_saturation_load
from repro.analysis.series import (
    crossover_x,
    dominates,
    monotonic_tail,
)

__all__ = [
    "ConfidenceInterval",
    "JITTER_SIGMA_TOLERANCE_MS",
    "NOMINAL_INTERVAL_MS",
    "SaturationSearch",
    "crossover_x",
    "dominates",
    "find_saturation_load",
    "is_jitter_free_point",
    "ascii_xy_plot",
    "figure_plot",
    "max_jitter_free_load",
    "monotonic_tail",
    "run_with_seeds",
    "sparkline",
    "t_confidence_interval",
]
