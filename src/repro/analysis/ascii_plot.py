"""Terminal plots for reproduced figures.

Matplotlib is deliberately not a dependency; these renderers draw the
paper's curve shapes directly in the terminal so ``mediaworm run fig3
--plot`` shows the crossover at a glance.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError

#: glyphs assigned to series, in order
SERIES_MARKS = "ox+*#@%&"

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 0) -> str:
    """One-line amplitude plot of ``values`` (nan renders as space)."""
    finite = [v for v in values if v == v]
    if not finite:
        return ""
    low, high = min(finite), max(finite)
    span = high - low
    chars = []
    for value in values:
        if value != value:
            chars.append(" ")
            continue
        if span == 0:
            chars.append(_SPARK_LEVELS[-1])
            continue
        level = (value - low) / span
        chars.append(_SPARK_LEVELS[int(level * (len(_SPARK_LEVELS) - 1))])
    line = "".join(chars)
    if width and len(line) > width:
        step = len(line) / width
        line = "".join(line[int(i * step)] for i in range(width))
    return line


def ascii_xy_plot(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Scatter plot of named (x, y) series on a character grid."""
    if width < 10 or height < 4:
        raise ConfigurationError("plot needs width >= 10 and height >= 4")
    points = [
        (x, y)
        for pts in series.values()
        for x, y in pts
        if x == x and y == y
    ]
    if not points:
        return "(no finite points to plot)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, pts) in enumerate(series.items()):
        mark = SERIES_MARKS[index % len(SERIES_MARKS)]
        legend.append(f"{mark} {name}")
        for x, y in pts:
            if x != x or y != y:
                continue
            col = int((x - x_low) / x_span * (width - 1))
            row = height - 1 - int((y - y_low) / y_span * (height - 1))
            grid[row][col] = mark

    lines = []
    label_width = max(len(f"{y_high:.3g}"), len(f"{y_low:.3g}"))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_high:.3g}".rjust(label_width)
        elif row_index == height - 1:
            label = f"{y_low:.3g}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = f"{x_low:.3g}".ljust(width - 8) + f"{x_high:.3g}".rjust(8)
    lines.append(" " * (label_width + 2) + x_axis)
    lines.append(f"{ylabel} vs {xlabel}    " + "   ".join(legend))
    return "\n".join(lines)


def figure_plot(fig, metric: str = "sigma_d", **kwargs) -> str:
    """Plot one metric of a reproduced figure's series.

    ``metric`` is an attribute of the sweep points (``d``, ``sigma_d``,
    ``be_latency_us``).  Non-numeric x values (mix labels like
    ``"80:20"``) are mapped to their position in the sweep.
    """
    series: Dict[str, List[Tuple[float, float]]] = {}
    for name, points in fig.series.items():
        xy = []
        for position, point in enumerate(points):
            x = point.x
            if not isinstance(x, (int, float)):
                x = float(position)
            xy.append((float(x), float(getattr(point, metric))))
        series[name] = xy
    return ascii_xy_plot(
        series, xlabel=fig.xlabel, ylabel=metric, **kwargs
    )
