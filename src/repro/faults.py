"""Deterministic fault injection and end-to-end recovery.

The paper evaluates MediaWorm on a fault-free fabric; this subsystem
adds the scenario axis the evaluation lacks: what happens to the QoS
guarantees when links drop or corrupt flits, when a wire is severed for
a window of time, or when a whole router port dies.

Three cooperating pieces:

* :class:`FaultPlan` — a declarative, validated description of the
  faults to inject.  All randomness comes from a dedicated
  :class:`~repro.sim.rng.RngStreams` substream per link
  (``faults/<link label>``), so a zero-fault plan leaves every other
  substream — and therefore the whole simulation — bit-identical to a
  run with no plan at all.
* :func:`install_faults` — threads the plan through an assembled
  :class:`~repro.network.network.Network`: every affected
  :class:`~repro.network.link.Link` gets a :class:`LinkFaultState`
  consulted by its delivery loop, and routers learn which output ports
  are dead so the load-based fat-link selector avoids them.
* :func:`install_recovery` / :class:`EndToEndTransport` — an optional
  end-to-end checksum + timeout/retransmission protocol at the host
  interfaces.  Wormhole flow control has no per-hop recovery: a lost
  flit wedges the rest of its worm, so the transport detects the loss
  by timeout, purges the remains (the preemption kill machinery), and
  retransmits a clone after a capped exponential backoff.

Fault semantics (documented invariants):

* A flit lost on a router-bound wire hands its credit straight back to
  the sender, as :meth:`Network.kill_message` does for purged flits —
  link faults lose *data*, never flow-control capacity.
* Once a message loses one flit on a link, the rest of its flits on
  that link are dropped too ("broken worm"): the downstream input VC
  counts flits positionally, so delivering post-gap flits would either
  mis-frame the message or attribute them to a neighbour.
* During a down window every due flit is dropped (a severed wire), and
  :meth:`Link.is_available` reports the link unusable so fat-link
  groups route around it.
* Corrupted flits are delivered but taint their message; a sink with
  the end-to-end checksum enabled rejects the tainted message at its
  tail flit instead of delivering it.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import FaultConfigError
from repro.sim.rng import RngStreams

#: flit fates returned by :meth:`LinkFaultState.fate`
FATE_OK = 0
FATE_LOST = 1
FATE_CORRUPT = 2


@dataclass(frozen=True)
class LinkDownWindow:
    """A ``[start, end)`` cycle window during which matching links are dead.

    ``link`` is an ``fnmatch``-style pattern over link labels (see
    :attr:`repro.network.link.Link.label`): host links are labelled
    ``host<node>:inject`` / ``host<node>:eject`` and inter-router
    channels ``ch:<src_router>.<src_port>-><dst_router>.<dst_port>``,
    so ``"ch:0.*"`` severs every channel out of router 0.  ``end=None``
    means the link never comes back (a permanent failure).
    """

    link: str
    start: int = 0
    end: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.link:
            raise FaultConfigError("a down window needs a link pattern")
        if self.start < 0:
            raise FaultConfigError(
                f"down window start must be >= 0, got {self.start}"
            )
        if self.end is not None and self.end <= self.start:
            raise FaultConfigError(
                f"down window end must be > start, got "
                f"[{self.start}, {self.end})"
            )

    def active(self, clock: int) -> bool:
        """True while the window covers ``clock``."""
        return clock >= self.start and (self.end is None or clock < self.end)

    def to_dict(self) -> dict:
        """JSON-plain form (chaos scenarios, repro files)."""
        return {"link": self.link, "start": self.start, "end": self.end}

    @classmethod
    def from_dict(cls, data: dict) -> "LinkDownWindow":
        """Rebuild a window from :meth:`to_dict` output (validated)."""
        return cls(
            link=data["link"],
            start=int(data.get("start", 0)),
            end=None if data.get("end") is None else int(data["end"]),
        )


@dataclass(frozen=True)
class DomainDownWindow:
    """A correlated failure domain dead for a ``[start, end)`` window.

    ``domain`` names a set of hardware that fails (and recovers)
    together, in datacenter-incident vocabulary rather than link
    labels:

    * ``switch:<rid>`` — one router and every link touching it (a ToR
      or spine crash);
    * ``pod:<p>`` — every leaf and spine switch of pod ``p`` on a
      three-level fat tree (a pod loses power);
    * ``core-group`` — every top-level switch; ``core-group:<j>``
      narrows to the ``j``-th core group of a three-level fat tree
      (the cores hanging off spine slot ``j``);
    * ``links:<pat>[;<pat>...]`` — an arbitrary set of link-label
      patterns failing as one unit.

    Domains are sugar: :func:`expand_domain` lowers each one
    deterministically into plain :class:`LinkDownWindow` entries
    against the concrete topology, so the per-link machinery — and its
    RNG-substream discipline that keeps zero-fault runs bit-identical —
    remains the only fault path the simulator executes.  ``end=None``
    is a permanent failure.
    """

    domain: str
    start: int = 0
    end: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.domain:
            raise FaultConfigError("a domain window needs a domain name")
        if self.start < 0:
            raise FaultConfigError(
                f"domain window start must be >= 0, got {self.start}"
            )
        if self.end is not None and self.end <= self.start:
            raise FaultConfigError(
                f"domain window end must be > start, got "
                f"[{self.start}, {self.end})"
            )

    def active(self, clock: int) -> bool:
        """True while the window covers ``clock``."""
        return clock >= self.start and (self.end is None or clock < self.end)

    def to_dict(self) -> dict:
        """JSON-plain form (chaos scenarios, repro files)."""
        return {"domain": self.domain, "start": self.start, "end": self.end}

    @classmethod
    def from_dict(cls, data: dict) -> "DomainDownWindow":
        """Rebuild a window from :meth:`to_dict` output (validated)."""
        return cls(
            domain=data["domain"],
            start=int(data.get("start", 0)),
            end=None if data.get("end") is None else int(data["end"]),
        )


def domain_switches(domain: str, topology) -> FrozenSet[int]:
    """Router ids ``domain`` resolves to on ``topology``.

    ``links:`` domains touch no switch and resolve to an empty set;
    every other domain kind must name at least one router or the plan
    is rejected with a :class:`FaultConfigError`.
    """
    extras = topology.extras
    kind, _, arg = domain.partition(":")
    if kind == "links":
        if not [p for p in arg.split(";") if p]:
            raise FaultConfigError(
                f"domain {domain!r} carries no link patterns"
            )
        return frozenset()
    if kind == "switch":
        rid = _domain_index(domain, arg)
        if not 0 <= rid < topology.num_routers:
            raise FaultConfigError(
                f"domain {domain!r} names unknown router {rid}"
            )
        return frozenset((rid,))
    if kind == "pod":
        if extras.get("generator") != "fat_tree3":
            raise FaultConfigError(
                f"domain {domain!r} needs a three-level fat tree "
                f"(topology is {topology.name!r})"
            )
        k = extras["k"]
        half = k // 2
        pod = _domain_index(domain, arg)
        if not 0 <= pod < k:
            raise FaultConfigError(
                f"domain {domain!r} names unknown pod {pod} (k={k})"
            )
        num_leaves = k * half
        return frozenset(range(pod * half, (pod + 1) * half)) | frozenset(
            range(num_leaves + pod * half, num_leaves + (pod + 1) * half)
        )
    if kind == "core-group":
        overlay = getattr(topology.routing, "overlay", None)
        if overlay is None:
            raise FaultConfigError(
                f"domain {domain!r} needs an up*/down* fabric "
                f"(topology is {topology.name!r})"
            )
        if not arg:
            levels = overlay.levels
            top = max(levels)
            return frozenset(
                rid for rid, lv in enumerate(levels) if lv == top
            )
        if extras.get("generator") != "fat_tree3":
            raise FaultConfigError(
                f"domain {domain!r}: indexed core groups exist only on "
                f"three-level fat trees (topology is {topology.name!r})"
            )
        k = extras["k"]
        half = k // 2
        group = _domain_index(domain, arg)
        if not 0 <= group < half:
            raise FaultConfigError(
                f"domain {domain!r} names unknown core group {group} "
                f"(k={k} has {half} groups)"
            )
        base = 2 * k * half + group * half
        return frozenset(range(base, base + half))
    raise FaultConfigError(
        f"unknown failure domain {domain!r} (expected 'switch:<rid>', "
        f"'pod:<p>', 'core-group[:<j>]', or 'links:<pat>[;<pat>...]')"
    )


def _domain_index(domain: str, arg: str) -> int:
    """Parse the integer argument of a domain name."""
    try:
        return int(arg)
    except ValueError:
        raise FaultConfigError(
            f"domain {domain!r} needs an integer argument"
        ) from None


def expand_domain(window: DomainDownWindow, topology) -> Tuple[
    LinkDownWindow, ...
]:
    """Lower one domain window into concrete per-link down windows.

    Switch-shaped domains sever every channel touching a member router
    *and* the attachment links of its hosts (a crashed ToR takes its
    NIs down with it); ``links:`` domains pass their patterns through.
    Expansion is deterministic — sorted by link label — so sweep
    fingerprints and repro files are stable across runs and platforms.
    """
    kind, _, arg = window.domain.partition(":")
    if kind == "links":
        labels = sorted({p for p in arg.split(";") if p})
        if not labels:
            raise FaultConfigError(
                f"domain {window.domain!r} carries no link patterns"
            )
    else:
        switches = domain_switches(window.domain, topology)
        collected = set()
        for src_r, src_p, dst_r, dst_p in topology.channels:
            if src_r in switches or dst_r in switches:
                collected.add(f"ch:{src_r}.{src_p}->{dst_r}.{dst_p}")
        for node, rid, _ in topology.hosts:
            if rid in switches:
                collected.add(f"host{node}:inject")
                collected.add(f"host{node}:eject")
        labels = sorted(collected)
    return tuple(
        LinkDownWindow(link=label, start=window.start, end=window.end)
        for label in labels
    )


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults to inject into a network.

    * ``flit_loss_prob`` / ``flit_corrupt_prob`` — per-flit probabilities
      applied at delivery time on every link matching ``links``.
    * ``down_windows`` — scheduled link outages (severed wires).
    * ``port_failures`` — ``(router_id, output_port)`` pairs whose
      outgoing link is dead for the whole run; the router's fat-link
      selector skips them.
    * ``domains`` — correlated failure domains (switch crashes, pod
      power loss, core-plane outages) expanded into per-link windows at
      install time; see :class:`DomainDownWindow`.

    A default-constructed plan injects nothing and is guaranteed to
    leave the simulation bit-identical to a run with no plan at all
    (the determinism regression in ``tests/test_faults.py`` guards
    this).
    """

    flit_loss_prob: float = 0.0
    flit_corrupt_prob: float = 0.0
    links: str = "*"
    down_windows: Tuple[LinkDownWindow, ...] = ()
    port_failures: Tuple[Tuple[int, int], ...] = ()
    domains: Tuple[DomainDownWindow, ...] = ()

    def __post_init__(self) -> None:
        for name in ("flit_loss_prob", "flit_corrupt_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultConfigError(
                    f"{name} must be in [0, 1], got {value}"
                )
        if not self.links:
            raise FaultConfigError("links pattern must be non-empty")
        for failure in self.port_failures:
            if len(failure) != 2:
                raise FaultConfigError(
                    f"port failure must be (router_id, port), got {failure!r}"
                )

    @property
    def is_zero(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.flit_loss_prob == 0.0
            and self.flit_corrupt_prob == 0.0
            and not self.down_windows
            and not self.port_failures
            and not self.domains
        )

    def to_dict(self) -> dict:
        """JSON-plain form (chaos scenarios, repro files)."""
        return {
            "flit_loss_prob": self.flit_loss_prob,
            "flit_corrupt_prob": self.flit_corrupt_prob,
            "links": self.links,
            "down_windows": [w.to_dict() for w in self.down_windows],
            "port_failures": [list(pair) for pair in self.port_failures],
            "domains": [d.to_dict() for d in self.domains],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output.

        Runs the full ``__post_init__`` validation, so a hand-edited
        repro file fails loudly instead of injecting something its
        author did not write.
        """
        return cls(
            flit_loss_prob=float(data.get("flit_loss_prob", 0.0)),
            flit_corrupt_prob=float(data.get("flit_corrupt_prob", 0.0)),
            links=data.get("links", "*"),
            down_windows=tuple(
                LinkDownWindow.from_dict(w)
                for w in data.get("down_windows", ())
            ),
            port_failures=tuple(
                (int(r), int(p)) for r, p in data.get("port_failures", ())
            ),
            domains=tuple(
                DomainDownWindow.from_dict(d)
                for d in data.get("domains", ())
            ),
        )


class LinkFaultState:
    """Per-link fault machinery consulted by ``Link.deliver_due``.

    Holds the link's effective probabilities, its down windows, its own
    RNG substream, and the "broken worm" set of messages that already
    lost a flit here (their remaining flits must be dropped too).
    Accounting is delegated to the owning network so the global
    ``flits_lost`` / ``flits_corrupted`` counters and flit conservation
    stay consistent.
    """

    __slots__ = (
        "label",
        "loss_prob",
        "corrupt_prob",
        "windows",
        "rng",
        "network",
        "broken",
    )

    def __init__(
        self,
        label: str,
        loss_prob: float,
        corrupt_prob: float,
        windows: Tuple[LinkDownWindow, ...],
        rng,
        network,
    ) -> None:
        self.label = label
        self.loss_prob = loss_prob
        self.corrupt_prob = corrupt_prob
        self.windows = windows
        self.rng = rng
        self.network = network
        #: msg ids that lost a flit on this link (rest of worm drops)
        self.broken: set = set()

    def down(self, clock: int) -> bool:
        """True while any down window covers ``clock``."""
        for window in self.windows:
            if window.active(clock):
                return True
        return False

    def fate(self, msg, flit_index: int, down: bool) -> int:
        """Decide what happens to one due flit (OK / LOST / CORRUPT)."""
        broken = self.broken
        msg_id = msg.msg_id
        if msg_id in broken:
            if flit_index == msg.size - 1:
                broken.discard(msg_id)
            return FATE_LOST
        if down or (
            self.loss_prob > 0.0 and self.rng.random() < self.loss_prob
        ):
            if flit_index != msg.size - 1:
                broken.add(msg_id)
            return FATE_LOST
        if self.corrupt_prob > 0.0 and self.rng.random() < self.corrupt_prob:
            return FATE_CORRUPT
        return FATE_OK

    def forget(self, msg) -> None:
        """Drop broken-worm state for a killed message (purge hook)."""
        self.broken.discard(msg.msg_id)

    def account_lost(self) -> None:
        """One flit vanished on this link."""
        self.network._flit_lost(1)

    def report_loss(self, msg) -> None:
        """Link-level loss detection: hand the broken worm to recovery.

        With a transport installed the message is torn down *now* (the
        downstream router spots the gap and triggers the purge) instead
        of wedging its VC until the delivery timeout fires — without
        this, wedges accumulate faster than timeouts clear them and
        throughput collapses under loss.
        """
        transport = self.network.transport
        if transport is not None:
            transport.on_loss(msg)

    def account_corrupted(self) -> None:
        """One flit was delivered corrupted on this link."""
        self.network._flit_corrupted(1)


class FaultInjector:
    """The installed fault plan: per-link states plus failed ports.

    Built by :func:`install_faults`; kept on ``network.fault_injector``
    for introspection (``faults_active``, per-link labels).
    """

    def __init__(self, network, plan: FaultPlan) -> None:
        self.network = network
        self.plan = plan
        #: label -> LinkFaultState for every link with attached faults
        self.states: Dict[str, LinkFaultState] = {}
        #: (router_id, port) pairs marked permanently dead
        self.failed_ports: Tuple[Tuple[int, int], ...] = ()
        #: router ids crashed by a *permanent* domain window
        self.dead_switches: FrozenSet[int] = frozenset()
        #: per-link windows the plan's domains expanded into
        self.domain_windows: Tuple[LinkDownWindow, ...] = ()
        #: hosts the plan knowingly cuts off (attached to dead
        #: switches); their sessions are shed, not routed around
        self.sacrificed_hosts: FrozenSet[int] = frozenset()

    def links_down(self, clock: int) -> List[str]:
        """Labels of links inside an active down window at ``clock``."""
        return [
            label
            for label, state in self.states.items()
            if state.down(clock)
        ]

    @property
    def faulted_links(self) -> List[str]:
        """Labels of every link carrying fault state."""
        return sorted(self.states)


def install_faults(
    network, plan: FaultPlan, rngs: RngStreams
) -> FaultInjector:
    """Thread ``plan`` through an assembled network.

    Every link whose label matches the plan's probabilistic pattern or
    a down window gets a :class:`LinkFaultState` (with its own
    ``faults/<label>`` RNG substream).  How routers react to failures
    depends on ``RouterConfig.routing_mode``: in ``oracle`` mode (the
    default) the fat-link selector consults the ground-truth fault
    state and dodges failed ports instantly; in ``adaptive`` mode the
    link-health monitor (:mod:`repro.network.health`) infers failures
    from symptoms and reroutes — including detours when a whole fat
    group dies; in ``static`` mode routing ignores faults entirely and
    end-to-end recovery owns every loss.

    Correlated failure domains (``plan.domains``) are lowered first:
    each :class:`DomainDownWindow` expands deterministically into
    per-link windows against the concrete topology, and permanently
    crashed routers are recorded on ``injector.dead_switches`` so the
    isolation check (and diagnostics) can tell a deliberate sacrifice
    from a configuration mistake.

    Raises :class:`FaultConfigError` for windows that match no link,
    port failures that name unknown hardware, unknown failure domains,
    or a plan whose *permanent* failures isolate a host no routing mode
    could ever reach again (a dead host attachment link, or a router
    left with no surviving route and no detour — e.g. any permanent
    failure on ``single_switch`` host ports or a thin non-redundant
    mesh).  On up*/down* fabrics the check runs the alternate-ancestor
    overlay: a plan survives if masking repairs it, and hosts attached
    to domain-declared dead switches are an accepted sacrifice rather
    than an error.  Returns the installed :class:`FaultInjector`.
    """
    injector = FaultInjector(network, plan)

    expanded: List[LinkDownWindow] = []
    dead_switches: set = set()
    for dwin in plan.domains:
        expanded.extend(expand_domain(dwin, network.topology))
        if dwin.end is None:
            dead_switches |= domain_switches(dwin.domain, network.topology)
    injector.dead_switches = frozenset(dead_switches)
    injector.domain_windows = tuple(expanded)
    down_windows = tuple(plan.down_windows) + injector.domain_windows

    permanent: Dict[str, List[LinkDownWindow]] = {}
    failed: List[Tuple[int, int]] = []
    for router_id, port in plan.port_failures:
        if not 0 <= router_id < len(network.routers):
            raise FaultConfigError(
                f"port failure names unknown router {router_id}"
            )
        router = network.routers[router_id]
        if not 0 <= port < router.config.num_ports:
            raise FaultConfigError(
                f"port failure names unknown port {port} on router "
                f"{router_id}"
            )
        link = router.out_links[port]
        if link is None:
            raise FaultConfigError(
                f"router {router_id} port {port} is unwired; cannot fail it"
            )
        router.faulted_ports.add(port)
        permanent.setdefault(link.label, []).append(
            LinkDownWindow(link=link.label, start=0, end=None)
        )
        failed.append((router_id, port))
    injector.failed_ports = tuple(failed)

    labels = {link.label: link for link in network.links}
    for window in down_windows:
        if not any(fnmatchcase(label, window.link) for label in labels):
            raise FaultConfigError(
                f"down window pattern {window.link!r} matches no link "
                f"(labels look like 'host0:inject' or 'ch:0.4->1.5')"
            )

    probabilistic = plan.flit_loss_prob > 0.0 or plan.flit_corrupt_prob > 0.0
    for label, link in labels.items():
        windows = [
            w for w in down_windows if fnmatchcase(label, w.link)
        ]
        windows.extend(permanent.get(label, ()))
        hit = probabilistic and fnmatchcase(label, plan.links)
        if not windows and not hit:
            continue
        state = LinkFaultState(
            label=label,
            loss_prob=plan.flit_loss_prob if hit else 0.0,
            corrupt_prob=plan.flit_corrupt_prob if hit else 0.0,
            windows=tuple(windows),
            rng=rngs.stream(f"faults/{label}"),
            network=network,
        )
        link.faults = state
        injector.states[label] = state

    _check_host_isolation(network, injector)
    network.fault_injector = injector
    return injector


def _check_host_isolation(network, injector: FaultInjector) -> None:
    """Reject fault plans that cut a host off for good.

    Only *permanent* failures (windows with no end) count: a host's
    attachment links have no alternative by construction, and a router
    whose every surviving route toward some host is dead — including
    the topology's detour options — would hang traffic until the
    watchdog fires.  Failing fast with a :class:`FaultConfigError`
    turns that silent hang into a configuration-time diagnosis.

    On up*/down* fabrics (fat trees, butterflies) the check runs the
    topology's alternate-ancestor overlay instead of a route walk: a
    plan is acceptable when, after the overlay's repair masks, the only
    unreachable hosts are the ones attached to switches the plan
    *declared* dead via failure domains — a deliberate sacrifice the
    runtime sheds gracefully.  Any host isolated beyond that set (e.g.
    by bare link windows that happen to sever a subtree) is still a
    configuration error.
    """
    dead_labels = {
        label
        for label, state in injector.states.items()
        if any(w.end is None for w in state.windows)
    }
    if not dead_labels:
        return
    dead_ports = {
        (link.src_router.router_id, link.src_port)
        for link in network.links
        if link.label in dead_labels and link.src_router is not None
    }
    overlay = getattr(network.routing, "overlay", None)
    if overlay is not None:
        dead_switches = injector.dead_switches
        _, sacrificed = overlay.analyze(dead_switches=dead_switches)
        injector.sacrificed_hosts = sacrificed
        dead_edges = overlay.dead_edges_from_ports(dead_ports)
        _, isolated = overlay.analyze(
            dead_switches=dead_switches, dead_edges=dead_edges
        )
        stranded = set(isolated) - set(sacrificed)
        for node, _, _ in network.topology.hosts:
            for half in ("inject", "eject"):
                if f"host{node}:{half}" in dead_labels:
                    if node in sacrificed:
                        continue
                    raise FaultConfigError(
                        f"fault plan permanently fails host{node}:{half}; "
                        f"host {node} has a single attachment link, no "
                        f"reroute is possible"
                    )
        if stranded:
            victims = ", ".join(str(n) for n in sorted(stranded))
            raise FaultConfigError(
                f"fault plan isolates host(s) {victims}: even the "
                f"alternate-ancestor failover overlay cannot route "
                f"around these permanent failures (declare the dead "
                f"switches as failure domains to sacrifice their hosts "
                f"deliberately)"
            )
        return
    for node, _, _ in network.topology.hosts:
        for half in ("inject", "eject"):
            label = f"host{node}:{half}"
            if label in dead_labels:
                raise FaultConfigError(
                    f"fault plan permanently fails {label}; host {node} "
                    f"has a single attachment link, no reroute is possible"
                )
    routing = network.routing
    channel_dst = {
        (r, p): dr for r, p, dr, _ in network.topology.channels
    }
    num_routers = len(network.routers)
    for node, dst_rid, _ in network.topology.hosts:
        for start in range(num_routers):
            rid, flavor, steps = start, None, 0
            while rid != dst_rid:
                steps += 1
                if steps > 4 * num_routers:
                    break  # walk is cyclic; reachable, just detouring
                ports = (
                    routing.alt_candidates(rid, node)
                    if flavor == "yx"
                    else None
                )
                if ports is None:
                    ports = routing.candidates(rid, node)
                open_ports = [
                    p for p in ports if (rid, p) not in dead_ports
                ]
                if not open_ports:
                    for group, detour_flavor in routing.detour_options(
                        rid, node
                    ):
                        survivors = [
                            p for p in group if (rid, p) not in dead_ports
                        ]
                        if survivors:
                            open_ports = survivors
                            flavor = detour_flavor
                            break
                if not open_ports:
                    raise FaultConfigError(
                        f"fault plan isolates host {node}: router {rid} "
                        f"has no surviving route toward it and the "
                        f"topology offers no detour"
                    )
                rid = channel_dst[(rid, open_ports[0])]


# ----------------------------------------------------------------------
# end-to-end recovery (checksum + timeout/retransmission)


@dataclass(frozen=True)
class RecoveryConfig:
    """End-to-end transport knobs for :func:`install_recovery`.

    ``timeout`` is the cycles a message may remain undelivered before
    its remains are purged and it is retransmitted; retransmission
    ``k`` (1-based) is delayed by ``min(backoff_base * 2**(k-1),
    backoff_cap)`` cycles.  With ``checksum`` enabled, sinks reject
    messages whose flits were corrupted in transit, triggering the same
    retransmission path.

    The timeout clock starts when the message's *header flit leaves the
    NI*, not at injection, so legitimate NI queueing (frame bursts
    paced at the stream's reserved rate) never counts against it.  The
    timeout still has to cover the message's own pacing tail — roughly
    ``message_size * vtick`` cycles under Virtual Clock — plus network
    transit and contention; shorter settings kill healthy messages and
    retransmit them in a storm.
    """

    timeout: int = 2000
    max_retries: int = 6
    backoff_base: int = 64
    backoff_cap: int = 2048
    checksum: bool = True
    #: end-to-end delivery deadline in cycles for QoS (CBR/VBR)
    #: messages, measured from the *first* attempt's injection across
    #: the whole retry chain; None disables deadline accounting
    qos_deadline: Optional[int] = None

    def __post_init__(self) -> None:
        if self.timeout < 1:
            raise FaultConfigError(
                f"timeout must be >= 1 cycle, got {self.timeout}"
            )
        if self.qos_deadline is not None and self.qos_deadline < 1:
            raise FaultConfigError(
                f"qos_deadline must be >= 1 cycle, got {self.qos_deadline}"
            )
        if self.max_retries < 0:
            raise FaultConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 1 or self.backoff_cap < self.backoff_base:
            raise FaultConfigError(
                f"need 1 <= backoff_base <= backoff_cap, got "
                f"{self.backoff_base}/{self.backoff_cap}"
            )

    def to_dict(self) -> dict:
        """JSON-plain form (chaos scenarios, repro files)."""
        return {
            "timeout": self.timeout,
            "max_retries": self.max_retries,
            "backoff_base": self.backoff_base,
            "backoff_cap": self.backoff_cap,
            "checksum": self.checksum,
            "qos_deadline": self.qos_deadline,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RecoveryConfig":
        """Rebuild a config from :meth:`to_dict` output (validated)."""
        deadline = data.get("qos_deadline")
        return cls(
            timeout=int(data.get("timeout", 2000)),
            max_retries=int(data.get("max_retries", 6)),
            backoff_base=int(data.get("backoff_base", 64)),
            backoff_cap=int(data.get("backoff_cap", 2048)),
            checksum=bool(data.get("checksum", True)),
            qos_deadline=None if deadline is None else int(deadline),
        )


@dataclass
class TransportStats:
    """End-to-end delivery accounting for one run."""

    originals: int = 0
    delivered: int = 0
    corrupt_detected: int = 0
    timeouts: int = 0
    #: messages torn down by link-level loss detection (no timeout wait)
    loss_kills: int = 0
    retransmissions: int = 0
    abandoned: int = 0
    #: per-class splits of delivered/abandoned (QoS = CBR + VBR)
    qos_delivered: int = 0
    qos_abandoned: int = 0
    be_delivered: int = 0
    be_abandoned: int = 0
    #: QoS deliveries that blew ``RecoveryConfig.qos_deadline``
    qos_deadline_misses: int = 0
    #: the subset of ``qos_abandoned`` whose source or destination was
    #: a known-isolated host at abandonment time (shed sessions, not
    #: fabric failures)
    qos_abandoned_isolated: int = 0

    @property
    def qos_delivered_fraction(self) -> float:
        """Cleanly delivered fraction of resolved QoS (CBR/VBR) messages."""
        resolved = self.qos_delivered + self.qos_abandoned
        if resolved == 0:
            return 1.0
        return self.qos_delivered / resolved

    @property
    def qos_reachable_fraction(self) -> float:
        """QoS delivered fraction over hosts the fabric can still reach.

        Excludes abandons charged to isolated hosts: when a ToR dies,
        its hosts are gone no matter how good failover is, so the
        disaster campaign judges the failover layer on the traffic it
        could conceivably have saved.
        """
        resolved = (
            self.qos_delivered
            + self.qos_abandoned
            - self.qos_abandoned_isolated
        )
        if resolved <= 0:
            return 1.0
        return self.qos_delivered / resolved

    @property
    def delivered_fraction(self) -> float:
        """Cleanly delivered fraction of the *resolved* messages.

        A message is resolved once it either delivered or exhausted its
        retries; messages still queued or awaiting a retransmission when
        the run ends are excluded rather than counted as failures.
        """
        resolved = self.delivered + self.abandoned
        if resolved == 0:
            return 1.0
        return self.delivered / resolved


class EndToEndTransport:
    """Timeout/retransmission protocol over the message service.

    Tracks every message injected while installed.  A message that
    neither delivers cleanly nor is killed by another mechanism within
    ``timeout`` cycles is presumed lost: its wedged remains are purged
    network-wide (the preemption kill machinery) and a clone is
    re-injected after a capped exponential backoff, up to
    ``max_retries`` times.  A message delivered with a failed checksum
    (corrupted flits) takes the same retransmission path without a
    purge — its flits already ejected.

    Messages killed by someone else (e.g. VC preemption, which schedules
    its own retransmission) are left to that mechanism; their clone is
    then tracked as a fresh original.
    """

    def __init__(self, network, config: RecoveryConfig) -> None:
        self.network = network
        self.config = config
        self.stats = TransportStats()
        #: msg_id -> completed retransmission count for live attempts
        self._attempt: Dict[int, int] = {}
        #: msg_id -> injection cycle of the *first* attempt; transferred
        #: across the retry chain (clones reset their own timestamps)
        #: so QoS deadline accounting spans the whole recovery effort
        self._birth: Dict[int, int] = {}
        #: trace sink installed by repro.obs.install_tracing
        self.trace = None

    # -- network hooks --------------------------------------------------

    def on_inject(self, msg) -> None:
        """Track one injected message (clones are already tracked)."""
        if msg.msg_id not in self._attempt:
            self._attempt[msg.msg_id] = 0
            self.stats.originals += 1
        if msg.msg_id not in self._birth:
            self._birth[msg.msg_id] = self.network.clock

    def on_start(self, msg, clock: int) -> None:
        """Header flit left the NI: arm the delivery timeout.

        Arming here rather than at injection keeps legitimate NI
        queueing (a frame burst paced at the stream's reserved rate can
        hold a message for most of a frame interval) off the timeout
        clock, so only in-network time counts.
        """
        if msg.msg_id not in self._attempt:
            return
        network = self.network
        network.schedule_call(
            clock + self.config.timeout, lambda m=msg: self._check(m)
        )

    def on_delivered(self, msg) -> None:
        """A tracked message delivered cleanly."""
        if self._attempt.pop(msg.msg_id, None) is None:
            return
        stats = self.stats
        stats.delivered += 1
        birth = self._birth.pop(msg.msg_id, None)
        if msg.is_real_time:
            stats.qos_delivered += 1
            deadline = self.config.qos_deadline
            if (
                deadline is not None
                and birth is not None
                and msg.deliver_time - birth > deadline
            ):
                stats.qos_deadline_misses += 1
        else:
            stats.be_delivered += 1

    def on_corrupt(self, msg, clock: int) -> None:
        """Sink checksum failure: retransmit without a purge."""
        self.stats.corrupt_detected += 1
        # Neutralise the pending timeout; nothing remains to purge.
        msg.killed = True
        self._retry(msg)

    def on_loss(self, msg) -> None:
        """A link lost one of the message's flits: tear down and retry.

        Immediate teardown keeps the broken worm from wedging its VCs
        until the timeout; the timeout stays armed as a backstop and
        sees the kill as already handled.
        """
        if msg.killed or msg.deliver_time >= 0:
            return
        self.stats.loss_kills += 1
        self.network.kill_message(msg)
        self._retry(msg)

    # -- internals ------------------------------------------------------

    def _check(self, msg) -> None:
        """Timeout fired: decide whether the message needs recovery."""
        if msg.deliver_time >= 0:
            return
        if msg.killed:
            # killed by preemption (which retransmits on its own) or by
            # an earlier recovery of this very message
            self._attempt.pop(msg.msg_id, None)
            return
        self.stats.timeouts += 1
        self.network.kill_message(msg)
        self._retry(msg)

    def _retry(self, msg) -> None:
        retries = self._attempt.pop(msg.msg_id, 0)
        birth = self._birth.pop(msg.msg_id, None)
        network = self.network
        if retries >= self.config.max_retries:
            self.stats.abandoned += 1
            if msg.is_real_time:
                self.stats.qos_abandoned += 1
                isolated = getattr(network, "isolated_hosts", None)
                if isolated and (
                    msg.src_node in isolated or msg.dst_node in isolated
                ):
                    self.stats.qos_abandoned_isolated += 1
            else:
                self.stats.be_abandoned += 1
            if self.trace is not None:
                self.trace.on_event(
                    "retransmit",
                    network.clock,
                    {
                        "msg": msg.msg_id,
                        "clone": -1,
                        "retries": retries,
                        "delay": 0,
                        "abandoned": True,
                    },
                )
            return
        clone = msg.clone()
        self._attempt[clone.msg_id] = retries + 1
        if birth is not None:
            self._birth[clone.msg_id] = birth
        self.stats.retransmissions += 1
        delay = min(
            self.config.backoff_base << retries, self.config.backoff_cap
        )
        network.schedule_call(
            network.clock + delay, lambda m=clone: network.inject_now(m)
        )
        if self.trace is not None:
            self.trace.on_event(
                "retransmit",
                network.clock,
                {
                    "msg": msg.msg_id,
                    "clone": clone.msg_id,
                    "retries": retries,
                    "delay": delay,
                    "abandoned": False,
                },
            )


def install_recovery(network, config: RecoveryConfig) -> EndToEndTransport:
    """Attach the end-to-end transport to an assembled network.

    Wires the injection hook (timeout arming) and, when ``checksum`` is
    enabled, the per-sink corrupt-delivery callback.  Returns the
    installed :class:`EndToEndTransport`.
    """
    transport = EndToEndTransport(network, config)
    network.transport = transport
    for ni in network.interfaces.values():
        ni.on_start = transport.on_start
    if config.checksum:
        for sink in network.sinks.values():
            sink.on_corrupt = transport.on_corrupt
    return transport
