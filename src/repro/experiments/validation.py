"""Machine-checkable versions of the paper's qualitative claims.

Every figure's headline statements ("jitter-free up to 0.8 regardless
of mix", "PCS drops a large number of connections", ...) are encoded
here as named checks over the reproduced sweep data.  The benchmark
suite asserts them; ``mediaworm run <fig> --check`` prints a verdict
per claim; and EXPERIMENTS.md records where they hold.

A check returns a :class:`ClaimResult` rather than raising, so a report
can show *all* verdicts at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.analysis import (
    dominates,
    is_jitter_free_point,
    max_jitter_free_load,
    monotonic_tail,
)
from repro.errors import ConfigurationError
from repro.experiments.figures import FigureData


@dataclass(frozen=True)
class ClaimResult:
    """Verdict for one paper claim."""

    claim: str
    passed: bool
    detail: str = ""

    def __bool__(self) -> bool:
        return self.passed


def _result(claim: str, passed: bool, detail: str = "") -> ClaimResult:
    return ClaimResult(claim=claim, passed=bool(passed), detail=detail)


# ----------------------------------------------------------------------
# per-figure claim checkers


def check_fig3(fig: FigureData) -> List[ClaimResult]:
    """Virtual Clock vs FIFO."""
    vclock = fig.series["virtual_clock"]
    fifo = fig.series["fifo"]
    vc_limit = max_jitter_free_load(vclock, sigma_tolerance_ms=1.0) or 0.0
    results = [
        _result(
            "Virtual Clock is jitter-free deep into the sweep (>= 0.9)",
            vc_limit >= 0.9,
            f"jitter-free limit = {vc_limit:g}",
        ),
        _result(
            "Virtual Clock never jitters more than FIFO",
            dominates(vclock, fifo, key=lambda p: p.sigma_d, slack=0.3),
        ),
        _result(
            "FIFO is behind at the top of the sweep",
            fifo[-1].sigma_d + fifo[-1].d
            >= vclock[-1].sigma_d + vclock[-1].d,
            f"FIFO d+sigma = {fifo[-1].d + fifo[-1].sigma_d:.2f}, "
            f"VC = {vclock[-1].d + vclock[-1].sigma_d:.2f}",
        ),
    ]
    return results


def check_fig4(fig: FigureData) -> List[ClaimResult]:
    """CBR vs VBR."""
    vbr, cbr = fig.series["vbr"], fig.series["cbr"]
    limit_v = max_jitter_free_load(vbr, sigma_tolerance_ms=1.0) or 0.0
    limit_c = max_jitter_free_load(cbr, sigma_tolerance_ms=1.0) or 0.0
    close = all(
        abs(a.d - b.d) < 1.5 for a, b in list(zip(cbr, vbr))[:-1]
    )
    return [
        _result(
            "both classes jitter-free through load 0.8",
            limit_v >= 0.8 and limit_c >= 0.8,
            f"VBR limit {limit_v:g}, CBR limit {limit_c:g}",
        ),
        _result(
            "CBR never jitters more than VBR",
            dominates(cbr, vbr, key=lambda p: p.sigma_d, slack=0.2),
        ),
        _result("nearly identical performance", close),
    ]


def check_fig5(fig: FigureData) -> List[ClaimResult]:
    """Traffic mixes."""
    results = []
    for load in (0.6, 0.7, 0.8):
        key = f"load={load:g}"
        if key not in fig.series:
            continue
        ok = all(
            is_jitter_free_point(p.d, p.sigma_d, sigma_tolerance_ms=1.0)
            for p in fig.series[key]
        )
        results.append(
            _result(f"no jitter at load {load:g} for any mix", ok)
        )
    top_key = max(fig.series, key=lambda k: float(k.split("=")[1]))
    top = fig.series[top_key]
    worst = max(top, key=lambda p: p.sigma_d)
    rt_share = float(str(worst.x).split(":")[0])
    results.append(
        _result(
            "worst jitter at the top load belongs to a real-time-"
            "dominant mix",
            rt_share >= 80,
            f"worst mix at {top_key}: {worst.x} "
            f"(sigma_d = {worst.sigma_d:.2f})",
        )
    )
    return results


def check_fig6(fig: FigureData) -> List[ClaimResult]:
    """VC count and crossbar capability."""
    limit = lambda pts: max_jitter_free_load(pts, sigma_tolerance_ms=1.0) or 0.0
    vcs16 = fig.series["16 VCs, multiplexed"]
    vcs8 = fig.series["8 VCs, multiplexed"]
    vcs4 = fig.series["4 VCs, multiplexed"]
    full4 = fig.series["4 VCs, full crossbar"]
    return [
        _result(
            "more VCs never shrink the jitter-free region",
            limit(vcs16) >= limit(vcs8) >= limit(vcs4),
            f"limits: 16={limit(vcs16):g} 8={limit(vcs8):g} "
            f"4={limit(vcs4):g}",
        ),
        _result(
            "full crossbar beats the multiplexed crossbar at 4 VCs",
            limit(full4) >= limit(vcs4)
            and dominates(full4, vcs4, key=lambda p: p.sigma_d, slack=0.3),
        ),
        _result(
            "full crossbar at 4 VCs competitive with 16 multiplexed VCs",
            limit(full4) >= limit(vcs16) - 0.15,
            f"full4 limit {limit(full4):g} vs 16VC limit {limit(vcs16):g}",
        ),
    ]


def check_fig7(fig: FigureData) -> List[ClaimResult]:
    """Message size."""
    low_key = min(fig.series, key=lambda k: float(k.split("=")[1]))
    high_key = max(fig.series, key=lambda k: float(k.split("=")[1]))
    low, high = fig.series[low_key], fig.series[high_key]
    d_values = [p.d for p in high]
    return [
        _result(
            f"every size jitter-free at {low_key}",
            all(
                is_jitter_free_point(p.d, p.sigma_d, sigma_tolerance_ms=1.0)
                for p in low
            ),
        ),
        _result(
            "mean delivery interval insensitive to message size",
            max(d_values) - min(d_values) < 1.0,
            f"d spread = {max(d_values) - min(d_values):.3f} ms",
        ),
        _result(
            "the paper's 20-flit default is jitter-free at the high load",
            next(p for p in high if p.x == 20).sigma_d < 1.0,
        ),
    ]


def check_fig8(fig: FigureData) -> List[ClaimResult]:
    """MediaWorm vs PCS."""
    wormhole, pcs = fig.series["wormhole"], fig.series["pcs"]
    wh_limit = max_jitter_free_load(wormhole, sigma_tolerance_ms=1.0) or 0.0
    pcs_limit = max_jitter_free_load(pcs, sigma_tolerance_ms=1.0) or 0.0
    drops = [p.extra.get("dropped", 0) for p in pcs]
    top = pcs[-1].extra
    mid = min(pcs, key=lambda p: abs(p.x - 0.7)).extra
    return [
        _result(
            "wormhole jitter-free at realistic loads (>= 0.6)",
            wh_limit >= 0.6,
            f"limit = {wh_limit:g}",
        ),
        _result(
            "PCS holds jitter-free at least as far as wormhole",
            pcs_limit >= wh_limit,
            f"PCS {pcs_limit:g} vs wormhole {wh_limit:g}",
        ),
        _result("PCS drop counts rise with load", drops[-1] > drops[0]),
        _result(
            "a large share of attempts dropped near saturation",
            top.get("dropped", 0) >= 0.3 * max(1, top.get("attempts", 0)),
            f"{top.get('dropped')}/{top.get('attempts')} at the top load",
        ),
        _result(
            "~half or more of attempts turned down around load 0.7",
            mid.get("dropped", 0) >= 0.4 * max(1, mid.get("attempts", 0)),
            f"{mid.get('dropped')}/{mid.get('attempts')}",
        ),
    ]


def check_fig9(fig: FigureData) -> List[ClaimResult]:
    """Fat mesh."""
    results = []
    for key, points in fig.series.items():
        moderate = [
            p for p in points if float(str(p.x).split(":")[0]) <= 60
        ]
        results.append(
            _result(
                f"moderate mixes jitter-free at {key}",
                all(
                    is_jitter_free_point(
                        p.d, p.sigma_d, sigma_tolerance_ms=1.5
                    )
                    for p in moderate
                ),
            )
        )
        latencies = [p.be_latency_us for p in points]
        results.append(
            _result(
                f"best-effort latency rises with the VBR share at {key}",
                monotonic_tail(
                    latencies, tolerance=0.25 * max(latencies)
                ),
            )
        )
    worst = max(
        (p for pts in fig.series.values() for p in pts),
        key=lambda p: p.sigma_d,
    )
    results.append(
        _result(
            "any real degradation concentrates in VBR-dominant mixes",
            worst.sigma_d <= 1.5
            or float(str(worst.x).split(":")[0]) >= 60,
            f"worst point: {worst.x} (sigma_d = {worst.sigma_d:.2f})",
        )
    )
    return results


CHECKERS: Dict[str, Callable[[FigureData], List[ClaimResult]]] = {
    "fig3": check_fig3,
    "fig4": check_fig4,
    "fig5": check_fig5,
    "fig6": check_fig6,
    "fig7": check_fig7,
    "fig8": check_fig8,
    "fig9": check_fig9,
}


def check_claims(fig: FigureData) -> List[ClaimResult]:
    """Run the registered claims for ``fig`` (by its figure_id)."""
    checker = CHECKERS.get(fig.figure_id)
    if checker is None:
        raise ConfigurationError(
            f"no claims registered for figure {fig.figure_id!r}"
        )
    return checker(fig)


def claims_to_text(results: List[ClaimResult]) -> str:
    """Render verdicts as a checklist."""
    lines = []
    for result in results:
        mark = "PASS" if result.passed else "FAIL"
        line = f"[{mark}] {result.claim}"
        if result.detail:
            line += f"  ({result.detail})"
        lines.append(line)
    return "\n".join(lines)
