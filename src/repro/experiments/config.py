"""Experiment configurations (Table 1 defaults + per-study knobs).

The paper's Table 1: 8x8 switch, 32-bit flits, 20-flit messages,
400 Mbps PCs (100 Mbps for the PCS comparison), a variable number of
VCs per PC (16 in most studies; 24 in the PCS study, one stream per VC).

``scale`` is the workload shrink factor (see
:class:`repro.sim.units.WorkloadScale`); the default of 20 keeps each
sweep point to seconds of wall time while preserving every bandwidth
ratio.  Set ``scale=1`` for paper-faithful time constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.schedulers import SchedulingPolicy
from repro.errors import ConfigurationError
from repro.faults import FaultPlan, RecoveryConfig
from repro.network.health import HealthConfig
from repro.obs.events import TraceSpec
from repro.router.config import (
    CrossbarKind,
    QosPlacement,
    RouterConfig,
    RoutingMode,
)
from repro.router.flit import TrafficClass
from repro.sim.units import LinkSpec, TimeBase, WorkloadScale
from repro.traffic.mix import TrafficMix, WorkloadConfig, rt_vc_count


@dataclass
class _BaseExperiment:
    """Knobs shared by every experiment type."""

    load: float = 0.8
    mix: Tuple[float, float] = (80.0, 20.0)
    rt_class: str = TrafficClass.VBR
    scheduler: str = SchedulingPolicy.VIRTUAL_CLOCK
    qos_placement: str = QosPlacement.AUTO
    crossbar: str = CrossbarKind.MULTIPLEXED
    vcs_per_pc: int = 16
    bandwidth_mbps: float = 400.0
    flit_size_bits: int = 32
    message_size: int = 20
    header_flits: int = 0
    flit_buffer_depth: int = 8
    scale: float = 20.0
    #: measurement horizon, in 33 ms frame epochs
    warmup_frames: int = 4
    measure_frames: int = 16
    seed: int = 1
    dynamic_partitioning: bool = False
    #: round-robin (balanced) stream destinations vs i.i.d. draws
    balanced_destinations: bool = True
    #: best-effort inter-arrival process: "deterministic" or "poisson"
    be_process: str = "deterministic"
    #: optional fault-injection plan; a zero plan (or None) leaves the
    #: run bit-identical to a fault-free simulation
    faults: Optional[FaultPlan] = None
    #: optional end-to-end checksum + timeout/retransmission transport
    recovery: Optional[RecoveryConfig] = None
    #: progress watchdog: raise DeadlockError after this many cycles
    #: without a flit delivery while flits are in flight (None = off)
    watchdog_window: Optional[int] = None
    #: optional symptom-based link-health monitoring (failover studies);
    #: None leaves zero-fault runs bit-identical to unmonitored ones
    health: Optional[HealthConfig] = None
    #: fault reaction of the routers: "oracle" (ground truth, the
    #: historical behaviour), "static" (blind), or "adaptive"
    #: (symptom-driven masking/detours via the health monitor)
    routing_mode: str = RoutingMode.ORACLE
    #: optional structured-tracing request (``mediaworm trace``, tests);
    #: None keeps every hook on its zero-overhead path
    trace: Optional[TraceSpec] = None
    #: profile the simulation loop per phase into ``RunMetrics.profile``
    #: (wall time only; the simulation itself stays bit-identical)
    profile_loop: bool = False
    #: simulation engine: "object" (reference) or "array" (fused dense
    #: datapath; bit-identical, falls back to object for cold features)
    engine: str = "object"

    def __post_init__(self) -> None:
        if self.warmup_frames < 1 or self.measure_frames < 1:
            raise ConfigurationError("need at least one warmup/measure frame")
        if len(self.mix) != 2:
            raise ConfigurationError(f"mix must be (x, y), got {self.mix!r}")

    # -- derived objects ------------------------------------------------

    @property
    def traffic_mix(self) -> TrafficMix:
        return TrafficMix(*self.mix)

    @property
    def link(self) -> LinkSpec:
        return LinkSpec(self.bandwidth_mbps, self.flit_size_bits)

    @property
    def workload_scale(self) -> WorkloadScale:
        return WorkloadScale(self.scale)

    @property
    def timebase(self) -> TimeBase:
        return TimeBase(self.link, self.workload_scale)

    def workload_config(self) -> WorkloadConfig:
        return WorkloadConfig(
            link=self.link,
            scale=self.workload_scale,
            load=self.load,
            mix=self.traffic_mix,
            rt_class=self.rt_class,
            message_size=self.message_size,
            header_flits=self.header_flits,
            balanced_destinations=self.balanced_destinations,
            be_process=self.be_process,
        )

    def router_config(self, num_ports: int) -> RouterConfig:
        return RouterConfig(
            num_ports=num_ports,
            vcs_per_pc=self.vcs_per_pc,
            flit_buffer_depth=self.flit_buffer_depth,
            crossbar=self.crossbar,
            qos_policy=self.scheduler,
            qos_placement=self.qos_placement,
            rt_vc_count=rt_vc_count(self.vcs_per_pc, self.traffic_mix),
            dynamic_partitioning=self.dynamic_partitioning,
            routing_mode=self.routing_mode,
        )

    @property
    def warmup_cycles(self) -> int:
        interval = self.workload_config().frame_interval_cycles
        return self.warmup_frames * interval

    @property
    def total_cycles(self) -> int:
        interval = self.workload_config().frame_interval_cycles
        return (self.warmup_frames + self.measure_frames) * interval


@dataclass
class SingleSwitchExperiment(_BaseExperiment):
    """One run on the paper's main testbed: an n-port single switch."""

    num_ports: int = 8


@dataclass
class FatMeshExperiment(_BaseExperiment):
    """One run on a fat mesh (section 5.7; defaults are the 2x2 mesh)."""

    rows: int = 2
    cols: int = 2
    hosts_per_router: int = 4
    fat_width: int = 2


@dataclass
class FatTreeExperiment(_BaseExperiment):
    """One run on a two-level fat tree (beyond the paper's topologies)."""

    leaves: int = 4
    spines: int = 2
    hosts_per_leaf: int = 2
    fat_width: int = 1


@dataclass
class FatTree3Experiment(_BaseExperiment):
    """One run on a 3-level k-ary fat tree (the datacenter scale-up).

    ``k=16`` with the default ``hosts_per_leaf`` (``k/2``) is the
    1024-host configuration the scale campaign proves out.
    """

    k: int = 4
    #: hosts per leaf switch; None = the full k/2 of a classic fat tree
    hosts_per_leaf: Optional[int] = None
    fat_width: int = 1


@dataclass
class ButterflyExperiment(_BaseExperiment):
    """One run on a k-ary n-tree (folded multistage Clos/Butterfly)."""

    arity: int = 2
    levels: int = 3
    #: hosts per leaf switch; None = arity
    hosts_per_leaf: Optional[int] = None
    fat_width: int = 1


@dataclass
class PCSExperiment(_BaseExperiment):
    """One run of the PCS comparison (section 5.6; 100 Mbps, 24 VCs).

    Streams arrive over ``arrival_window_frames`` epochs; a stream whose
    setup probe is NACKed retries after a random backoff, up to
    ``max_retries`` times.  Every failed attempt counts as a *dropped
    connection* (Table 3: attempts = established + dropped).
    """

    bandwidth_mbps: float = 100.0
    vcs_per_pc: int = 24
    mix: Tuple[float, float] = (100.0, 0.0)
    num_ports: int = 8
    max_retries: int = 8
    arrival_window_frames: int = 2
    #: mean setup-retry backoff, as a fraction of the frame interval
    backoff_fraction: float = 0.1
    #: per-hop latency of the setup probe and of the returning ack, cycles
    setup_hop_cycles: int = 16

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if not 0 < self.backoff_fraction <= 1:
            raise ConfigurationError("backoff_fraction must be in (0, 1]")
