"""Sweep resilience: checkpointing and retry-with-reseed.

Long sweeps (``mediaworm all``, fault campaigns) should survive two
kinds of trouble:

* **the process dying** — every completed unit of work is persisted to
  a JSON checkpoint (atomic write: temp file + rename), so a rerun
  skips finished work instead of recomputing it;
* **a single point failing** — a :class:`~repro.errors.SimulationError`
  (including the watchdog's :class:`~repro.errors.DeadlockError`) at
  one sweep point triggers a bounded retry with a reseeded experiment
  rather than aborting the whole campaign.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import threading
from contextlib import contextmanager
from dataclasses import replace
from typing import Callable, Dict, Optional

from repro.errors import PointTimeoutError, SimulationError

logger = logging.getLogger(__name__)

#: seed offset between retry attempts (a prime, so reseeded retries of
#: neighbouring points never collide on the same effective seed)
RESEED_STEP = 1009

_FORMAT = "mediaworm-checkpoint-v1"


@contextmanager
def wall_clock_limit(seconds: Optional[float]):
    """Bound a block of code to ``seconds`` of wall-clock time.

    Raises :class:`~repro.errors.PointTimeoutError` when the limit
    fires, turning a hung simulation into an ordinary failed point.
    Implemented with ``SIGALRM``/``setitimer``, so it only arms on
    platforms that have it and only from a main thread (every sweep
    worker's task runs in its worker process's main thread); anywhere
    else the block runs unbounded rather than failing to start.
    ``None`` or a non-positive limit disables the guard.
    """
    if (
        seconds is None
        or seconds <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _fire(signum, frame):
        raise PointTimeoutError(
            f"wall-clock limit of {seconds:g}s exceeded"
        )

    previous = signal.signal(signal.SIGALRM, _fire)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


class SweepCheckpoint:
    """A JSON checkpoint of completed sweep work.

    ``meta`` identifies the sweep (profile, rates, ...); loading a file
    whose metadata disagrees discards it, so a checkpoint can never
    splice results from a differently configured run into this one.
    Values must be JSON-serialisable.
    """

    def __init__(self, path: str, meta: Dict[str, object]) -> None:
        self.path = str(path)
        self.meta = dict(meta)
        self._done: Dict[str, object] = {}
        self._load()

    def _load(self) -> None:
        raw = self._read(self.path)
        if raw is None:
            # A crash between writing the temp file and the atomic
            # rename leaves a complete checkpoint at <path>.tmp with
            # nothing (or a truncated file) at <path>; recover it.
            raw = self._read(f"{self.path}.tmp")
            if raw is not None:
                logger.warning(
                    "checkpoint %s: recovered from partial write "
                    "(loading %s.tmp left by a crash)",
                    self.path,
                    self.path,
                )
        if raw is None:
            return
        if raw.get("meta") != self.meta:
            logger.warning(
                "checkpoint %s: metadata %r does not match this sweep's "
                "%r; discarding it and recomputing from scratch",
                self.path,
                raw.get("meta"),
                self.meta,
            )
            return
        done = raw.get("done")
        if isinstance(done, dict):
            self._done = done

    def _read(self, path: str) -> Optional[Dict[str, object]]:
        """Parse one candidate checkpoint file, or ``None`` with a reason.

        Missing files are silent (the normal first-run case); corrupt
        JSON and format mismatches warn, naming the path and the cause,
        so an operator knows the rerun is recomputing from scratch.
        """
        try:
            with open(path, "r", encoding="utf-8") as fh:
                raw = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            logger.warning(
                "checkpoint %s: unreadable (%s: %s); completed work "
                "recorded there will be recomputed",
                path,
                type(exc).__name__,
                exc,
            )
            return None
        if not isinstance(raw, dict) or raw.get("format") != _FORMAT:
            logger.warning(
                "checkpoint %s: unrecognised format %r (expected %r); "
                "discarding it",
                path,
                raw.get("format") if isinstance(raw, dict) else type(raw),
                _FORMAT,
            )
            return None
        return raw

    def _save(self) -> None:
        payload = {"format": _FORMAT, "meta": self.meta, "done": self._done}
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    def get(self, key: str):
        """The stored value for ``key``, or ``None`` when not done."""
        return self._done.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._done

    def put(self, key: str, value) -> None:
        """Record one completed unit of work and persist immediately."""
        self._done[key] = value
        self._save()

    @property
    def done_keys(self):
        """Keys completed so far, in completion order."""
        return list(self._done)

    def clear(self) -> None:
        """Delete the checkpoint file (sweep finished or restarted)."""
        self._done = {}
        for path in (self.path, f"{self.path}.tmp"):
            try:
                os.remove(path)
            except OSError:
                pass


def run_resilient(
    runner: Callable,
    experiment,
    attempts: int = 3,
    reseed_step: int = RESEED_STEP,
    cycle_budget: Optional[int] = None,
    on_retry: Optional[Callable[[int, SimulationError], None]] = None,
):
    """Run one sweep point, retrying with a fresh seed on failure.

    ``cycle_budget`` arms the progress watchdog for experiments that do
    not set one themselves, bounding how long a wedged point can burn
    before its :class:`~repro.errors.DeadlockError` triggers the retry.
    The last attempt's error propagates when every retry fails.
    """
    if attempts < 1:
        raise SimulationError(f"need at least one attempt, got {attempts}")
    if cycle_budget is not None and experiment.watchdog_window is None:
        experiment = replace(experiment, watchdog_window=cycle_budget)
    last_error: Optional[SimulationError] = None
    for attempt in range(attempts):
        trial = (
            experiment
            if attempt == 0
            else replace(experiment, seed=experiment.seed + attempt * reseed_step)
        )
        try:
            return runner(trial)
        except SimulationError as exc:
            last_error = exc
            if on_retry is not None:
                on_retry(attempt, exc)
    raise last_error
