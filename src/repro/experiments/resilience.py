"""Sweep resilience: checkpointing and retry-with-reseed.

Long sweeps (``mediaworm all``, fault campaigns) should survive two
kinds of trouble:

* **the process dying** — every completed unit of work is persisted to
  a JSON checkpoint (atomic write: temp file + rename), so a rerun
  skips finished work instead of recomputing it;
* **a single point failing** — a :class:`~repro.errors.SimulationError`
  (including the watchdog's :class:`~repro.errors.DeadlockError`) at
  one sweep point triggers a bounded retry with a reseeded experiment
  rather than aborting the whole campaign.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from typing import Callable, Dict, Optional

from repro.errors import SimulationError

#: seed offset between retry attempts (a prime, so reseeded retries of
#: neighbouring points never collide on the same effective seed)
RESEED_STEP = 1009

_FORMAT = "mediaworm-checkpoint-v1"


class SweepCheckpoint:
    """A JSON checkpoint of completed sweep work.

    ``meta`` identifies the sweep (profile, rates, ...); loading a file
    whose metadata disagrees discards it, so a checkpoint can never
    splice results from a differently configured run into this one.
    Values must be JSON-serialisable.
    """

    def __init__(self, path: str, meta: Dict[str, object]) -> None:
        self.path = str(path)
        self.meta = dict(meta)
        self._done: Dict[str, object] = {}
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                raw = json.load(fh)
        except (OSError, ValueError):
            return
        if (
            not isinstance(raw, dict)
            or raw.get("format") != _FORMAT
            or raw.get("meta") != self.meta
        ):
            return
        done = raw.get("done")
        if isinstance(done, dict):
            self._done = done

    def _save(self) -> None:
        payload = {"format": _FORMAT, "meta": self.meta, "done": self._done}
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        os.replace(tmp, self.path)

    def get(self, key: str):
        """The stored value for ``key``, or ``None`` when not done."""
        return self._done.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._done

    def put(self, key: str, value) -> None:
        """Record one completed unit of work and persist immediately."""
        self._done[key] = value
        self._save()

    @property
    def done_keys(self):
        """Keys completed so far, in completion order."""
        return list(self._done)

    def clear(self) -> None:
        """Delete the checkpoint file (sweep finished or restarted)."""
        self._done = {}
        try:
            os.remove(self.path)
        except OSError:
            pass


def run_resilient(
    runner: Callable,
    experiment,
    attempts: int = 3,
    reseed_step: int = RESEED_STEP,
    cycle_budget: Optional[int] = None,
    on_retry: Optional[Callable[[int, SimulationError], None]] = None,
):
    """Run one sweep point, retrying with a fresh seed on failure.

    ``cycle_budget`` arms the progress watchdog for experiments that do
    not set one themselves, bounding how long a wedged point can burn
    before its :class:`~repro.errors.DeadlockError` triggers the retry.
    The last attempt's error propagates when every retry fails.
    """
    if attempts < 1:
        raise SimulationError(f"need at least one attempt, got {attempts}")
    if cycle_budget is not None and experiment.watchdog_window is None:
        experiment = replace(experiment, watchdog_window=cycle_budget)
    last_error: Optional[SimulationError] = None
    for attempt in range(attempts):
        trial = (
            experiment
            if attempt == 0
            else replace(experiment, seed=experiment.seed + attempt * reseed_step)
        )
        try:
            return runner(trial)
        except SimulationError as exc:
            last_error = exc
            if on_retry is not None:
                on_retry(attempt, exc)
    raise last_error
