"""Disaster campaign: datacenter failover under switch/domain failures.

The failover campaign (``mediaworm failover``) kills individual fat-link
members on a mesh.  This campaign asks the datacenter question: when
failures arrive *switch- and domain-shaped* — a ToR dies, a whole pod
loses power — how much guaranteed traffic survives on the fabrics we
actually scaled to (three-level fat trees and butterflies), and what
does symptom-driven switch-level failover buy over a blind static
router?

Severity is swept as an escalation ladder:

* ``none`` — healthy fabric baseline;
* ``link`` — one up-adjacency of leaf 0 severed (both directions);
* ``switch`` — a whole switch crashes permanently (the first ToR on the
  fat tree, sacrificing its hosts; a middle-stage switch on the
  butterfly, which the alternate-ancestor overlay survives hostlessly);
* ``pod`` — pod 0 of the fat tree loses power (fat tree only).

Each severity lowers to a :class:`~repro.faults.DomainDownWindow` (or
plain link windows) landing at the end of warmup.  The two series per
topology are the routing modes: ``adaptive`` detects the dead switch
from link symptoms, applies the precomputed
:class:`~repro.router.routeprog.UpDownFailover` masks so every
surviving pair re-steers through alternate ancestors, and sheds the
sessions of provably isolated hosts; ``static`` keeps the detection
telemetry but takes no action, so only timeout/retransmission limits
the damage.

Reported per point: delivered QoS fraction over *reachable* hosts (the
honest failover score — a dead ToR's hosts are unsavable), hosts
isolated, host downtime, switch downs/time-to-recover, and jitter.
Points are checkpointed with fingerprinted keys through
:class:`~repro.experiments.parallel.ParallelSweepExecutor`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.experiments.config import ButterflyExperiment, FatTree3Experiment
from repro.experiments.faultsweep import (
    _empty_metrics,
    _point_from_dict,
    _point_to_dict,
)
from repro.experiments.figures import (
    FigureData,
    Point,
    _base_kwargs,
    get_profile,
)
from repro.experiments.parallel import (
    ParallelSweepExecutor,
    SweepTask,
    sweep_fingerprint,
)
from repro.experiments.resilience import SweepCheckpoint
from repro.experiments.runner import simulate_butterfly, simulate_fat_tree3
from repro.faults import DomainDownWindow, FaultPlan, RecoveryConfig
from repro.network.health import HealthConfig
from repro.network.topology import butterfly, fat_tree3
from repro.router.config import RoutingMode

#: escalation ladder swept by ``mediaworm disaster``
DEFAULT_SEVERITIES = ("none", "link", "switch", "pod")

#: routing modes compared, one series each per topology
CAMPAIGN_MODES = (RoutingMode.ADAPTIVE, RoutingMode.STATIC)

#: campaign topologies (name -> severities it supports)
CAMPAIGN_TOPOLOGIES: Dict[str, Tuple[str, ...]] = {
    "fat-tree": ("none", "link", "switch", "pod"),
    "butterfly": ("none", "link", "switch"),
}

#: campaign operating point: moderate load, the paper's 80:20 mix
CAMPAIGN_LOAD = 0.6
CAMPAIGN_MIX = (80, 20)

#: fat tree shape: k=8 (80 switches), 2 hosts per leaf = 64 hosts —
#: the smallest tree where a pod kill leaves 3/4 of the fabric healthy
CAMPAIGN_K = 8
CAMPAIGN_HOSTS_PER_LEAF = 2

#: butterfly shape: 2-ary 3-tree, 2 hosts per leaf
CAMPAIGN_ARITY = 2
CAMPAIGN_LEVELS = 3


def _campaign_topology(kind: str):
    """The concrete topology a campaign point runs on."""
    if kind == "fat-tree":
        return fat_tree3(
            CAMPAIGN_K, hosts_per_leaf=CAMPAIGN_HOSTS_PER_LEAF
        )
    return butterfly(
        CAMPAIGN_ARITY,
        CAMPAIGN_LEVELS,
        hosts_per_leaf=CAMPAIGN_HOSTS_PER_LEAF,
    )


def _first_uplink_domain(topology, onset: int) -> DomainDownWindow:
    """A ``links:`` domain severing leaf 0's first up-adjacency.

    Both directions die (a severed wire), chosen deterministically as
    the lowest-labelled channel pair between leaf 0 and its first
    parent so fingerprints are stable.
    """
    overlay = topology.routing.overlay
    # leaves only wire upward, so every adjacency neighbour is a parent
    parent = min(nbr for (rid, nbr) in overlay.adjacency if rid == 0)
    labels = sorted(
        f"ch:{src}.{sp}->{dst}.{dp}"
        for src, sp, dst, dp in topology.channels
        if (src, dst) in ((0, parent), (parent, 0))
    )
    return DomainDownWindow(
        domain="links:" + ";".join(labels), start=onset
    )


def _severity_plan(kind: str, severity: str, onset: int) -> FaultPlan:
    """Lower one severity rung into a fault plan for ``kind``."""
    if severity not in CAMPAIGN_TOPOLOGIES[kind]:
        raise ConfigurationError(
            f"severity {severity!r} is not defined for {kind} "
            f"(choose from {', '.join(CAMPAIGN_TOPOLOGIES[kind])})"
        )
    if severity == "none":
        return FaultPlan()
    topology = _campaign_topology(kind)
    if severity == "link":
        return FaultPlan(domains=(_first_uplink_domain(topology, onset),))
    if severity == "switch":
        if kind == "fat-tree":
            rid = 0  # the first ToR: its hosts are a deliberate sacrifice
        else:
            # a middle-stage switch: no hosts attached, the overlay
            # must keep every pair routable
            rid = CAMPAIGN_ARITY ** (CAMPAIGN_LEVELS - 1)
        return FaultPlan(
            domains=(DomainDownWindow(f"switch:{rid}", start=onset),)
        )
    # pod (fat tree only, enforced above)
    return FaultPlan(domains=(DomainDownWindow("pod:0", start=onset),))


def _campaign_experiment(profile, kind: str, mode: str, severity: str):
    """One campaign point: tree/butterfly + domain failure + failover."""
    base_kwargs = dict(
        load=CAMPAIGN_LOAD,
        mix=CAMPAIGN_MIX,
        vcs_per_pc=16,
        **_base_kwargs(profile),
    )
    if kind == "fat-tree":
        base = FatTree3Experiment(
            k=CAMPAIGN_K,
            hosts_per_leaf=CAMPAIGN_HOSTS_PER_LEAF,
            **base_kwargs,
        )
    else:
        base = ButterflyExperiment(
            arity=CAMPAIGN_ARITY,
            levels=CAMPAIGN_LEVELS,
            hosts_per_leaf=CAMPAIGN_HOSTS_PER_LEAF,
            **base_kwargs,
        )
    interval = base.workload_config().frame_interval_cycles
    # The disaster lands at the end of warmup: detection, failover and
    # every recovery interval sit inside the measurement window.
    onset = base.warmup_cycles
    timeout = max(512, interval // 2)
    recovery = RecoveryConfig(
        timeout=timeout,
        max_retries=8,
        backoff_base=max(16, interval // 256),
        backoff_cap=max(64, interval // 16),
        qos_deadline=2 * interval,
    )
    return dataclasses.replace(
        base,
        faults=_severity_plan(kind, severity, onset),
        recovery=recovery,
        health=HealthConfig(),
        routing_mode=mode,
        # a crashed switch stalls progress until detection converges;
        # give the watchdog four intervals unless the profile overrides
        watchdog_window=profile.watchdog_window or 4 * interval,
    )


def _campaign_point(experiment) -> Point:
    """Worker body: run one point, reduced to its figure Point.

    Module-level (picklable) so the parallel executor can farm points
    out; ``x`` is the severity's rung on the escalation ladder.
    """
    if isinstance(experiment, FatTree3Experiment):
        result = simulate_fat_tree3(experiment)
    else:
        result = simulate_butterfly(experiment)
    severity = _experiment_severity(experiment)
    extra = dict(result.fault_stats or {})
    extra["severity"] = severity
    return Point(
        DEFAULT_SEVERITIES.index(severity), result.metrics, extra=extra
    )


def _experiment_severity(experiment) -> str:
    """Recover the severity rung from a point's fault plan."""
    plan = experiment.faults
    if plan is None or plan.is_zero:
        return "none"
    domain = plan.domains[0].domain
    if domain.startswith("links:"):
        return "link"
    if domain.startswith("switch:"):
        return "switch"
    return "pod"


def _point_key(kind: str, mode: str, severity: str, experiment) -> str:
    """Fingerprinted checkpoint/result key for one point."""
    return f"{kind}/{mode}@{severity}|{sweep_fingerprint(experiment)}"


def run_disaster_campaign(
    profile="default",
    severities: Optional[Sequence[str]] = None,
    checkpoint: Optional[SweepCheckpoint] = None,
    log=None,
    executor: Optional[ParallelSweepExecutor] = None,
) -> FigureData:
    """Sweep failure severity for adaptive vs static on tree fabrics.

    Semantics mirror :func:`~repro.experiments.failover
    .run_failover_campaign`: completed points persist to the checkpoint
    and are skipped on rerun, a point that fails every resilient retry
    records a ``failed`` extra instead of aborting, and an executor
    with ``jobs > 1`` runs points in a process pool bit-identically to
    the serial path.  Severities a topology does not define (``pod`` on
    the butterfly) are skipped for that topology.
    """
    profile = get_profile(profile)
    severities = (
        DEFAULT_SEVERITIES if severities is None else tuple(severities)
    )
    for severity in severities:
        if severity not in DEFAULT_SEVERITIES:
            raise ConfigurationError(
                f"unknown severity {severity!r} (choose from "
                f"{', '.join(DEFAULT_SEVERITIES)})"
            )
    if executor is None:
        executor = ParallelSweepExecutor(jobs=1, log=log)
    points = [
        (kind, mode, severity)
        for kind in CAMPAIGN_TOPOLOGIES
        for mode in CAMPAIGN_MODES
        for severity in severities
        if severity in CAMPAIGN_TOPOLOGIES[kind]
    ]
    experiments = {
        point: _campaign_experiment(profile, *point) for point in points
    }
    keys = {
        point: _point_key(*point, experiments[point]) for point in points
    }
    tasks = [
        SweepTask(
            key=keys[point],
            runner=_campaign_point,
            experiment=experiments[point],
        )
        for point in points
    ]
    if checkpoint is not None and log is not None:
        for task in tasks:
            if task.key in checkpoint:
                log(f"[disaster] {task.key}: restored from checkpoint")

    failed: Dict[str, Point] = {}

    def on_failure(task: SweepTask, exc: SimulationError) -> None:
        severity = _experiment_severity(task.experiment)
        point = Point(
            DEFAULT_SEVERITIES.index(severity),
            _empty_metrics(),
            extra={
                "failed": f"{type(exc).__name__}: {exc}",
                "severity": severity,
            },
        )
        failed[task.key] = point
        if checkpoint is not None:
            checkpoint.put(task.key, _point_to_dict(point))
        if log is not None:
            log(f"[disaster] {task.key}: FAILED ({type(exc).__name__})")

    results = executor.run(
        tasks,
        checkpoint=checkpoint,
        encode=_point_to_dict,
        decode=_point_from_dict,
        on_failure=on_failure,
    )
    series: Dict[str, List[Point]] = {
        f"{kind}/{mode}": [
            results.get(keys[(kind, mode, severity)])
            or failed[keys[(kind, mode, severity)]]
            for severity in severities
            if severity in CAMPAIGN_TOPOLOGIES[kind]
        ]
        for kind in CAMPAIGN_TOPOLOGIES
        for mode in CAMPAIGN_MODES
    }
    return FigureData(
        figure_id="disaster",
        title=(
            "Datacenter failover under switch/domain failures "
            f"(fat_tree3 k={CAMPAIGN_K} + butterfly, 80:20 mix, "
            f"load {CAMPAIGN_LOAD})"
        ),
        xlabel="failure severity (none < link < switch < pod)",
        series=series,
        notes="disaster at end of warmup; health monitoring on in both "
        "modes, switch-level failover (overlay masks + session "
        "shedding) only in adaptive",
    )


def disaster_campaign_to_text(fig: FigureData) -> str:
    """Render the campaign as an aligned terminal table."""
    header = (
        f"{'series':<19} {'severity':>8} {'reach frac':>10} "
        f"{'qos frac':>9} {'isolated':>8} {'downtime':>9} "
        f"{'sw downs':>8} {'ttr':>8} {'shed':>5} {'abandoned':>9}"
    )
    lines = [fig.title, header, "-" * len(header)]
    for name, points in fig.series.items():
        for point in points:
            extra = point.extra
            severity = extra.get("severity", str(point.x))
            if "failed" in extra:
                lines.append(
                    f"{name:<19} {severity:>8} "
                    f"{'FAILED: ' + str(extra['failed'])}"
                )
                continue
            health = extra.get("health") or {}
            lines.append(
                f"{name:<19} {severity:>8} "
                f"{extra.get('qos_reachable_fraction', 1.0):>10.4f} "
                f"{extra.get('qos_delivered_fraction', 1.0):>9.4f} "
                f"{health.get('hosts_isolated', 0):>8} "
                f"{health.get('host_downtime_cycles', 0):>9} "
                f"{health.get('switch_downs', 0):>8} "
                f"{health.get('mean_switch_time_to_recover_cycles', 0.0):>8.0f} "
                f"{health.get('streams_shed', 0):>5} "
                f"{extra.get('qos_abandoned', 0):>9}"
            )
    if fig.notes:
        lines.append(f"({fig.notes})")
    return "\n".join(lines)
