"""Scale campaign: compiled routing at datacenter-sized topologies.

``mediaworm scale`` proves the route-program refactor out at 1024+
hosts: each campaign point builds a 3-level k-ary fat tree or a k-ary
n-tree (butterfly/folded Clos), runs a sparse real-time workload three
times — active-set loop, active-set repeat, legacy full-scan loop —
and demands all three produce bit-identical metrics digests.  A
progress watchdog (four frame epochs) arms every run, so a routing
cycle or a starved stream fails loudly instead of hanging the
campaign.

Each point also audits the *compile-once* contract: the repeat run
must hit the runner's topology cache, so the route-program compile
counter may move at most once per point (and not at all when an
earlier point already cached the shape).

Usage::

    python -m repro.experiments.scale --points ft3-1024 --json scale.json
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.experiments.bench_core import _metrics_dict
from repro.experiments.config import ButterflyExperiment, FatTree3Experiment
from repro.experiments.runner import (
    _cached_topology,
    simulate_butterfly,
    simulate_fat_tree3,
)
from repro.network.topology import butterfly, fat_tree3
from repro.router import routeprog

FORMAT = "mediaworm-scale-v1"

#: sparse load so wall time stays dominated by network size, not flits
SCALE_LOAD = 0.01
#: every campaign run aborts after this many frame epochs of no progress
WATCHDOG_FRAMES = 4

_COMMON = dict(
    load=SCALE_LOAD,
    mix=(100.0, 0.0),
    vcs_per_pc=4,
    warmup_frames=1,
    measure_frames=1,
    seed=11,
    scale=40.0,
)

#: name -> (runner, experiment); ft3-1024 is the acceptance point —
#: a 1024-host, 320-switch classic fat tree of uniform 16-port routers
SCALE_POINTS: Dict[str, Tuple] = {
    "ft3-16": (simulate_fat_tree3, FatTree3Experiment(k=4, **_COMMON)),
    "ft3-128": (simulate_fat_tree3, FatTree3Experiment(k=8, **_COMMON)),
    "ft3-1024": (simulate_fat_tree3, FatTree3Experiment(k=16, **_COMMON)),
    "bfly-64": (
        simulate_butterfly,
        ButterflyExperiment(arity=4, levels=3, **_COMMON),
    ),
    "bfly-512": (
        simulate_butterfly,
        ButterflyExperiment(arity=8, levels=3, **_COMMON),
    ),
}

#: the quick subset exercised by ``make scale-smoke`` and CI
SMOKE_POINTS = ("ft3-16", "bfly-64")


def _armed(experiment):
    """The experiment with the campaign watchdog installed."""
    window = WATCHDOG_FRAMES * experiment.workload_config().frame_interval_cycles
    return dataclasses.replace(experiment, watchdog_window=window)


def run_digest(result) -> str:
    """Canonical digest of one run: metrics + conservation counters."""
    payload = {
        "metrics": _metrics_dict(result),
        "cycles": result.cycles_run,
        "injected": result.flits_injected,
        "ejected": result.flits_ejected,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _topology_stats(experiment) -> Dict[str, object]:
    """Shape + route-program statistics for the point's topology.

    Served from the runner's cache, so this never triggers an extra
    compile once the point has run.
    """
    if isinstance(experiment, FatTree3Experiment):
        topology = _cached_topology(
            fat_tree3,
            k=experiment.k,
            hosts_per_leaf=experiment.hosts_per_leaf,
            fat_width=experiment.fat_width,
        )
    else:
        topology = _cached_topology(
            butterfly,
            arity=experiment.arity,
            levels=experiment.levels,
            hosts_per_leaf=experiment.hosts_per_leaf,
            fat_width=experiment.fat_width,
        )
    stats = dict(topology.route_program.stats())
    stats["hosts"] = topology.num_hosts
    stats["ports_per_router"] = topology.ports_per_router
    return stats


def run_scale_point(name: str, log=None) -> Dict[str, object]:
    """Run one campaign point; returns its record (see module doc)."""
    try:
        runner, experiment = SCALE_POINTS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale point {name!r}; "
            f"choose from {', '.join(SCALE_POINTS)}"
        )
    experiment = _armed(experiment)

    def say(message: str) -> None:
        if log is not None:
            log(f"[scale] {name}: {message}")

    saved = os.environ.pop("REPRO_LEGACY_LOOP", None)
    try:
        compiles_before = routeprog.compile_count()
        started = time.perf_counter()
        active = runner(experiment)
        active_s = time.perf_counter() - started
        compiles_first = routeprog.compile_count() - compiles_before
        say(f"active loop {active_s:.1f}s ({active.cycles_run} cycles)")

        started = time.perf_counter()
        repeat = runner(experiment)
        repeat_s = time.perf_counter() - started
        compiles_repeat = (
            routeprog.compile_count() - compiles_before - compiles_first
        )
        say(f"repeat {repeat_s:.1f}s")

        os.environ["REPRO_LEGACY_LOOP"] = "1"
        started = time.perf_counter()
        legacy = runner(experiment)
        legacy_s = time.perf_counter() - started
        say(f"legacy loop {legacy_s:.1f}s")
    finally:
        if saved is None:
            os.environ.pop("REPRO_LEGACY_LOOP", None)
        else:
            os.environ["REPRO_LEGACY_LOOP"] = saved

    digests = [run_digest(active), run_digest(repeat), run_digest(legacy)]
    record = {
        "name": name,
        "topology": _topology_stats(experiment),
        "watchdog_window": experiment.watchdog_window,
        "active_s": round(active_s, 3),
        "repeat_s": round(repeat_s, 3),
        "legacy_s": round(legacy_s, 3),
        "flits_injected": active.flits_injected,
        "flits_ejected": active.flits_ejected,
        "digest": digests[0],
        "identical": len(set(digests)) == 1,
        # at most one compile for the first run (zero on a warm cache),
        # and exactly zero for the repeat — the compile-once contract
        "compiles_first_run": compiles_first,
        "compiles_repeat_run": compiles_repeat,
        "compile_once": compiles_first <= 1 and compiles_repeat == 0,
    }
    return record


def run_scale_campaign(
    points: Optional[Tuple[str, ...]] = None, log=None
) -> Dict[str, object]:
    """Run the campaign; returns the summary record for JSON export."""
    names = tuple(points) if points else tuple(SCALE_POINTS)
    records = [run_scale_point(name, log=log) for name in names]
    return {
        "format": FORMAT,
        "points": records,
        "ok": all(r["identical"] and r["compile_once"] for r in records),
    }


def scale_campaign_to_text(summary: Dict[str, object]) -> str:
    lines = [
        "scale campaign (active / repeat / legacy must be bit-identical)",
        f"{'point':>10s} {'hosts':>6s} {'switches':>8s} {'table ints':>10s} "
        f"{'active':>8s} {'legacy':>8s} {'identical':>9s} {'compile':>7s}",
    ]
    for r in summary["points"]:
        topo = r["topology"]
        lines.append(
            f"{r['name']:>10s} {topo['hosts']:>6d} {topo['routers']:>8d} "
            f"{topo['table_ints']:>10d} {r['active_s']:>7.1f}s "
            f"{r['legacy_s']:>7.1f}s {str(r['identical']):>9s} "
            f"{'once' if r['compile_once'] else 'LEAK':>7s}"
        )
    lines.append(f"overall: {'OK' if summary['ok'] else 'FAIL'}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="scale",
        description="Prove compiled routing at 1024+ hosts.",
    )
    parser.add_argument(
        "--points",
        metavar="P1,P2,...",
        default=None,
        help=f"comma-separated point names (default: all; "
        f"known: {', '.join(SCALE_POINTS)})",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"run only the quick smoke subset ({', '.join(SMOKE_POINTS)})",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="also write JSON"
    )
    args = parser.parse_args(argv)

    if args.points and args.smoke:
        parser.error("--points and --smoke are mutually exclusive")
    points: Optional[Tuple[str, ...]] = None
    if args.smoke:
        points = SMOKE_POINTS
    elif args.points:
        points = tuple(p.strip() for p in args.points.split(",") if p.strip())
        for point in points:
            if point not in SCALE_POINTS:
                parser.error(
                    f"unknown point {point!r}; "
                    f"known: {', '.join(SCALE_POINTS)}"
                )

    started = time.perf_counter()
    summary = run_scale_campaign(points, log=print)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(scale_campaign_to_text(summary))
    print(f"[scale completed in {time.perf_counter() - started:.1f}s]")
    return 0 if summary["ok"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
