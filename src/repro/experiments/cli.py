"""Command-line entry point: ``mediaworm``.

Examples::

    mediaworm list
    mediaworm run fig3 --profile quick
    mediaworm run table3
    mediaworm all --profile default
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.figures import FIGURES, PROFILES, run_mixed_grid
from repro.experiments.report import (
    figure_to_text,
    table2_to_text,
    table3_to_text,
)
from repro.experiments.tables import TABLES, run_table2, run_table3

_DESCRIPTIONS = {
    "fig3": "Virtual Clock vs FIFO (16 VCs, 80:20 mix)",
    "fig4": "CBR vs VBR traffic (no best-effort)",
    "fig5": "Mixed traffic ratios vs load",
    "fig6": "VC count and crossbar capability",
    "fig7": "Effect of message size on jitter",
    "fig8": "MediaWorm vs PCS router",
    "fig9": "2x2 fat-mesh performance",
    "table2": "Best-effort latency per mix and load",
    "table3": "PCS connection drop accounting",
}


def _run_one(
    name: str,
    profile: str,
    plot: bool = False,
    json_path: str = None,
    check: bool = False,
) -> str:
    if name == "table2":
        table = run_table2(profile)
        _maybe_save(json_path, table)
        return table2_to_text(table)
    if name == "table3":
        table = run_table3(profile)
        _maybe_save(json_path, table)
        return table3_to_text(table)
    if name == "fig5":
        grid = run_mixed_grid(profile)
        fig = FIGURES["fig5"](profile, grid=grid)
        _maybe_save(json_path, fig)
        text = figure_to_text(fig) + "\n\n" + table2_to_text(
            run_table2(profile, grid=grid)
        )
        return text + ("\n\n" + _plot(fig) if plot else "")
    runner = FIGURES.get(name)
    if runner is None:
        raise SystemExit(f"unknown experiment {name!r}; try 'mediaworm list'")
    show_latency = name in ("fig9",)
    fig = runner(profile)
    _maybe_save(json_path, fig)
    text = figure_to_text(fig, show_be_latency=show_latency)
    if plot:
        text += "\n\n" + _plot(fig)
    if check:
        text += "\n\n" + _check(fig)
    return text


def _maybe_save(json_path, result) -> None:
    if json_path:
        from repro.experiments.export import save_result

        save_result(json_path, result)


def _plot(fig) -> str:
    from repro.analysis.ascii_plot import figure_plot

    return figure_plot(fig, metric="sigma_d")


def _check(fig) -> str:
    from repro.experiments.validation import check_claims, claims_to_text

    return "paper claims:\n" + claims_to_text(check_claims(fig))


def main(argv: Optional[List[str]] = None) -> int:
    """CLI dispatcher (installed as the ``mediaworm`` script)."""
    parser = argparse.ArgumentParser(
        prog="mediaworm",
        description="Reproduce the MediaWorm (HPCA 2000) evaluation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="fig3..fig9, table2, table3")
    run_parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="default",
        help="workload scale / horizon preset",
    )
    run_parser.add_argument(
        "--plot",
        action="store_true",
        help="append a terminal plot of sigma_d",
    )
    run_parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the result as JSON",
    )
    run_parser.add_argument(
        "--check",
        action="store_true",
        help="verify the paper's qualitative claims against the result",
    )

    all_parser = sub.add_parser("all", help="run every figure and table")
    all_parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="default"
    )

    args = parser.parse_args(argv)

    if args.command == "list":
        for name, desc in _DESCRIPTIONS.items():
            print(f"{name:8s} {desc}")
        return 0

    names = (
        [args.experiment]
        if args.command == "run"
        else ["fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table3"]
    )
    plot = getattr(args, "plot", False)
    json_path = getattr(args, "json", None)
    check = getattr(args, "check", False)
    for name in names:
        started = time.perf_counter()
        text = _run_one(
            name, args.profile, plot=plot, json_path=json_path, check=check
        )
        elapsed = time.perf_counter() - started
        print(text)
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
