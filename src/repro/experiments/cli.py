"""Command-line entry point: ``mediaworm``.

Examples::

    mediaworm list
    mediaworm run fig3 --profile quick
    mediaworm run table3
    mediaworm all --profile default
    mediaworm faults --profile quick --rates 0,0.01
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from typing import List, Optional

from repro.errors import SimulationError
from repro.experiments.figures import (
    FIGURES,
    PROFILES,
    get_profile,
    run_mixed_grid,
)
from repro.experiments.parallel import ParallelSweepExecutor
from repro.experiments.report import (
    figure_to_text,
    table2_to_text,
    table3_to_text,
)
from repro.experiments.resilience import RESEED_STEP, SweepCheckpoint
from repro.experiments.tables import TABLES, run_table2, run_table3
from repro.sim.engine import ENGINES

_DESCRIPTIONS = {
    "fig3": "Virtual Clock vs FIFO (16 VCs, 80:20 mix)",
    "fig4": "CBR vs VBR traffic (no best-effort)",
    "fig5": "Mixed traffic ratios vs load",
    "fig6": "VC count and crossbar capability",
    "fig7": "Effect of message size on jitter",
    "fig8": "MediaWorm vs PCS router",
    "fig9": "2x2 fat-mesh performance",
    "table2": "Best-effort latency per mix and load",
    "table3": "PCS connection drop accounting",
    "faults": "QoS degradation under link faults (fat mesh)",
    "failover": "adaptive vs static routing under permanent link failures",
    "disaster": "switch/pod failures and datacenter failover on trees",
    "trace": "one traced run: JSONL event stream, invariants, profiling",
    "chaos": "randomized differential fault campaign with scenario shrinking",
    "topo": "inspect a topology and its compiled route program",
    "scale": "datacenter-scale campaign (1024-host fat tree, Clos)",
}


def _run_one(
    name: str,
    profile: str,
    plot: bool = False,
    json_path: str = None,
    check: bool = False,
    executor: ParallelSweepExecutor = None,
) -> str:
    if name == "table2":
        table = run_table2(profile, executor=executor)
        _maybe_save(json_path, table)
        return table2_to_text(table)
    if name == "table3":
        table = run_table3(profile, executor=executor)
        _maybe_save(json_path, table)
        return table3_to_text(table)
    if name == "fig5":
        grid = run_mixed_grid(profile, executor=executor)
        fig = FIGURES["fig5"](profile, grid=grid)
        _maybe_save(json_path, fig)
        text = figure_to_text(fig) + "\n\n" + table2_to_text(
            run_table2(profile, grid=grid)
        )
        return text + ("\n\n" + _plot(fig) if plot else "")
    runner = FIGURES.get(name)
    if runner is None:
        raise SystemExit(f"unknown experiment {name!r}; try 'mediaworm list'")
    show_latency = name in ("fig9",)
    fig = runner(profile, executor=executor)
    _maybe_save(json_path, fig)
    text = figure_to_text(fig, show_be_latency=show_latency)
    if plot:
        text += "\n\n" + _plot(fig)
    if check:
        text += "\n\n" + _check(fig)
    return text


def _maybe_save(json_path, result) -> None:
    if json_path:
        from repro.experiments.export import save_result

        save_result(json_path, result)


def _plot(fig) -> str:
    from repro.analysis.ascii_plot import figure_plot

    return figure_plot(fig, metric="sigma_d")


def _check(fig) -> str:
    from repro.experiments.validation import check_claims, claims_to_text

    return "paper claims:\n" + claims_to_text(check_claims(fig))


def _run_one_resilient(
    name: str,
    profile,
    attempts: int = 3,
    **kwargs,
) -> str:
    """Run one experiment, retrying with a reseeded profile on failure."""
    base = get_profile(profile)
    last_error = None
    for attempt in range(attempts):
        trial = (
            base
            if attempt == 0
            else replace(base, seed=base.seed + attempt * RESEED_STEP)
        )
        try:
            return _run_one(name, trial, **kwargs)
        except SimulationError as exc:
            last_error = exc
            print(
                f"[{name} attempt {attempt + 1} failed "
                f"({type(exc).__name__}); retrying with a fresh seed]",
                file=sys.stderr,
            )
    raise last_error


def _run_faults(args, profile, executor) -> int:
    """The ``mediaworm faults`` subcommand: a checkpointed fault campaign."""
    from repro.experiments.faultsweep import (
        DEFAULT_FAULT_RATES,
        fault_campaign_to_text,
        run_fault_campaign,
    )

    if args.rates:
        try:
            rates = tuple(float(r) for r in args.rates.split(","))
        except ValueError:
            raise SystemExit(f"--rates must be comma-separated floats, got {args.rates!r}")
        for rate in rates:
            if not 0.0 <= rate <= 1.0:
                raise SystemExit(f"fault rates must be in [0, 1], got {rate}")
    else:
        rates = DEFAULT_FAULT_RATES
    path = args.checkpoint or f"mediaworm-faults-{args.profile}.checkpoint.json"
    checkpoint = SweepCheckpoint(
        path,
        meta={
            "command": "faults",
            "profile": args.profile,
            "rates": [f"{r:g}" for r in rates],
        },
    )
    if args.fresh:
        checkpoint.clear()
    started = time.perf_counter()
    fig = run_fault_campaign(
        profile, rates, checkpoint=checkpoint, log=print, executor=executor
    )
    _maybe_save(args.json, fig)
    print(fault_campaign_to_text(fig))
    print(f"[faults completed in {time.perf_counter() - started:.1f}s]")
    checkpoint.clear()
    return 0


def _run_failover(args, profile, executor) -> int:
    """The ``mediaworm failover`` subcommand: adaptive vs static routing."""
    from repro.experiments.failover import (
        DEFAULT_SEVERITIES,
        failover_campaign_to_text,
        run_failover_campaign,
    )

    if args.severities:
        try:
            severities = tuple(int(s) for s in args.severities.split(","))
        except ValueError:
            raise SystemExit(
                f"--severities must be comma-separated ints, got "
                f"{args.severities!r}"
            )
        for severity in severities:
            if severity < 0:
                raise SystemExit(
                    f"severities must be >= 0, got {severity}"
                )
    else:
        severities = DEFAULT_SEVERITIES
    path = (
        args.checkpoint
        or f"mediaworm-failover-{args.profile}.checkpoint.json"
    )
    checkpoint = SweepCheckpoint(
        path,
        meta={
            "command": "failover",
            "profile": args.profile,
            "severities": list(severities),
        },
    )
    if args.fresh:
        checkpoint.clear()
    started = time.perf_counter()
    fig = run_failover_campaign(
        profile,
        severities,
        checkpoint=checkpoint,
        log=print,
        executor=executor,
    )
    _maybe_save(args.json, fig)
    print(failover_campaign_to_text(fig))
    print(f"[failover completed in {time.perf_counter() - started:.1f}s]")
    checkpoint.clear()
    return 0


def _run_disaster(args, profile, executor) -> int:
    """The ``mediaworm disaster`` subcommand: datacenter failover."""
    from repro.experiments.disaster import (
        DEFAULT_SEVERITIES,
        disaster_campaign_to_text,
        run_disaster_campaign,
    )

    if args.severities:
        severities = tuple(
            s.strip() for s in args.severities.split(",") if s.strip()
        )
        for severity in severities:
            if severity not in DEFAULT_SEVERITIES:
                raise SystemExit(
                    f"unknown severity {severity!r} (choose from "
                    f"{', '.join(DEFAULT_SEVERITIES)})"
                )
    else:
        severities = DEFAULT_SEVERITIES
    path = (
        args.checkpoint
        or f"mediaworm-disaster-{args.profile}.checkpoint.json"
    )
    checkpoint = SweepCheckpoint(
        path,
        meta={
            "command": "disaster",
            "profile": args.profile,
            "severities": list(severities),
        },
    )
    if args.fresh:
        checkpoint.clear()
    started = time.perf_counter()
    fig = run_disaster_campaign(
        profile,
        severities,
        checkpoint=checkpoint,
        log=print,
        executor=executor,
    )
    _maybe_save(args.json, fig)
    print(disaster_campaign_to_text(fig))
    print(f"[disaster completed in {time.perf_counter() - started:.1f}s]")
    checkpoint.clear()
    return 0


def _run_trace(args, profile) -> int:
    """The ``mediaworm trace`` subcommand: one fully observed run.

    Runs the paper's default single-switch workload once with the
    observability layer installed: a JSONL event stream (optionally
    filtered by kind), an invariant checker auditing flit conservation
    and credit consistency, and — with ``--profile`` — per-phase
    simulation-loop wall-time profiling.
    """
    from repro.errors import ConfigurationError
    from repro.experiments.config import SingleSwitchExperiment
    from repro.experiments.figures import _base_kwargs
    from repro.experiments.runner import simulate_single_switch
    from repro.obs import ALL_EVENTS, TraceSpec

    events = None
    if args.trace_events:
        events = tuple(
            name.strip() for name in args.trace_events.split(",") if name.strip()
        )
    try:
        spec = TraceSpec(
            path=args.trace_out,
            events=events,
            chrome_path=args.chrome,
            check=not args.no_check,
        )
    except ConfigurationError as exc:
        raise SystemExit(str(exc))
    experiment = SingleSwitchExperiment(
        load=args.load,
        trace=spec,
        profile_loop=args.profile,
        **_base_kwargs(profile),
    )
    started = time.perf_counter()
    result = simulate_single_switch(experiment)
    elapsed = time.perf_counter() - started
    summary = result.trace_summary
    print(f"cycles run        {result.cycles_run}")
    print(f"flits injected    {result.flits_injected}")
    print(f"flits ejected     {result.flits_ejected}")
    print(f"events emitted    {summary['events']}")
    for kind in sorted(ALL_EVENTS):
        count = summary["counts"].get(kind)
        if count:
            print(f"  {kind:12s} {count}")
    if not args.no_check:
        print(
            f"invariants        OK "
            f"({summary['invariant_checks']} structural audits)"
        )
    print(
        f"trace written     {summary['jsonl_path']} "
        f"({summary['jsonl_records']} records)"
    )
    if args.chrome:
        print(
            f"chrome trace      {summary['chrome_path']} "
            f"({summary['chrome_events']} events; open in ui.perfetto.dev)"
        )
    if args.profile:
        for name, value in sorted(result.metrics.profile.items()):
            print(f"  {name:22s} {value:.3f}")
    print(f"[trace completed in {elapsed:.1f}s]")
    return 0


def _run_chaos(args) -> int:
    """The ``mediaworm chaos`` subcommand: differential fault campaigns.

    Three modes, mutually exclusive: ``--replay FILE`` re-runs one
    repro and checks its verdict still holds; ``--selftest KIND``
    proves the whole pipeline catches, shrinks, and replays a known
    sabotage; the default runs a seeded random campaign and writes a
    minimal repro for every failure it finds.
    """
    import os

    from repro.chaos import ScenarioSpace, replay, run_campaign, selftest
    from repro.errors import ChaosFailure, ConfigurationError

    if args.replay:
        try:
            ok, message, actual = replay(args.replay)
        except ConfigurationError as exc:
            raise SystemExit(str(exc))
        status = "OK" if ok else "MISMATCH"
        print(f"[{status}] {args.replay}: {message}")
        return 0 if ok else 1

    if args.selftest:
        try:
            path = selftest(
                args.selftest,
                args.corpus,
                seed=args.seed,
                shrink_budget=args.shrink_budget,
                log=print,
            )
        except ChaosFailure as exc:
            print(f"[selftest FAILED] {exc}", file=sys.stderr)
            return 1
        print(f"[selftest ok: pipeline caught/shrank/replayed -> {path}]")
        return 0

    profile = get_profile(args.profile)
    space = ScenarioSpace(scale=profile.scale)
    path = args.checkpoint or f"mediaworm-chaos-{args.profile}.checkpoint.json"
    if args.fresh:
        for stale in (path, f"{path}.tmp"):
            try:
                os.remove(stale)
            except OSError:
                pass
    started = time.perf_counter()
    summary = run_campaign(
        space,
        seed=args.seed,
        count=args.count,
        corpus_dir=args.corpus,
        jobs=args.jobs,
        checkpoint_path=path,
        shrink_budget=args.shrink_budget,
        point_timeout=args.point_timeout,
        log=print,
    )
    if args.json:
        import json as _json

        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
    print(
        f"chaos campaign: {summary['passed']}/{summary['scenarios']} "
        f"scenarios passed (seed {summary['seed']})"
    )
    for failure in summary["failures"]:
        print(
            f"  FAIL {failure['key']} [{failure['oracle']}]: "
            f"{failure['detail']}"
        )
        print(f"       repro: {failure['repro']}")
    print(f"[chaos completed in {time.perf_counter() - started:.1f}s]")
    return 1 if summary["failed"] else 0


def _run_topo(args) -> int:
    """The ``mediaworm topo`` subcommand: build + describe one topology."""
    from repro.errors import ConfigurationError
    from repro.experiments.topo import TOPOLOGY_KINDS, build_topology, describe_topology

    params = {
        name: getattr(args, name)
        for name in (
            "num_ports",
            "rows",
            "cols",
            "hosts_per_router",
            "leaves",
            "spines",
            "hosts_per_leaf",
            "k",
            "arity",
            "levels",
            "fat_width",
        )
        if getattr(args, name) is not None
    }
    try:
        topology = build_topology(args.kind, **params)
    except ConfigurationError as exc:
        raise SystemExit(str(exc))
    print(describe_topology(topology))
    return 0


def _add_sweep_args(parser) -> None:
    """Flags shared by every sweep-running subcommand."""
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=1,
        help="run sweep points in N worker processes (per-point results "
        "are bit-identical to --jobs 1)",
    )
    parser.add_argument(
        "--watchdog",
        type=int,
        metavar="CYCLES",
        default=None,
        help="abort any run making no progress for CYCLES cycles "
        "(default: each sweep's own policy)",
    )
    parser.add_argument(
        "--point-timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help="wall-clock budget per sweep point; a point exceeding it "
        "fails (and retries reseeded) instead of hanging the sweep",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="simulation engine for every run of the sweep: 'object' "
        "(reference component loop) or 'array' (fused dense datapath; "
        "bit-identical metrics, falls back to the object loop for cold "
        "features)",
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI dispatcher (installed as the ``mediaworm`` script)."""
    parser = argparse.ArgumentParser(
        prog="mediaworm",
        description="Reproduce the MediaWorm (HPCA 2000) evaluation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="fig3..fig9, table2, table3")
    run_parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="default",
        help="workload scale / horizon preset",
    )
    _add_sweep_args(run_parser)
    run_parser.add_argument(
        "--plot",
        action="store_true",
        help="append a terminal plot of sigma_d",
    )
    run_parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the result as JSON",
    )
    run_parser.add_argument(
        "--check",
        action="store_true",
        help="verify the paper's qualitative claims against the result",
    )

    all_parser = sub.add_parser("all", help="run every figure and table")
    all_parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="default"
    )
    _add_sweep_args(all_parser)
    all_parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="checkpoint file (default: mediaworm-all-<profile>"
        ".checkpoint.json); an interrupted run resumes from it",
    )
    all_parser.add_argument(
        "--fresh",
        action="store_true",
        help="discard any existing checkpoint and recompute everything",
    )

    faults_parser = sub.add_parser(
        "faults", help="fault-injection campaign (delivered fraction, jitter)"
    )
    faults_parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="default"
    )
    _add_sweep_args(faults_parser)
    faults_parser.add_argument(
        "--rates",
        metavar="R1,R2,...",
        default=None,
        help="comma-separated per-flit loss probabilities",
    )
    faults_parser.add_argument(
        "--json", metavar="PATH", default=None, help="also write JSON"
    )
    faults_parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="checkpoint file (default: mediaworm-faults-<profile>"
        ".checkpoint.json)",
    )
    faults_parser.add_argument(
        "--fresh",
        action="store_true",
        help="discard any existing checkpoint and recompute everything",
    )

    failover_parser = sub.add_parser(
        "failover",
        help="permanent-failure campaign (adaptive vs static routing)",
    )
    failover_parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="default"
    )
    _add_sweep_args(failover_parser)
    failover_parser.add_argument(
        "--severities",
        metavar="S1,S2,...",
        default=None,
        help="comma-separated failed fat-pair counts (0..8 on the 2x2 mesh)",
    )
    failover_parser.add_argument(
        "--json", metavar="PATH", default=None, help="also write JSON"
    )
    failover_parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="checkpoint file (default: mediaworm-failover-<profile>"
        ".checkpoint.json)",
    )
    failover_parser.add_argument(
        "--fresh",
        action="store_true",
        help="discard any existing checkpoint and recompute everything",
    )

    disaster_parser = sub.add_parser(
        "disaster",
        help="switch/pod failure campaign on tree fabrics "
        "(adaptive vs static)",
    )
    disaster_parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="default"
    )
    _add_sweep_args(disaster_parser)
    disaster_parser.add_argument(
        "--severities",
        metavar="S1,S2,...",
        default=None,
        help="comma-separated severity names from none,link,switch,pod "
        "(default: all; pod is skipped on the butterfly)",
    )
    disaster_parser.add_argument(
        "--json", metavar="PATH", default=None, help="also write JSON"
    )
    disaster_parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="checkpoint file (default: mediaworm-disaster-<profile>"
        ".checkpoint.json)",
    )
    disaster_parser.add_argument(
        "--fresh",
        action="store_true",
        help="discard any existing checkpoint and recompute everything",
    )

    trace_parser = sub.add_parser(
        "trace",
        help="run once with structured tracing + invariant checking",
    )
    trace_parser.add_argument(
        "--preset",
        choices=sorted(PROFILES),
        default="quick",
        help="workload scale / horizon preset (default: quick)",
    )
    trace_parser.add_argument(
        "--load",
        type=float,
        default=0.8,
        metavar="F",
        help="offered input-link load (default: 0.8)",
    )
    trace_parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default="mediaworm-trace.jsonl",
        help="JSONL event-stream destination "
        "(default: mediaworm-trace.jsonl)",
    )
    trace_parser.add_argument(
        "--trace-events",
        metavar="K1,K2,...",
        default=None,
        help="record only these event kinds (default: all; see "
        "repro.obs.ALL_EVENTS)",
    )
    trace_parser.add_argument(
        "--chrome",
        metavar="PATH",
        default=None,
        help="also export a Chrome-trace/Perfetto JSON timeline",
    )
    trace_parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the invariant checker (tracing only)",
    )
    trace_parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the simulation loop per phase (wall time)",
    )

    chaos_parser = sub.add_parser(
        "chaos",
        help="randomized differential fault campaign (auto-shrinks "
        "failures to replayable repros)",
    )
    chaos_parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="smoke",
        help="workload scale for generated scenarios (default: smoke)",
    )
    chaos_parser.add_argument(
        "--count",
        type=int,
        metavar="N",
        default=25,
        help="scenarios to draw and run (default: 25)",
    )
    chaos_parser.add_argument(
        "--seed",
        type=int,
        default=7,
        help="campaign seed; the scenario stream and every verdict are "
        "a pure function of it (default: 7)",
    )
    chaos_parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=1,
        help="run scenarios in N isolated worker processes",
    )
    chaos_parser.add_argument(
        "--point-timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help="override each scenario's wall-clock budget (a scenario "
        "exceeding it fails under the 'timeout' oracle)",
    )
    chaos_parser.add_argument(
        "--corpus",
        metavar="DIR",
        default="chaos-corpus",
        help="directory for shrunk failing-scenario repros "
        "(default: chaos-corpus)",
    )
    chaos_parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="campaign checkpoint (default: mediaworm-chaos-<profile>"
        ".checkpoint.json); an interrupted campaign resumes from it",
    )
    chaos_parser.add_argument(
        "--fresh",
        action="store_true",
        help="discard any existing checkpoint and recompute everything",
    )
    chaos_parser.add_argument(
        "--shrink-budget",
        type=int,
        metavar="N",
        default=40,
        help="max re-runs spent shrinking one failure (default: 40)",
    )
    chaos_parser.add_argument(
        "--replay",
        metavar="FILE",
        default=None,
        help="re-run one repro file and verify its recorded verdict",
    )
    chaos_parser.add_argument(
        "--selftest",
        metavar="KIND",
        default=None,
        help="sabotage a run (e.g. 'credit') and assert the pipeline "
        "catches, shrinks, and replays it",
    )
    chaos_parser.add_argument(
        "--json", metavar="PATH", default=None, help="also write JSON"
    )

    topo_parser = sub.add_parser(
        "topo",
        help="inspect a topology and its compiled route program",
    )
    topo_parser.add_argument(
        "kind",
        help="single, mesh, fat_tree, fat_tree3, or butterfly",
    )
    for flag, kind in (
        ("--num-ports", int),
        ("--rows", int),
        ("--cols", int),
        ("--hosts-per-router", int),
        ("--leaves", int),
        ("--spines", int),
        ("--hosts-per-leaf", int),
        ("--k", int),
        ("--arity", int),
        ("--levels", int),
        ("--fat-width", int),
    ):
        topo_parser.add_argument(flag, type=kind, default=None)

    scale_parser = sub.add_parser(
        "scale",
        help="datacenter-scale campaign: bit-identical repeat + legacy "
        "digests on 1024-host fat trees and Clos networks",
    )
    scale_parser.add_argument(
        "--points",
        metavar="P1,P2,...",
        default=None,
        help="comma-separated point names (default: all)",
    )
    scale_parser.add_argument(
        "--smoke",
        action="store_true",
        help="run only the quick smoke subset",
    )
    scale_parser.add_argument(
        "--json", metavar="PATH", default=None, help="also write JSON"
    )

    args = parser.parse_args(argv)

    if args.command == "topo":
        return _run_topo(args)

    if args.command == "scale":
        from repro.experiments.scale import main as scale_main

        scale_argv = []
        if args.points:
            scale_argv += ["--points", args.points]
        if args.smoke:
            scale_argv.append("--smoke")
        if args.json:
            scale_argv += ["--json", args.json]
        return scale_main(scale_argv)

    if args.command == "list":
        for name, desc in _DESCRIPTIONS.items():
            print(f"{name:8s} {desc}")
        return 0

    if args.command == "trace":
        # its --profile is the loop profiler; the workload preset is
        # --preset, so resolve before the shared --profile handling
        return _run_trace(args, get_profile(args.preset))

    if args.command == "chaos":
        # scenarios carry their own watchdog and wall-clock budgets, so
        # chaos skips the shared sweep-flag handling below
        if args.jobs < 1:
            raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
        if args.count < 1:
            raise SystemExit(f"--count must be >= 1, got {args.count}")
        return _run_chaos(args)

    profile = get_profile(args.profile)
    if args.watchdog is not None:
        if args.watchdog < 1:
            raise SystemExit(f"--watchdog must be >= 1, got {args.watchdog}")
        profile = replace(profile, watchdog_window=args.watchdog)
    if getattr(args, "engine", None) is not None:
        profile = replace(profile, engine=args.engine)
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    if args.point_timeout is not None and args.point_timeout <= 0:
        raise SystemExit(
            f"--point-timeout must be > 0 seconds, got {args.point_timeout}"
        )
    # a point timeout needs the executor even at --jobs 1: the inline
    # path is what arms the per-point wall-clock limit
    executor = (
        ParallelSweepExecutor(
            jobs=args.jobs,
            log=print,
            point_timeout=args.point_timeout,
        )
        if args.jobs > 1 or args.point_timeout is not None
        else None
    )

    if args.command == "faults":
        return _run_faults(args, profile, executor)
    if args.command == "failover":
        return _run_failover(args, profile, executor)
    if args.command == "disaster":
        return _run_disaster(args, profile, executor)

    names = (
        [args.experiment]
        if args.command == "run"
        else ["fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table3"]
    )
    plot = getattr(args, "plot", False)
    json_path = getattr(args, "json", None)
    check = getattr(args, "check", False)
    checkpoint = None
    if args.command == "all":
        path = (
            args.checkpoint
            or f"mediaworm-all-{args.profile}.checkpoint.json"
        )
        checkpoint = SweepCheckpoint(
            path, meta={"command": "all", "profile": args.profile}
        )
        if args.fresh:
            checkpoint.clear()
        restored = [name for name in names if name in checkpoint]
        if restored:
            print(
                f"[resuming from {path}: "
                f"{', '.join(restored)} already done]\n"
            )
    for name in names:
        started = time.perf_counter()
        if checkpoint is not None and name in checkpoint:
            print(checkpoint.get(name))
            print(f"[{name} restored from checkpoint]\n")
            continue
        text = _run_one_resilient(
            name,
            profile,
            plot=plot,
            json_path=json_path,
            check=check,
            executor=executor,
        )
        elapsed = time.perf_counter() - started
        print(text)
        print(f"[{name} completed in {elapsed:.1f}s]\n")
        if checkpoint is not None:
            checkpoint.put(name, text)
    if checkpoint is not None:
        checkpoint.clear()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
