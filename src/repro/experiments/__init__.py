"""Experiment harness: one runner per figure/table of the paper.

``simulate_single_switch`` / ``simulate_fat_mesh`` / ``simulate_pcs``
run one configuration each; :mod:`repro.experiments.figures` and
:mod:`repro.experiments.tables` wrap them into the sweeps that
regenerate Figures 3-9 and Tables 2-3.
"""

from repro.experiments.config import (
    ButterflyExperiment,
    FatMeshExperiment,
    FatTree3Experiment,
    FatTreeExperiment,
    PCSExperiment,
    SingleSwitchExperiment,
)
from repro.experiments.parallel import (
    ParallelSweepExecutor,
    SweepTask,
    execute_tasks,
)
from repro.experiments.runner import (
    ExperimentResult,
    PCSResult,
    WorkloadSummary,
    simulate_butterfly,
    simulate_fat_mesh,
    simulate_fat_tree,
    simulate_fat_tree3,
    simulate_pcs,
    simulate_single_switch,
)

__all__ = [
    "ButterflyExperiment",
    "ExperimentResult",
    "FatMeshExperiment",
    "FatTree3Experiment",
    "FatTreeExperiment",
    "PCSExperiment",
    "PCSResult",
    "ParallelSweepExecutor",
    "SingleSwitchExperiment",
    "SweepTask",
    "WorkloadSummary",
    "execute_tasks",
    "simulate_butterfly",
    "simulate_fat_mesh",
    "simulate_fat_tree",
    "simulate_fat_tree3",
    "simulate_pcs",
    "simulate_single_switch",
]
