"""Experiment harness: one runner per figure/table of the paper.

``simulate_single_switch`` / ``simulate_fat_mesh`` / ``simulate_pcs``
run one configuration each; :mod:`repro.experiments.figures` and
:mod:`repro.experiments.tables` wrap them into the sweeps that
regenerate Figures 3-9 and Tables 2-3.
"""

from repro.experiments.config import (
    FatMeshExperiment,
    FatTreeExperiment,
    PCSExperiment,
    SingleSwitchExperiment,
)
from repro.experiments.runner import (
    ExperimentResult,
    PCSResult,
    simulate_fat_mesh,
    simulate_fat_tree,
    simulate_pcs,
    simulate_single_switch,
)

__all__ = [
    "ExperimentResult",
    "FatMeshExperiment",
    "FatTreeExperiment",
    "PCSExperiment",
    "PCSResult",
    "SingleSwitchExperiment",
    "simulate_fat_mesh",
    "simulate_fat_tree",
    "simulate_pcs",
    "simulate_single_switch",
]
