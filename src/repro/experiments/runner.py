"""Runners: one function per experiment type.

Each runner assembles the network, attaches the workload and metrics,
runs warmup + measurement, audits flit conservation, and returns a
result record with the paper's output parameters (``d``, ``sigma_d``,
best-effort latency) in paper units.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, replace as dataclasses_replace
from typing import Dict, Optional

from repro.core.admission import AdmissionController
from repro.faults import install_faults, install_recovery
from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.network.health import install_health
from repro.network.network import Network
from repro.obs import (
    CountingSink,
    InvariantChecker,
    JsonlTraceSink,
    LoopProfiler,
    MultiSink,
    RingBufferSink,
    install_tracing,
    write_chrome_trace,
)
from repro.network.topology import (
    butterfly,
    fat_mesh,
    fat_tree,
    fat_tree3,
    single_switch,
)
from repro.pcs.connection import ConnectionStats
from repro.pcs.simulator import PCSSimulator
from repro.sim.rng import RngStreams
from repro.traffic.mix import Workload, build_workload


@dataclass(frozen=True)
class WorkloadSummary:
    """Picklable digest of a :class:`~repro.traffic.mix.Workload`.

    A live workload holds network-attached traffic sources and cannot
    cross a process boundary; sweep workers ship this summary back
    instead (see :meth:`ExperimentResult.portable`).  It carries every
    field downstream consumers read off a finished run.
    """

    achieved_rt_load: float
    achieved_be_load: float
    streams_per_node: int
    num_streams: int

    @property
    def achieved_load(self) -> float:
        return self.achieved_rt_load + self.achieved_be_load

    @classmethod
    def of(cls, workload: Workload) -> "WorkloadSummary":
        return cls(
            achieved_rt_load=workload.achieved_rt_load,
            achieved_be_load=workload.achieved_be_load,
            streams_per_node=workload.streams_per_node,
            num_streams=len(workload.streams),
        )


@dataclass
class ExperimentResult:
    """Outcome of one wormhole-network run."""

    experiment: object
    metrics: RunMetrics
    #: the live workload, or its :class:`WorkloadSummary` after
    #: :meth:`portable` (results returned from sweep workers)
    workload: object
    cycles_run: int
    flits_injected: int
    flits_ejected: int
    wall_seconds: float
    #: fault/recovery accounting, present only when the experiment
    #: carried a fault plan or a recovery config
    fault_stats: Optional[Dict[str, object]] = None
    #: tracing accounting (event counts, records written, invariant
    #: checks run), present only when the experiment carried a TraceSpec
    trace_summary: Optional[Dict[str, object]] = None

    @property
    def achieved_load(self) -> float:
        """Offered input-link load after stream-count rounding."""
        return self.workload.achieved_load

    def portable(self) -> "ExperimentResult":
        """A copy safe to pickle across process boundaries.

        Everything but the workload already pickles; the live workload
        (network-attached sources) is replaced by its summary.  Calling
        this on an already-portable result is a no-op copy.
        """
        workload = self.workload
        if isinstance(workload, Workload):
            workload = WorkloadSummary.of(workload)
        return dataclasses_replace(self, workload=workload)


@dataclass
class PCSResult:
    """Outcome of one PCS run (metrics + Table 3 accounting)."""

    experiment: object
    metrics: RunMetrics
    connections: ConnectionStats
    offered_streams: int
    established_streams: int
    cycles_run: int
    wall_seconds: float

    def portable(self) -> "PCSResult":
        """PCS results hold no live network references; pickle as-is."""
        return self


# ----------------------------------------------------------------------
# topology memoization
#
# A topology (and its compiled route program) is pure immutable data;
# every Network built over it forks its own routing facade, so one
# instance can serve any number of runs.  Sweep points typically vary
# load/scheduler/seed at a fixed shape, and pool workers process many
# points per process — rebuilding a 320-router fat tree per point would
# dominate sparse-run wall time.  The cache is intentionally tiny
# (sweeps use one or two shapes) and evicts in insertion order.

_TOPOLOGY_CACHE: Dict[tuple, object] = {}
_TOPOLOGY_CACHE_CAP = 8
#: topologies actually constructed in this process (cache misses);
#: the construction-count tests read the delta
TOPOLOGY_BUILDS = 0


def _cached_topology(builder, **params):
    key = (builder.__name__, tuple(sorted(params.items())))
    topology = _TOPOLOGY_CACHE.get(key)
    if topology is None:
        global TOPOLOGY_BUILDS
        TOPOLOGY_BUILDS += 1
        topology = builder(**params)
        if len(_TOPOLOGY_CACHE) >= _TOPOLOGY_CACHE_CAP:
            _TOPOLOGY_CACHE.pop(next(iter(_TOPOLOGY_CACHE)))
        _TOPOLOGY_CACHE[key] = topology
    return topology


def _run_network(experiment, network: Network, collector: MetricsCollector):
    started = time.perf_counter()
    network.run(experiment.total_cycles)
    network.check_conservation()
    return time.perf_counter() - started


def _install_extras(experiment, network: Network, rngs: RngStreams) -> None:
    """Attach the experiment's optional fault plan and recovery transport.

    Shares the workload's ``RngStreams`` so fault substreams derive from
    the same master seed without perturbing any traffic substream.
    """
    plan = getattr(experiment, "faults", None)
    if plan is not None:
        install_faults(network, plan, rngs)
    recovery = getattr(experiment, "recovery", None)
    if recovery is not None:
        install_recovery(network, recovery)
    health = getattr(experiment, "health", None)
    if health is not None:
        install_health(network, health, rngs)


def _mirror_admission(network: Network, workload) -> AdmissionController:
    """Mirror the workload's implicit reservations into a controller.

    The runner's workloads are sized by construction (``load`` knob)
    rather than gated stream-by-stream, so this controller is a
    *mirror* for degraded-mode accounting, not a gatekeeper: threshold
    1.0 admits everything the workload offers.  Each stream reserves
    its rate on its host channels and, conservatively, on every
    physical link of each fat group its dimension-order path crosses —
    so the health monitor's ``degrade`` on a dead link sheds exactly
    the streams whose guarantee that link backed.
    """
    controller = AdmissionController(threshold=1.0)
    fraction = workload.config.stream_fraction
    routing = network.routing
    host_rid = {node: rid for node, rid, _ in network.topology.hosts}
    channel_dst = {
        (r, p): dr for r, p, dr, _ in network.topology.channels
    }
    max_hops = len(network.routers) + 1
    for stream in workload.streams:
        cfg = stream.config
        path = [("host-in", cfg.src_node, 0)]
        rid = host_rid[cfg.src_node]
        dst_rid = host_rid[cfg.dst_node]
        hops = 0
        while rid != dst_rid and hops < max_hops:
            hops += 1
            group = routing.candidates(rid, cfg.dst_node)
            for port in group:
                path.append(("link", rid, port))
            rid = channel_dst[(rid, group[0])]
        path.append(("host-out", cfg.dst_node, 0))
        controller.admit(
            stream.stream_id, fraction, path, cfg.traffic_class
        )
    return controller


def _fault_stats(network: Network) -> Optional[Dict[str, object]]:
    """Summarise fault/recovery accounting, or ``None`` when unused."""
    if (
        network.fault_injector is None
        and network.transport is None
        and network.health_monitor is None
    ):
        return None
    stats: Dict[str, object] = {
        "flits_lost": network.flits_lost,
        "flits_corrupted": network.flits_corrupted,
    }
    if network.fault_injector is not None:
        stats["faulted_links"] = network.fault_injector.faulted_links
    if network.transport is not None:
        transport = network.transport.stats
        stats.update(asdict(transport))
        stats["delivered_fraction"] = transport.delivered_fraction
        stats["qos_delivered_fraction"] = transport.qos_delivered_fraction
        stats["qos_reachable_fraction"] = transport.qos_reachable_fraction
    if network.health_monitor is not None:
        stats["health"] = network.health_monitor.summary()
    return stats


class _TraceHarness:
    """Sinks built from an experiment's :class:`TraceSpec`.

    Assembles the requested sink stack (JSONL file, Chrome-trace ring
    buffer, invariant checker — always alongside a counting sink for
    the run summary), installs it on the network, and on ``finish``
    closes the ledger, flushes the exporters, and reports accounting.
    """

    def __init__(self, network, spec) -> None:
        self.spec = spec
        self.network = network
        self.counter = CountingSink()
        self.jsonl = None
        self.checker = None
        self._ring = None
        sinks = [self.counter]
        if spec.path:
            self.jsonl = JsonlTraceSink(spec.path, events=spec.events)
            sinks.append(self.jsonl)
        if spec.chrome_path:
            self._ring = RingBufferSink()
            sinks.append(self._ring)
        if spec.check:
            self.checker = InvariantChecker(network)
            sinks.append(self.checker)
        install_tracing(
            network, sinks[0] if len(sinks) == 1 else MultiSink(sinks)
        )

    def finish(self) -> Dict[str, object]:
        summary: Dict[str, object] = {
            "events": self.counter.total,
            "counts": dict(self.counter.counts),
        }
        if self.checker is not None:
            self.checker.finish()
            summary["invariant_events"] = self.checker.events_seen
            summary["invariant_checks"] = self.checker.checks_run
        if self.jsonl is not None:
            self.jsonl.close()
            summary["jsonl_path"] = self.spec.path
            summary["jsonl_records"] = self.jsonl.records_written
        if self._ring is not None:
            summary["chrome_path"] = self.spec.chrome_path
            summary["chrome_events"] = write_chrome_trace(
                self.spec.chrome_path, self._ring.records
            )
        return summary


def _simulate_wormhole(experiment, topology) -> ExperimentResult:
    """Shared runner body for the wormhole-network experiment types."""
    collector = MetricsCollector(
        experiment.timebase, warmup=experiment.warmup_cycles
    )
    config = experiment.router_config(topology.ports_per_router)
    network = Network(
        topology,
        config,
        on_message=collector.on_message,
        watchdog_window=getattr(experiment, "watchdog_window", None),
        engine=getattr(experiment, "engine", "object"),
    )
    rngs = RngStreams(experiment.seed)
    _install_extras(experiment, network, rngs)
    workload = build_workload(network, experiment.workload_config(), rngs)
    monitor = network.health_monitor
    if monitor is not None:
        collector.attach_health(monitor)
        if monitor.config.shed_best_effort:
            monitor.bind_besteffort(workload.besteffort)
        monitor.bind_admission(_mirror_admission(network, workload))
        # Isolated-host shedding pauses the victims' media sessions.
        monitor.bind_streams(workload.streams)
    # Observability extras install last so every emitter (including the
    # transport and health monitor above) is wired before the first event.
    spec = getattr(experiment, "trace", None)
    harness = _TraceHarness(network, spec) if spec is not None else None
    # Experiment-supplied network hook (e.g. chaos-harness sabotage):
    # runs after everything is wired so it can schedule mid-run calls
    # or perturb component state the oracles are expected to catch.
    hook = getattr(experiment, "network_hook", None)
    if hook is not None:
        hook(network)
    if getattr(experiment, "profile_loop", False):
        profiler = LoopProfiler()
        network.profiler = profiler
        collector.attach_profiler(profiler)
    wall = _run_network(experiment, network, collector)
    return ExperimentResult(
        experiment=experiment,
        metrics=collector.snapshot(),
        workload=workload,
        cycles_run=network.clock,
        flits_injected=network.flits_injected,
        flits_ejected=network.flits_ejected,
        wall_seconds=wall,
        fault_stats=_fault_stats(network),
        trace_summary=None if harness is None else harness.finish(),
    )


def simulate_single_switch(experiment) -> ExperimentResult:
    """Run one single-switch configuration (sections 5.1-5.6)."""
    topology = _cached_topology(
        single_switch, num_ports=experiment.num_ports
    )
    return _simulate_wormhole(experiment, topology)


def simulate_fat_mesh(experiment) -> ExperimentResult:
    """Run one fat-mesh configuration (section 5.7)."""
    topology = _cached_topology(
        fat_mesh,
        rows=experiment.rows,
        cols=experiment.cols,
        hosts_per_router=experiment.hosts_per_router,
        fat_width=experiment.fat_width,
    )
    return _simulate_wormhole(experiment, topology)


def simulate_fat_tree(experiment) -> ExperimentResult:
    """Run one fat-tree configuration (a beyond-the-paper topology)."""
    topology = _cached_topology(
        fat_tree,
        leaves=experiment.leaves,
        spines=experiment.spines,
        hosts_per_leaf=experiment.hosts_per_leaf,
        fat_width=experiment.fat_width,
    )
    return _simulate_wormhole(experiment, topology)


def simulate_fat_tree3(experiment) -> ExperimentResult:
    """Run one 3-level k-ary fat-tree configuration (scale campaign)."""
    topology = _cached_topology(
        fat_tree3,
        k=experiment.k,
        hosts_per_leaf=experiment.hosts_per_leaf,
        fat_width=experiment.fat_width,
    )
    return _simulate_wormhole(experiment, topology)


def simulate_butterfly(experiment) -> ExperimentResult:
    """Run one k-ary n-tree (butterfly/Clos) configuration."""
    topology = _cached_topology(
        butterfly,
        arity=experiment.arity,
        levels=experiment.levels,
        hosts_per_leaf=experiment.hosts_per_leaf,
        fat_width=experiment.fat_width,
    )
    return _simulate_wormhole(experiment, topology)


def simulate_pcs(experiment) -> PCSResult:
    """Run one PCS configuration (section 5.6 / Table 3)."""
    collector = MetricsCollector(
        experiment.timebase, warmup=experiment.warmup_cycles
    )
    started = time.perf_counter()
    simulator = PCSSimulator(experiment, collector)
    simulator.run()
    simulator.network.check_conservation()
    wall = time.perf_counter() - started
    stats = simulator.manager.stats
    return PCSResult(
        experiment=experiment,
        metrics=collector.snapshot(),
        connections=stats,
        offered_streams=simulator.offered_streams,
        established_streams=simulator.manager.established_circuits,
        cycles_run=simulator.network.clock,
        wall_seconds=wall,
    )
