"""Parallel sweep execution: a process pool over independent points.

Every sweep in this repo (figure load sweeps, table grids, fault
campaigns) is a bag of independent points — each builds its own network
and its own :class:`~repro.sim.rng.RngStreams` from the experiment's
seed, so points share no state and their results cannot depend on
execution order.  That makes them safe to farm out to worker processes:
a point computed in a pool worker is bit-identical to the same point
computed inline.

Three layers of resilience, mirroring the serial path:

* **per-point retry** — workers run points through
  :func:`~repro.experiments.resilience.run_resilient`, so a wedged
  point retries with a reseeded experiment inside its worker;
* **checkpointing** — a :class:`~repro.experiments.resilience
  .SweepCheckpoint` restores finished points on rerun and persists each
  completion as it arrives;
* **crash recovery** — a worker process dying (OOM kill, segfault)
  breaks the pool; the executor rebuilds it and resubmits the
  unfinished points with a crash-reseeded experiment, bounded by
  ``crash_retries``.

Results cross the process boundary in *portable* form (live workloads
replaced by their summaries — see
:meth:`~repro.experiments.runner.ExperimentResult.portable`); for
uniformity the executor portable-izes inline (``jobs=1``) results too,
so downstream code sees the same shapes regardless of job count.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import MISSING, asdict, dataclass, fields, is_dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.experiments.resilience import (
    RESEED_STEP,
    SweepCheckpoint,
    run_resilient,
    wall_clock_limit,
)

#: seed offset applied to every not-yet-finished point after a worker
#: crash (a prime distinct from RESEED_STEP, so a crash-reseed can never
#: collide with an in-worker retry reseed of a neighbouring point)
CRASH_RESEED_STEP = 7919


#: experiment fields that determine the topology shape (and hence the
#: compiled route program); fingerprinted only when set off-default
_TOPOLOGY_KNOBS = (
    "num_ports",
    "rows",
    "cols",
    "hosts_per_router",
    "fat_width",
    "leaves",
    "spines",
    "hosts_per_leaf",
    "k",
    "arity",
    "levels",
)


def _topology_parts(experiment) -> List[str]:
    """Off-default topology-shape knobs, in declaration order."""
    if not is_dataclass(experiment):
        return []
    parts = []
    for spec in fields(type(experiment)):
        if spec.name not in _TOPOLOGY_KNOBS or spec.default is MISSING:
            continue
        value = getattr(experiment, spec.name)
        if value != spec.default:
            parts.append(f"{spec.name}={value}")
    return parts


def sweep_fingerprint(experiment) -> str:
    """Checkpoint-key suffix for the failover-era experiment knobs.

    Sweep-point keys written before these knobs existed must keep
    restoring from old checkpoints, so the fingerprint is empty at the
    default settings and otherwise encodes every knob that changes a
    point's physics — off-default topology-generator parameters (port
    count, mesh/tree shape, fat width), the routing mode, the
    health-monitor configuration, and the QoS deadline.  Appending it
    to point keys means resuming a checkpointed campaign with changed
    flags recomputes the points instead of serving stale cached ones.
    """
    parts = _topology_parts(experiment)
    mode = getattr(experiment, "routing_mode", "oracle")
    if mode != "oracle":
        parts.append(f"mode={mode}")
    health = getattr(experiment, "health", None)
    if health is not None and is_dataclass(health):
        knobs = ",".join(
            f"{name}={value}"
            for name, value in sorted(asdict(health).items())
        )
        parts.append(f"health[{knobs}]")
    deadline = getattr(
        getattr(experiment, "recovery", None), "qos_deadline", None
    )
    if deadline is not None:
        parts.append(f"deadline={deadline}")
    return "|".join(parts)


@dataclass(frozen=True)
class SweepTask:
    """One independent sweep point: run ``runner(experiment)``.

    ``key`` names the point in result dicts and checkpoints (e.g.
    ``"mediaworm@0.8"``); keys must be unique within one sweep.  Both
    ``runner`` and ``experiment`` must be picklable — in practice a
    module-level ``simulate_*`` function plus an experiment dataclass.
    """

    key: str
    runner: Callable
    experiment: object


def _make_portable(result):
    """Convert a runner result to its process-portable form."""
    portable = getattr(result, "portable", None)
    return portable() if portable is not None else result


class _TimedRunner:
    """Wrap a point runner in a per-attempt wall-clock limit.

    Constructed inside the worker (never pickled), so the wrapped
    runner itself stays an ordinary picklable module-level function.
    A limit firing raises :class:`~repro.errors.PointTimeoutError` — a
    :class:`~repro.errors.SimulationError`, so :func:`run_resilient`
    retries the point with a fresh seed like any other wedge.
    """

    def __init__(self, runner: Callable, seconds: float) -> None:
        self.runner = runner
        self.seconds = seconds

    def __call__(self, experiment):
        with wall_clock_limit(self.seconds):
            return self.runner(experiment)


def _run_task(
    task: SweepTask,
    attempts: int,
    reseed_step: int,
    cycle_budget: Optional[int],
    point_timeout: Optional[float] = None,
):
    """Worker body: one point, with in-worker reseed retries.

    Module-level so the process pool can pickle it.  Returns the
    portable result; a :class:`~repro.errors.SimulationError` from the
    final attempt propagates back through the future.
    """
    runner = task.runner
    if point_timeout is not None:
        runner = _TimedRunner(runner, point_timeout)
    result = run_resilient(
        runner,
        task.experiment,
        attempts=attempts,
        reseed_step=reseed_step,
        cycle_budget=cycle_budget,
    )
    return _make_portable(result)


class ParallelSweepExecutor:
    """Run sweep points inline (``jobs=1``) or in a process pool.

    The executor is deliberately stateless between :meth:`run` calls —
    the pool is created per sweep and torn down afterwards, so a
    campaign of several sweeps (``mediaworm all``) reuses one executor
    object without workers idling between figures.
    """

    def __init__(
        self,
        jobs: int = 1,
        attempts: int = 3,
        reseed_step: int = RESEED_STEP,
        cycle_budget: Optional[int] = None,
        crash_retries: int = 2,
        log: Optional[Callable[[str], None]] = None,
        point_timeout: Optional[float] = None,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if crash_retries < 0:
            raise ConfigurationError(
                f"crash_retries must be >= 0, got {crash_retries}"
            )
        if point_timeout is not None and point_timeout <= 0:
            raise ConfigurationError(
                f"point_timeout must be > 0 seconds, got {point_timeout}"
            )
        self.jobs = jobs
        self.attempts = attempts
        self.reseed_step = reseed_step
        self.cycle_budget = cycle_budget
        self.crash_retries = crash_retries
        self.log = log
        #: per-attempt wall-clock budget for one point, in seconds
        #: (None = unbounded); enforced inside the point's own worker
        self.point_timeout = point_timeout

    # ------------------------------------------------------------------

    def _say(self, message: str) -> None:
        if self.log is not None:
            self.log(message)

    def run(
        self,
        tasks: Sequence[SweepTask],
        checkpoint: Optional[SweepCheckpoint] = None,
        encode: Optional[Callable] = None,
        decode: Optional[Callable] = None,
        on_failure: Optional[Callable[[SweepTask, SimulationError], None]] = None,
    ) -> Dict[str, object]:
        """Run every task; return ``{task.key: result}`` in task order.

        With a ``checkpoint``, finished keys are restored via ``decode``
        instead of recomputed, and every completion is persisted via
        ``encode`` (both must be given together; values must be
        JSON-serialisable).  A point that exhausts its retries raises,
        unless ``on_failure`` is given — then the hook is called and the
        key is left out of the result dict (the hook may record a
        placeholder itself).
        """
        if (encode is None) != (decode is None):
            raise ConfigurationError(
                "checkpoint encode/decode must be given together"
            )
        if checkpoint is not None and encode is None:
            raise ConfigurationError(
                "a checkpoint needs encode/decode functions"
            )
        keys = [task.key for task in tasks]
        if len(set(keys)) != len(keys):
            raise ConfigurationError(f"duplicate sweep task keys in {keys}")

        results: Dict[str, object] = {}
        todo: List[SweepTask] = []
        for task in tasks:
            if checkpoint is not None and task.key in checkpoint:
                results[task.key] = decode(checkpoint.get(task.key))
            else:
                todo.append(task)

        if todo:
            if self.jobs == 1:
                self._run_inline(todo, results, checkpoint, encode, on_failure)
            else:
                self._run_pool(todo, results, checkpoint, encode, on_failure)
        # task order, not completion order
        return {key: results[key] for key in keys if key in results}

    # ------------------------------------------------------------------

    def _record(
        self,
        task: SweepTask,
        result,
        results: Dict[str, object],
        checkpoint: Optional[SweepCheckpoint],
        encode: Optional[Callable],
    ) -> None:
        results[task.key] = result
        if checkpoint is not None:
            checkpoint.put(task.key, encode(result))

    def _run_inline(self, todo, results, checkpoint, encode, on_failure) -> None:
        for task in todo:
            try:
                result = _run_task(
                    task,
                    self.attempts,
                    self.reseed_step,
                    self.cycle_budget,
                    self.point_timeout,
                )
            except SimulationError as exc:
                if on_failure is None:
                    raise
                self._say(f"point {task.key} failed: {exc}")
                on_failure(task, exc)
                continue
            self._record(task, result, results, checkpoint, encode)

    def _run_pool(self, todo, results, checkpoint, encode, on_failure) -> None:
        """Process-pool path with bounded crash recovery.

        A ``BrokenProcessPool`` (a worker died without raising — OOM
        kill, segfault, interpreter abort) voids every in-flight future,
        so the whole unfinished remainder is resubmitted to a fresh pool
        with crash-reseeded experiments.  Points that already completed
        (or failed with a proper error) are never rerun.
        """
        pending = list(todo)
        crashes = 0
        while pending:
            try:
                pending = self._run_pool_round(
                    pending, results, checkpoint, encode, on_failure
                )
            except BrokenProcessPool:
                crashes += 1
                if crashes > self.crash_retries:
                    raise SimulationError(
                        f"sweep worker pool crashed {crashes} times; "
                        f"{len(pending)} points unfinished "
                        f"({', '.join(t.key for t in pending[:5])}...)"
                    )
                self._say(
                    f"worker pool crashed (attempt {crashes}/"
                    f"{self.crash_retries}); resubmitting "
                    f"{len(pending)} points with reseed"
                )
                pending = [
                    replace(
                        task,
                        experiment=replace(
                            task.experiment,
                            seed=task.experiment.seed
                            + crashes * CRASH_RESEED_STEP,
                        ),
                    )
                    for task in pending
                ]

    def _run_pool_round(
        self, pending, results, checkpoint, encode, on_failure
    ) -> List[SweepTask]:
        """One pool lifetime; returns tasks still unfinished on crash."""
        unfinished = {task.key: task for task in pending}
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = {
                pool.submit(
                    _run_task,
                    task,
                    self.attempts,
                    self.reseed_step,
                    self.cycle_budget,
                    self.point_timeout,
                ): task
                for task in pending
            }
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    task = futures[future]
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        # Re-raise with the surviving remainder intact;
                        # _run_pool resubmits exactly these.
                        raise
                    except SimulationError as exc:
                        del unfinished[task.key]
                        if on_failure is None:
                            raise
                        self._say(f"point {task.key} failed: {exc}")
                        on_failure(task, exc)
                        continue
                    del unfinished[task.key]
                    self._record(task, result, results, checkpoint, encode)
        return [task for task in pending if task.key in unfinished]


def execute_tasks(
    tasks: Sequence[SweepTask],
    executor: Optional[ParallelSweepExecutor] = None,
) -> Dict[str, object]:
    """Run tasks through ``executor``, or plainly inline when ``None``.

    The ``None`` path calls each runner directly — no retries, no
    portable conversion — preserving the exact behaviour sweep callers
    had before executors existed (live workloads included), so existing
    single-point consumers and tests see no change.
    """
    if executor is not None:
        return executor.run(tasks)
    return {task.key: task.runner(task.experiment) for task in tasks}
