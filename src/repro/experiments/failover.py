"""Failover campaign: delivered QoS under permanent link failures.

The fault sweep (``mediaworm faults``) studies *transient* per-flit loss
with an oracle-routed fabric.  This campaign asks the harder robustness
question: when whole links die permanently mid-run, how much of the
guaranteed traffic survives — and how much does symptom-driven adaptive
routing (link-health monitoring + fault-aware detours + graceful QoS
degradation) buy over a blind static router?

Each point runs the 2x2 fat mesh with ``severity`` fat-link pairs
suffering one permanent member failure at the end of warmup, the
end-to-end recovery transport retransmitting, and the health monitor
watching symptoms.  The two series are the routing modes:

* ``adaptive`` — the monitor masks suspect links, reroutes within fat
  groups, detours around dead groups, requeues stuck worms, and sheds
  load (best-effort first) while capacity is degraded;
* ``static`` — the same detection telemetry, but the routers keep
  aiming at dead links; only timeout/retransmission limits the damage.

Reported per point: delivered QoS fraction, QoS deadline misses, jitter
(``d`` / ``sigma_d``), and the monitor's failover counters.  Points are
checkpointed with fingerprinted keys (see
:func:`~repro.experiments.parallel.sweep_fingerprint`), so resuming
with changed failover knobs recomputes instead of serving stale points.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.experiments.config import FatMeshExperiment
from repro.experiments.faultsweep import (
    _empty_metrics,
    _point_from_dict,
    _point_to_dict,
)
from repro.experiments.figures import (
    FigureData,
    Point,
    _base_kwargs,
    get_profile,
)
from repro.experiments.parallel import (
    ParallelSweepExecutor,
    SweepTask,
    sweep_fingerprint,
)
from repro.experiments.resilience import SweepCheckpoint
from repro.experiments.runner import simulate_fat_mesh
from repro.faults import FaultPlan, LinkDownWindow, RecoveryConfig
from repro.network.health import HealthConfig
from repro.network.topology import fat_mesh
from repro.router.config import RoutingMode

#: failed fat pairs swept by ``mediaworm failover`` (the 2x2 fat mesh
#: has 8 directed fat pairs, so 8 = one dead member in every group)
DEFAULT_SEVERITIES = (0, 2, 4, 8)

#: routing modes compared, one series each
CAMPAIGN_MODES = (RoutingMode.ADAPTIVE, RoutingMode.STATIC)

#: campaign operating point: the fat mesh at moderate load, 80:20 mix
CAMPAIGN_LOAD = 0.6
CAMPAIGN_MIX = (80, 20)


def _fat_pair_windows(
    experiment: FatMeshExperiment, severity: int, onset: int
) -> tuple:
    """Permanent down-windows killing one member of ``severity`` fat pairs.

    Channels are grouped by directed ``(src_router, dst_router)`` pair;
    the lowest-port member of each of the first ``severity`` pairs (in
    sorted pair order, for determinism) dies at ``onset`` and never
    recovers.  Every group keeps at least one healthy sibling, so the
    fabric stays connected and adaptive routing has somewhere to go.
    """
    topology = fat_mesh(
        rows=experiment.rows,
        cols=experiment.cols,
        hosts_per_router=experiment.hosts_per_router,
        fat_width=experiment.fat_width,
    )
    groups: Dict[tuple, List[tuple]] = {}
    for src, sp, dst, dp in topology.channels:
        groups.setdefault((src, dst), []).append((src, sp, dst, dp))
    if severity > len(groups):
        raise ConfigurationError(
            f"severity {severity} exceeds the {len(groups)} fat pairs "
            f"of the {experiment.rows}x{experiment.cols} mesh"
        )
    windows = []
    for pair in sorted(groups)[:severity]:
        src, sp, dst, dp = sorted(groups[pair])[0]
        windows.append(
            LinkDownWindow(
                link=f"ch:{src}.{sp}->{dst}.{dp}", start=onset, end=None
            )
        )
    return tuple(windows)


def _campaign_experiment(
    profile, mode: str, severity: int
) -> FatMeshExperiment:
    """One campaign point: fat mesh + permanent failures + failover stack."""
    base = FatMeshExperiment(
        load=CAMPAIGN_LOAD,
        mix=CAMPAIGN_MIX,
        vcs_per_pc=16,
        **_base_kwargs(profile),
    )
    interval = base.workload_config().frame_interval_cycles
    # Failures land at the end of warmup, so detection and failover are
    # entirely inside the measurement window and time-to-recovery is
    # comparable across profiles.
    onset = base.warmup_cycles
    # Transport clocks scale as in the fault sweep; the QoS deadline
    # gives each guaranteed message two frame intervals door-to-door,
    # enough for a couple of retransmissions but strict enough that
    # static routing's head-of-line stalls register as misses.
    timeout = max(512, interval // 2)
    recovery = RecoveryConfig(
        timeout=timeout,
        max_retries=8,
        backoff_base=max(16, interval // 256),
        backoff_cap=max(64, interval // 16),
        qos_deadline=2 * interval,
    )
    return dataclasses.replace(
        base,
        faults=FaultPlan(down_windows=_fat_pair_windows(base, severity, onset)),
        recovery=recovery,
        health=HealthConfig(),
        routing_mode=mode,
        # permanent failures stall progress longer than transient loss;
        # give the watchdog four intervals unless the profile overrides
        watchdog_window=profile.watchdog_window or 4 * interval,
    )


def _campaign_point(experiment: FatMeshExperiment) -> Point:
    """Worker body: run one point, reduced to its figure Point.

    Module-level (picklable) so the parallel executor can farm points
    out; ``x`` is the severity (number of failed fat-pair members).
    """
    result = simulate_fat_mesh(experiment)
    return Point(
        len(experiment.faults.down_windows),
        result.metrics,
        extra=result.fault_stats or {},
    )


def _point_key(mode: str, severity: int, experiment) -> str:
    """Fingerprinted checkpoint/result key for one point.

    Unlike the fault sweep, failover points always carry non-default
    knobs (routing mode, health config, deadline), so the fingerprint
    is always present — a checkpoint resumed after any knob change
    recomputes rather than reusing stale points.
    """
    return f"{mode}@{severity}|{sweep_fingerprint(experiment)}"


def run_failover_campaign(
    profile="default",
    severities: Optional[Sequence[int]] = None,
    checkpoint: Optional[SweepCheckpoint] = None,
    log=None,
    executor: Optional[ParallelSweepExecutor] = None,
) -> FigureData:
    """Sweep permanent-failure severity for adaptive vs static routing.

    Semantics mirror :func:`~repro.experiments.faultsweep
    .run_fault_campaign`: completed points persist to the checkpoint
    and are skipped on rerun, a point that fails every resilient retry
    records a ``failed`` extra instead of aborting, and an executor
    with ``jobs > 1`` runs points in a process pool bit-identically to
    the serial path.
    """
    profile = get_profile(profile)
    severities = (
        DEFAULT_SEVERITIES if severities is None else tuple(severities)
    )
    if executor is None:
        executor = ParallelSweepExecutor(jobs=1, log=log)
    experiments = {
        (mode, severity): _campaign_experiment(profile, mode, severity)
        for mode in CAMPAIGN_MODES
        for severity in severities
    }
    keys = {
        point: _point_key(point[0], point[1], experiment)
        for point, experiment in experiments.items()
    }
    tasks = [
        SweepTask(
            key=keys[(mode, severity)],
            runner=_campaign_point,
            experiment=experiments[(mode, severity)],
        )
        for mode in CAMPAIGN_MODES
        for severity in severities
    ]
    if checkpoint is not None and log is not None:
        for task in tasks:
            if task.key in checkpoint:
                log(f"[failover] {task.key}: restored from checkpoint")

    failed: Dict[str, Point] = {}

    def on_failure(task: SweepTask, exc: SimulationError) -> None:
        point = Point(
            len(task.experiment.faults.down_windows),
            _empty_metrics(),
            extra={"failed": f"{type(exc).__name__}: {exc}"},
        )
        failed[task.key] = point
        if checkpoint is not None:
            checkpoint.put(task.key, _point_to_dict(point))
        if log is not None:
            log(f"[failover] {task.key}: FAILED ({type(exc).__name__})")

    results = executor.run(
        tasks,
        checkpoint=checkpoint,
        encode=_point_to_dict,
        decode=_point_from_dict,
        on_failure=on_failure,
    )
    series: Dict[str, List[Point]] = {
        mode: [
            results.get(keys[(mode, severity)])
            or failed[keys[(mode, severity)]]
            for severity in severities
        ]
        for mode in CAMPAIGN_MODES
    }
    return FigureData(
        figure_id="failover",
        title=(
            "QoS failover under permanent link failures "
            "(2x2 fat mesh, 80:20 mix, load 0.6)"
        ),
        xlabel="failed fat-pair members",
        series=series,
        notes="one permanent member failure per fat pair at end of "
        "warmup; health monitoring on in both modes, failover actions "
        "only in adaptive",
    )


def failover_campaign_to_text(fig: FigureData) -> str:
    """Render the campaign as an aligned terminal table."""
    header = (
        f"{'routing':<9} {'failed':>6} {'qos frac':>9} {'misses':>7} "
        f"{'d (ms)':>8} {'sigma_d':>8} {'reroute':>8} {'detour':>7} "
        f"{'requeue':>8} {'shed':>5} {'abandoned':>9}"
    )
    lines = [fig.title, header, "-" * len(header)]
    for name, points in fig.series.items():
        for point in points:
            extra = point.extra
            if "failed" in extra:
                lines.append(
                    f"{name:<9} {point.x:>6} "
                    f"{'FAILED: ' + str(extra['failed'])}"
                )
                continue
            health = extra.get("health") or {}
            lines.append(
                f"{name:<9} {point.x:>6} "
                f"{extra.get('qos_delivered_fraction', 1.0):>9.4f} "
                f"{extra.get('qos_deadline_misses', 0):>7} "
                f"{point.d:>8.3f} {point.sigma_d:>8.3f} "
                f"{health.get('reroutes', 0):>8} "
                f"{health.get('detours', 0):>7} "
                f"{health.get('worms_requeued', 0):>8} "
                f"{health.get('streams_shed', 0):>5} "
                f"{extra.get('qos_abandoned', 0):>9}"
            )
    if fig.notes:
        lines.append(f"({fig.notes})")
    return "\n".join(lines)
