"""Runners regenerating the paper's numeric tables.

* Table 2 — average best-effort latency (us) per traffic mix and load,
  reusing the Fig. 5 grid of runs.
* Table 3 — attempted / established / dropped connections of the PCS
  router across input loads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import PCSExperiment
from repro.experiments.figures import (
    DEFAULT_LOADS,
    RunProfile,
    get_profile,
    run_mixed_grid,
)
from repro.experiments.parallel import SweepTask, execute_tasks
from repro.experiments.runner import PCSResult, simulate_pcs

#: the paper marks saturated best-effort latencies as "Sat."
SATURATION_LATENCY_US = 1000.0

#: mixes whose best-effort latency Table 2 reports (100:0 has none)
TABLE2_MIXES: Tuple[Tuple[float, float], ...] = (
    (20, 80),
    (50, 50),
    (80, 20),
    (90, 10),
)

#: the loads the paper's Table 3 samples
TABLE3_LOADS: Tuple[float, ...] = (
    0.37,
    0.42,
    0.64,
    0.67,
    0.74,
    0.80,
    0.87,
    0.91,
)


@dataclass
class Table2Data:
    """Best-effort latency grid: (mix, load) -> mean latency in us."""

    loads: List[float]
    mixes: List[Tuple[float, float]]
    latency_us: Dict[Tuple[Tuple[float, float], float], float]

    def cell(self, mix: Tuple[float, float], load: float) -> float:
        return self.latency_us[(tuple(mix), load)]

    def cell_text(self, mix: Tuple[float, float], load: float) -> str:
        """Latency formatted the way the paper prints the table."""
        value = self.cell(mix, load)
        if value != value:  # nan: no best-effort messages delivered
            return "-"
        if value >= SATURATION_LATENCY_US:
            return "Sat."
        return f"{value:.1f}"


def run_table2(
    profile="default",
    loads: Optional[Sequence[float]] = None,
    mixes: Optional[Sequence[Tuple[float, float]]] = None,
    grid: Optional[Dict] = None,
    executor=None,
) -> Table2Data:
    """Average best-effort latency for the (mix x load) grid."""
    loads = DEFAULT_LOADS if loads is None else loads
    mixes = TABLE2_MIXES if mixes is None else mixes
    if grid is None:
        grid = run_mixed_grid(profile, loads, mixes, executor=executor)
    latency: Dict[Tuple[Tuple[float, float], float], float] = {}
    for mix in mixes:
        for load in loads:
            result = grid[(tuple(mix), load)]
            latency[(tuple(mix), load)] = result.metrics.be_latency_us
    return Table2Data(
        loads=list(loads), mixes=[tuple(m) for m in mixes], latency_us=latency
    )


@dataclass
class Table3Row:
    """One load point of the PCS connection table."""

    load: float
    attempts: int
    established: int
    dropped: int
    offered: int
    abandoned: int


@dataclass
class Table3Data:
    """PCS connection accounting across loads."""

    rows: List[Table3Row]

    def check(self) -> None:
        """Table 3 identity: attempts = established + dropped, per row."""
        for row in self.rows:
            assert row.attempts == row.established + row.dropped, row


def run_table3(
    profile="default",
    loads: Optional[Sequence[float]] = None,
    executor=None,
) -> Table3Data:
    """Attempted / established / dropped PCS connections per load."""
    profile = get_profile(profile)
    loads = TABLE3_LOADS if loads is None else loads
    tasks = [
        SweepTask(
            key=f"pcs@{load:g}",
            runner=simulate_pcs,
            experiment=PCSExperiment(
                load=load,
                scale=profile.scale,
                warmup_frames=profile.warmup_frames,
                measure_frames=profile.measure_frames,
                seed=profile.seed,
            ),
        )
        for load in loads
    ]
    results = execute_tasks(tasks, executor)
    rows: List[Table3Row] = []
    for load in loads:
        result: PCSResult = results[f"pcs@{load:g}"]
        stats = result.connections
        rows.append(
            Table3Row(
                load=load,
                attempts=stats.attempts,
                established=stats.established,
                dropped=stats.dropped,
                offered=result.offered_streams,
                abandoned=stats.abandoned_streams,
            )
        )
    data = Table3Data(rows=rows)
    data.check()
    return data


TABLES = {
    "table2": run_table2,
    "table3": run_table3,
}
