"""Fault campaign: QoS under link faults (beyond the paper's evaluation).

The paper evaluates MediaWorm on a fault-free fabric.  This sweep asks
the robustness question the original evaluation leaves open: how do the
two schedulers (Virtual Clock vs FIFO) degrade when the fat-mesh links
start dropping flits?  Each point runs the 2x2 fat mesh at a fixed load
and mix with a :class:`~repro.faults.FaultPlan` injecting per-flit loss
at the given rate, the end-to-end recovery transport picking up the
pieces, and the progress watchdog bounding wedged runs.

Results are delivered-fraction and jitter versus fault rate, one series
per scheduler, checkpointed per point so an interrupted campaign
resumes where it stopped.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.core.schedulers import SchedulingPolicy
from repro.errors import SimulationError
from repro.experiments.config import FatMeshExperiment
from repro.experiments.figures import (
    FigureData,
    Point,
    _base_kwargs,
    get_profile,
)
from repro.experiments.parallel import (
    ParallelSweepExecutor,
    SweepTask,
    sweep_fingerprint,
)
from repro.experiments.resilience import SweepCheckpoint
from repro.experiments.runner import simulate_fat_mesh
from repro.faults import FaultPlan, RecoveryConfig
from repro.metrics.collector import RunMetrics

#: per-flit loss probabilities swept by ``mediaworm faults``
DEFAULT_FAULT_RATES = (0.0, 0.001, 0.005, 0.01, 0.02)

#: campaign operating point: the fat mesh at moderate load, 80:20 mix
CAMPAIGN_LOAD = 0.7
CAMPAIGN_MIX = (80, 20)


def _campaign_experiment(profile, policy: str, rate: float) -> FatMeshExperiment:
    """One campaign point: fat mesh + fault plan + scaled recovery."""
    base = FatMeshExperiment(
        load=CAMPAIGN_LOAD,
        mix=CAMPAIGN_MIX,
        scheduler=policy,
        vcs_per_pc=16,
        **_base_kwargs(profile),
    )
    # Scale the transport's clocks to the workload.  The timeout runs
    # from the header flit leaving the NI and must cover the message's
    # own rate pacing (~message_size * vtick, a fifth of a frame
    # interval here) plus transit and contention; half an interval
    # leaves ample slack without delaying loss detection much.
    interval = base.workload_config().frame_interval_cycles
    timeout = max(512, interval // 2)
    recovery = RecoveryConfig(
        timeout=timeout,
        max_retries=6,
        backoff_base=max(16, interval // 256),
        backoff_cap=max(64, interval // 16),
    )
    return dataclasses.replace(
        base,
        faults=FaultPlan(flit_loss_prob=rate),
        recovery=recovery,
        # the profile's watchdog (mediaworm --watchdog) wins over the
        # campaign's scaled default of two frame intervals
        watchdog_window=profile.watchdog_window or 2 * interval,
    )


def _campaign_point(experiment: FatMeshExperiment) -> Point:
    """Worker body: run one campaign point, reduced to its figure Point.

    Module-level (picklable) so the parallel executor can run campaign
    points in pool workers; returning the Point rather than the full
    result keeps the checkpoint encoding identical between serial and
    parallel paths.
    """
    result = simulate_fat_mesh(experiment)
    return Point(
        experiment.faults.flit_loss_prob,
        result.metrics,
        extra=result.fault_stats or {},
    )


def _point_key(policy: str, rate: float, experiment=None) -> str:
    """Checkpoint/result key for one point.

    The fingerprint suffix is empty for the campaign's default knobs,
    so checkpoints written before routing modes and health monitoring
    existed keep restoring; non-default knobs change the key and force
    a recompute.
    """
    key = f"{policy}@{rate:g}"
    fingerprint = sweep_fingerprint(experiment) if experiment is not None else ""
    return f"{key}|{fingerprint}" if fingerprint else key


def _empty_metrics() -> RunMetrics:
    """Placeholder metrics for a point that failed every retry."""
    return RunMetrics(
        mean_delivery_interval_ms=0.0,
        std_delivery_interval_ms=0.0,
        frames_delivered=0,
        interval_count=0,
        be_latency_us=0.0,
        be_latency_us_paper_equivalent=0.0,
        be_latency_std_us=0.0,
        be_message_count=0,
    )


def _point_to_dict(point: Point) -> Dict:
    return {
        "x": point.x,
        "metrics": dataclasses.asdict(point.metrics),
        "extra": point.extra,
    }


def _point_from_dict(data: Dict) -> Point:
    return Point(
        x=data["x"],
        metrics=RunMetrics(**data["metrics"]),
        extra=dict(data.get("extra") or {}),
    )


def run_fault_campaign(
    profile="default",
    rates: Optional[Sequence[float]] = None,
    checkpoint: Optional[SweepCheckpoint] = None,
    log=None,
    executor: Optional[ParallelSweepExecutor] = None,
) -> FigureData:
    """Sweep flit-loss rates for both schedulers on the fat mesh.

    With a ``checkpoint``, every completed point is persisted and a
    rerun with the same metadata skips straight past it; a point that
    keeps failing after the resilient retries records a ``failed`` extra
    instead of aborting the campaign.  An ``executor`` with ``jobs > 1``
    farms the points out to a process pool; results are bit-identical
    to the serial path (each point seeds its own RNG streams).
    """
    profile = get_profile(profile)
    rates = DEFAULT_FAULT_RATES if rates is None else tuple(rates)
    if executor is None:
        executor = ParallelSweepExecutor(jobs=1, log=log)
    policies = (SchedulingPolicy.VIRTUAL_CLOCK, SchedulingPolicy.FIFO)
    experiments = {
        (policy, rate): _campaign_experiment(profile, policy, rate)
        for policy in policies
        for rate in rates
    }
    keys = {
        (policy, rate): _point_key(policy, rate, experiment)
        for (policy, rate), experiment in experiments.items()
    }
    tasks = [
        SweepTask(
            key=keys[(policy, rate)],
            runner=_campaign_point,
            experiment=experiments[(policy, rate)],
        )
        for policy in policies
        for rate in rates
    ]
    if checkpoint is not None and log is not None:
        for task in tasks:
            if task.key in checkpoint:
                log(f"[faults] {task.key}: restored from checkpoint")

    failed: Dict[str, Point] = {}

    def on_failure(task: SweepTask, exc: SimulationError) -> None:
        rate = task.experiment.faults.flit_loss_prob
        point = Point(
            rate,
            _empty_metrics(),
            extra={"failed": f"{type(exc).__name__}: {exc}"},
        )
        failed[task.key] = point
        if checkpoint is not None:
            checkpoint.put(task.key, _point_to_dict(point))
        if log is not None:
            log(f"[faults] {task.key}: FAILED ({type(exc).__name__})")

    results = executor.run(
        tasks,
        checkpoint=checkpoint,
        encode=_point_to_dict,
        decode=_point_from_dict,
        on_failure=on_failure,
    )
    series: Dict[str, List[Point]] = {
        policy: [
            results.get(keys[(policy, rate)]) or failed[keys[(policy, rate)]]
            for rate in rates
        ]
        for policy in policies
    }
    return FigureData(
        figure_id="faults",
        title="QoS under link faults (2x2 fat mesh, 80:20 mix, load 0.7)",
        xlabel="per-flit loss probability",
        series=series,
        notes="end-to-end recovery enabled (checksum + timeout/"
        "retransmission with capped exponential backoff)",
    )


def fault_campaign_to_text(fig: FigureData) -> str:
    """Render the campaign as an aligned terminal table."""
    header = (
        f"{'scheduler':<14} {'loss rate':>9} {'delivered':>9} "
        f"{'d (ms)':>8} {'sigma_d':>8} {'lost':>7} {'rexmit':>7} "
        f"{'abandoned':>9}"
    )
    lines = [fig.title, header, "-" * len(header)]
    for name, points in fig.series.items():
        for point in points:
            extra = point.extra
            if "failed" in extra:
                lines.append(
                    f"{name:<14} {point.x:>9g} {'FAILED: ' + str(extra['failed'])}"
                )
                continue
            delivered = extra.get("delivered_fraction", 1.0)
            lines.append(
                f"{name:<14} {point.x:>9g} {delivered:>9.4f} "
                f"{point.d:>8.3f} {point.sigma_d:>8.3f} "
                f"{extra.get('flits_lost', 0):>7} "
                f"{extra.get('retransmissions', 0):>7} "
                f"{extra.get('abandoned', 0):>9}"
            )
    if fig.notes:
        lines.append(f"({fig.notes})")
    return "\n".join(lines)
