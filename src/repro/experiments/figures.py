"""Sweep runners regenerating every figure of the paper's evaluation.

Each ``run_figN`` function performs the paper's parameter sweep and
returns a :class:`FigureData` whose series carry the same quantities the
figure plots (mean delivery interval ``d`` and its standard deviation
``sigma_d`` in ms, plus best-effort latency where the figure shows it).

Every runner accepts a :class:`RunProfile` controlling the workload
scale and measurement horizon:

* ``quick``   — smallest run that still shows the shape (CI/tests);
* ``default`` — the benchmark setting: scale 20, a ~0.5 s simulated
  window, minutes of wall time for the full suite;
* ``full``    — paper-faithful time constants (scale 1); hours.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.schedulers import SchedulingPolicy
from repro.experiments.config import (
    FatMeshExperiment,
    PCSExperiment,
    SingleSwitchExperiment,
)
from repro.experiments.parallel import SweepTask, execute_tasks
from repro.experiments.runner import (
    ExperimentResult,
    PCSResult,
    simulate_fat_mesh,
    simulate_pcs,
    simulate_single_switch,
)
from repro.metrics.collector import RunMetrics
from repro.router.config import CrossbarKind
from repro.router.flit import TrafficClass


@dataclass(frozen=True)
class RunProfile:
    """Workload scale and horizon for a sweep."""

    name: str
    scale: float
    warmup_frames: int
    measure_frames: int
    seed: int = 1
    #: progress watchdog applied to every experiment of the sweep
    #: (None = each sweep's own default; ``mediaworm --watchdog`` sets it)
    watchdog_window: Optional[int] = None
    #: simulation engine applied to every experiment of the sweep
    #: (None = the experiment default; ``mediaworm --engine`` sets it)
    engine: Optional[str] = None


PROFILES: Dict[str, RunProfile] = {
    # CI-sized: the smallest run that still exercises warmup + measure
    "smoke": RunProfile("smoke", scale=100.0, warmup_frames=1, measure_frames=2),
    "quick": RunProfile("quick", scale=40.0, warmup_frames=2, measure_frames=4),
    "default": RunProfile(
        "default", scale=20.0, warmup_frames=3, measure_frames=8
    ),
    "full": RunProfile("full", scale=1.0, warmup_frames=4, measure_frames=16),
}

#: load points used by the single-switch sweeps (Figs. 3-6)
DEFAULT_LOADS: Tuple[float, ...] = (0.6, 0.7, 0.8, 0.9, 0.96)
#: load points of the Fig. 6 sweep (starts at 0.5 like the paper's plot)
FIG6_LOADS: Tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9, 0.96)
#: the two representative loads of the Fig. 7 message-size study
FIG7_LOADS: Tuple[float, ...] = (0.64, 0.80)
#: load points of the PCS comparison (Fig. 8)
FIG8_LOADS: Tuple[float, ...] = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
#: load points of the fat-mesh study (Fig. 9)
FIG9_LOADS: Tuple[float, ...] = (0.7, 0.8, 0.9)


def get_profile(profile) -> RunProfile:
    """Resolve a profile name or pass a RunProfile through."""
    if isinstance(profile, RunProfile):
        return profile
    return PROFILES[profile]


@dataclass
class Point:
    """One sweep point: the x value and its run metrics."""

    x: object
    metrics: RunMetrics
    extra: Dict = field(default_factory=dict)

    @property
    def d(self) -> float:
        return self.metrics.mean_delivery_interval_ms

    @property
    def sigma_d(self) -> float:
        return self.metrics.std_delivery_interval_ms

    @property
    def be_latency_us(self) -> float:
        return self.metrics.be_latency_us


@dataclass
class FigureData:
    """A reproduced figure: named series of sweep points."""

    figure_id: str
    title: str
    xlabel: str
    series: Dict[str, List[Point]]
    notes: str = ""

    def series_names(self) -> List[str]:
        return list(self.series)

    def rows(self) -> List[Tuple]:
        """Flat (series, x, d, sigma_d, be_latency) tuples for reports."""
        out = []
        for name, points in self.series.items():
            for p in points:
                out.append((name, p.x, p.d, p.sigma_d, p.be_latency_us))
        return out


def _base_kwargs(profile: RunProfile) -> Dict:
    kwargs = dict(
        scale=profile.scale,
        warmup_frames=profile.warmup_frames,
        measure_frames=profile.measure_frames,
        seed=profile.seed,
    )
    if profile.watchdog_window is not None:
        kwargs["watchdog_window"] = profile.watchdog_window
    if profile.engine is not None:
        kwargs["engine"] = profile.engine
    return kwargs


# ----------------------------------------------------------------------
# Figure 3 — Virtual Clock vs FIFO (16 VCs, 80:20 mix)


def run_fig3(
    profile="default",
    loads: Optional[Sequence[float]] = None,
    executor=None,
) -> FigureData:
    """MediaWorm's headline result: rate-based scheduling removes jitter.

    The same 80:20 VBR/best-effort workload is offered to a 16-VC
    multiplexed-crossbar router whose multiplexers run FIFO (a
    conventional wormhole router) and Virtual Clock (MediaWorm).
    """
    profile = get_profile(profile)
    loads = DEFAULT_LOADS if loads is None else loads
    policies = (SchedulingPolicy.VIRTUAL_CLOCK, SchedulingPolicy.FIFO)
    tasks = [
        SweepTask(
            key=f"{policy}@{load:g}",
            runner=simulate_single_switch,
            experiment=SingleSwitchExperiment(
                load=load,
                mix=(80, 20),
                scheduler=policy,
                vcs_per_pc=16,
                **_base_kwargs(profile),
            ),
        )
        for policy in policies
        for load in loads
    ]
    results = execute_tasks(tasks, executor)
    series: Dict[str, List[Point]] = {
        policy: [
            Point(load, results[f"{policy}@{load:g}"].metrics)
            for load in loads
        ]
        for policy in policies
    }
    return FigureData(
        figure_id="fig3",
        title="Virtual Clock vs FIFO (16 VCs, 80:20 mix)",
        xlabel="input link load",
        series=series,
    )


# ----------------------------------------------------------------------
# Figure 4 — CBR vs VBR (no best-effort traffic)


def run_fig4(
    profile="default",
    loads: Optional[Sequence[float]] = None,
    executor=None,
) -> FigureData:
    """CBR and VBR compared head-to-head with no best-effort component."""
    profile = get_profile(profile)
    loads = DEFAULT_LOADS if loads is None else loads
    classes = (TrafficClass.VBR, TrafficClass.CBR)
    tasks = [
        SweepTask(
            key=f"{rt_class}@{load:g}",
            runner=simulate_single_switch,
            experiment=SingleSwitchExperiment(
                load=load,
                mix=(100, 0),
                rt_class=rt_class,
                vcs_per_pc=16,
                **_base_kwargs(profile),
            ),
        )
        for rt_class in classes
        for load in loads
    ]
    results = execute_tasks(tasks, executor)
    series: Dict[str, List[Point]] = {
        rt_class: [
            Point(load, results[f"{rt_class}@{load:g}"].metrics)
            for load in loads
        ]
        for rt_class in classes
    }
    return FigureData(
        figure_id="fig4",
        title="CBR vs VBR traffic (16 VCs, 400 Mbps links)",
        xlabel="input link load",
        series=series,
    )


# ----------------------------------------------------------------------
# Figure 5 / Table 2 — traffic mixes


DEFAULT_MIXES: Tuple[Tuple[float, float], ...] = (
    (20, 80),
    (50, 50),
    (80, 20),
    (90, 10),
    (100, 0),
)


def run_mixed_grid(
    profile="default",
    loads: Optional[Sequence[float]] = None,
    mixes: Optional[Sequence[Tuple[float, float]]] = None,
    executor=None,
) -> Dict[Tuple[Tuple[float, float], float], ExperimentResult]:
    """The (mix x load) grid shared by Fig. 5 and Table 2."""
    profile = get_profile(profile)
    loads = DEFAULT_LOADS if loads is None else loads
    mixes = DEFAULT_MIXES if mixes is None else mixes
    tasks = [
        SweepTask(
            key=f"{mix[0]:g}:{mix[1]:g}@{load:g}",
            runner=simulate_single_switch,
            experiment=SingleSwitchExperiment(
                load=load,
                mix=tuple(mix),
                vcs_per_pc=16,
                **_base_kwargs(profile),
            ),
        )
        for mix in mixes
        for load in loads
    ]
    results = execute_tasks(tasks, executor)
    return {
        (tuple(mix), load): results[f"{mix[0]:g}:{mix[1]:g}@{load:g}"]
        for mix in mixes
        for load in loads
    }


def run_fig5(
    profile="default",
    loads: Optional[Sequence[float]] = None,
    mixes: Optional[Sequence[Tuple[float, float]]] = None,
    grid: Optional[Dict] = None,
    executor=None,
) -> FigureData:
    """VBR jitter across traffic mixes: one series per input load."""
    loads = DEFAULT_LOADS if loads is None else loads
    mixes = DEFAULT_MIXES if mixes is None else mixes
    if grid is None:
        grid = run_mixed_grid(profile, loads, mixes, executor=executor)
    series: Dict[str, List[Point]] = {}
    for load in loads:
        points = []
        for mix in mixes:
            key = (tuple(mix), load)
            result = grid[key]
            label = f"{mix[0]:g}:{mix[1]:g}"
            points.append(Point(label, result.metrics))
        series[f"load={load:g}"] = points
    return FigureData(
        figure_id="fig5",
        title="Mixed traffic (16 VCs): jitter vs real-time proportion",
        xlabel="real-time : best-effort mix",
        series=series,
    )


# ----------------------------------------------------------------------
# Figure 6 — VC count and crossbar capability


def run_fig6(
    profile="default",
    loads: Optional[Sequence[float]] = None,
    executor=None,
) -> FigureData:
    """More VCs vs a full crossbar with few VCs (100:0 traffic)."""
    profile = get_profile(profile)
    loads = FIG6_LOADS if loads is None else loads
    configs = (
        ("16 VCs, multiplexed", 16, CrossbarKind.MULTIPLEXED),
        ("8 VCs, multiplexed", 8, CrossbarKind.MULTIPLEXED),
        ("4 VCs, multiplexed", 4, CrossbarKind.MULTIPLEXED),
        ("4 VCs, full crossbar", 4, CrossbarKind.FULL),
    )
    tasks = [
        SweepTask(
            key=f"{label}@{load:g}",
            runner=simulate_single_switch,
            experiment=SingleSwitchExperiment(
                load=load,
                mix=(100, 0),
                vcs_per_pc=vcs,
                crossbar=crossbar,
                **_base_kwargs(profile),
            ),
        )
        for label, vcs, crossbar in configs
        for load in loads
    ]
    results = execute_tasks(tasks, executor)
    series: Dict[str, List[Point]] = {
        label: [
            Point(load, results[f"{label}@{load:g}"].metrics)
            for load in loads
        ]
        for label, _, _ in configs
    }
    return FigureData(
        figure_id="fig6",
        title="Impact of VCs and crossbar capability (100:0)",
        xlabel="input link load",
        series=series,
    )


# ----------------------------------------------------------------------
# Figure 7 — message size


def run_fig7(
    profile="default",
    loads: Optional[Sequence[float]] = None,
    message_sizes: Optional[Sequence[int]] = None,
    executor=None,
) -> FigureData:
    """Effect of message size on VBR jitter, with header overhead.

    Each message carries one header flit, so small messages spend a
    larger wire-bandwidth fraction on headers (1/20 = 5% at the paper's
    default size) — the overhead visible at the left edge of Fig. 7.
    The top of the paper's range (2560 flits, i.e. more than a whole
    frame in one wormhole message) is scaled along with the workload.
    """
    profile = get_profile(profile)
    loads = FIG7_LOADS if loads is None else loads
    if message_sizes is None:
        # Paper sweep: 20, 40, 80, 160, 2560 flits at scale 1.  The
        # largest size is meaningful only relative to the frame size
        # (4167 flits), so it scales with the workload.
        top = max(40, int(2560 / profile.scale))
        message_sizes = tuple(sorted({10, 20, 40, 80, 160, top}))
    tasks = [
        SweepTask(
            key=f"load={load:g}@{size}",
            runner=simulate_single_switch,
            experiment=SingleSwitchExperiment(
                load=load,
                mix=(100, 0),
                vcs_per_pc=16,
                message_size=size,
                header_flits=1,
                **_base_kwargs(profile),
            ),
        )
        for load in loads
        for size in message_sizes
    ]
    results = execute_tasks(tasks, executor)
    series: Dict[str, List[Point]] = {
        f"load={load:g}": [
            Point(size, results[f"load={load:g}@{size}"].metrics)
            for size in message_sizes
        ]
        for load in loads
    }
    return FigureData(
        figure_id="fig7",
        title="Effect of message size on jitter (16 VCs)",
        xlabel="message size (flits)",
        series=series,
        notes="one header flit per message; sizes above the scaled frame "
        "size collapse a frame into a single wormhole message",
    )


# ----------------------------------------------------------------------
# Figure 8 — MediaWorm vs PCS (100 Mbps, 24 VCs)


def run_fig8(
    profile="default",
    loads: Optional[Sequence[float]] = None,
    executor=None,
) -> FigureData:
    """Wormhole (MediaWorm) against the connection-oriented PCS router."""
    profile = get_profile(profile)
    loads = FIG8_LOADS if loads is None else loads
    tasks = [
        SweepTask(
            key=f"wormhole@{load:g}",
            runner=simulate_single_switch,
            experiment=SingleSwitchExperiment(
                load=load,
                mix=(100, 0),
                bandwidth_mbps=100.0,
                vcs_per_pc=24,
                **_base_kwargs(profile),
            ),
        )
        for load in loads
    ] + [
        SweepTask(
            key=f"pcs@{load:g}",
            runner=simulate_pcs,
            experiment=PCSExperiment(load=load, **_base_kwargs(profile)),
        )
        for load in loads
    ]
    results = execute_tasks(tasks, executor)
    series: Dict[str, List[Point]] = {"wormhole": [], "pcs": []}
    for load in loads:
        wh = results[f"wormhole@{load:g}"]
        series["wormhole"].append(Point(load, wh.metrics))
        pcs = results[f"pcs@{load:g}"]
        series["pcs"].append(
            Point(
                load,
                pcs.metrics,
                extra={
                    "attempts": pcs.connections.attempts,
                    "established": pcs.connections.established,
                    "dropped": pcs.connections.dropped,
                },
            )
        )
    return FigureData(
        figure_id="fig8",
        title="MediaWorm vs PCS (8x8 switch, 100 Mbps, 24 VCs)",
        xlabel="input link load",
        series=series,
        notes="PCS points accept only the connections that survived "
        "setup; wormhole accepts every stream",
    )


# ----------------------------------------------------------------------
# Figure 9 — 2x2 fat mesh


DEFAULT_FAT_MESH_MIXES: Tuple[Tuple[float, float], ...] = (
    (40, 60),
    (60, 40),
    (80, 20),
)


def run_fig9(
    profile="default",
    loads: Optional[Sequence[float]] = None,
    mixes: Optional[Sequence[Tuple[float, float]]] = None,
    executor=None,
) -> FigureData:
    """The 2x2 fat mesh: jitter and best-effort latency across mixes."""
    profile = get_profile(profile)
    loads = FIG9_LOADS if loads is None else loads
    mixes = DEFAULT_FAT_MESH_MIXES if mixes is None else mixes
    tasks = [
        SweepTask(
            key=f"load={load:g}@{mix[0]:g}:{mix[1]:g}",
            runner=simulate_fat_mesh,
            experiment=FatMeshExperiment(
                load=load,
                mix=tuple(mix),
                vcs_per_pc=16,
                **_base_kwargs(profile),
            ),
        )
        for load in loads
        for mix in mixes
    ]
    results = execute_tasks(tasks, executor)
    series: Dict[str, List[Point]] = {
        f"load={load:g}": [
            Point(
                f"{mix[0]:g}:{mix[1]:g}",
                results[f"load={load:g}@{mix[0]:g}:{mix[1]:g}"].metrics,
            )
            for mix in mixes
        ]
        for load in loads
    }
    return FigureData(
        figure_id="fig9",
        title="(2x2) fat mesh: jitter and best-effort latency",
        xlabel="real-time : best-effort mix",
        series=series,
    )


#: registry used by the CLI and the benchmarks
FIGURES = {
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
}
