"""Plain-text rendering of reproduced figures and tables.

The harness prints the same rows/series the paper reports, as aligned
text tables — suitable for terminals, logs, and the EXPERIMENTS.md
paper-vs-measured records.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

from repro.experiments.figures import FigureData
from repro.experiments.tables import Table2Data, Table3Data


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append(
            " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if math.isnan(cell):
            return "-"
        return f"{cell:.3f}"
    return str(cell)


def figure_to_text(fig: FigureData, show_be_latency: bool = False) -> str:
    """Render a reproduced figure as one table per series."""
    parts = [f"== {fig.figure_id}: {fig.title} =="]
    headers = [fig.xlabel, "d (ms)", "sigma_d (ms)"]
    if show_be_latency:
        headers.append("BE latency (us)")
    for name, points in fig.series.items():
        rows = []
        for p in points:
            row = [p.x, p.d, p.sigma_d]
            if show_be_latency:
                row.append(p.be_latency_us)
            rows.append(row)
        parts.append(f"-- series: {name}")
        parts.append(format_table(headers, rows))
    if fig.notes:
        parts.append(f"note: {fig.notes}")
    return "\n".join(parts)


def table2_to_text(data: Table2Data) -> str:
    """Render Table 2 with the paper's layout (mix rows, load columns)."""
    headers = ["x:y"] + [f"{load:g}" for load in data.loads]
    rows = []
    for mix in data.mixes:
        row = [f"{mix[0]:g}:{mix[1]:g}"]
        row.extend(data.cell_text(mix, load) for load in data.loads)
        rows.append(row)
    return (
        "== table2: Average latency for best-effort traffic (us) ==\n"
        + format_table(headers, rows)
        + f"\n('Sat.' marks latencies beyond "
        f"{int(round(float(_SAT())))} us, as in the paper)"
    )


def _SAT() -> float:
    from repro.experiments.tables import SATURATION_LATENCY_US

    return SATURATION_LATENCY_US


def table3_to_text(data: Table3Data) -> str:
    """Render Table 3: attempted / established / dropped connections."""
    headers = [
        "Input Load",
        "#Conn. Attempts",
        "# Established",
        "# Dropped",
        "offered",
        "abandoned",
    ]
    rows = [
        (
            f"{row.load:g}",
            row.attempts,
            row.established,
            row.dropped,
            row.offered,
            row.abandoned,
        )
        for row in sorted(data.rows, key=lambda r: -r.load)
    ]
    return (
        "== table3: PCS attempted/established/dropped connections ==\n"
        + format_table(headers, rows)
    )
