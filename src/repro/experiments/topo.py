"""``mediaworm topo``: inspect a topology and its compiled route program.

Builds one topology from the generator name plus shape flags and
prints its structure — switch/host/channel counts, levels — and the
route program's compiled statistics (dense slots, interned port
groups, table footprint).  Useful for sizing a scale-campaign point
before committing to a run::

    mediaworm topo fat_tree3 --k 16
    mediaworm topo butterfly --arity 8 --levels 3
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError
from repro.network.topology import (
    Topology,
    butterfly,
    fat_mesh,
    fat_tree,
    fat_tree3,
    single_switch,
)

#: generator name -> (builder, accepted shape flags)
TOPOLOGY_KINDS: Dict[str, tuple] = {
    "single": (single_switch, ("num_ports",)),
    "mesh": (fat_mesh, ("rows", "cols", "hosts_per_router", "fat_width")),
    "fat_tree": (
        fat_tree,
        ("leaves", "spines", "hosts_per_leaf", "fat_width"),
    ),
    "fat_tree3": (fat_tree3, ("k", "hosts_per_leaf", "fat_width")),
    "butterfly": (
        butterfly,
        ("arity", "levels", "hosts_per_leaf", "fat_width"),
    ),
}


def build_topology(kind: str, **params) -> Topology:
    """Build one topology by generator name; unknown flags are errors."""
    try:
        builder, accepted = TOPOLOGY_KINDS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown topology kind {kind!r}; "
            f"choose from {', '.join(TOPOLOGY_KINDS)}"
        )
    extra = sorted(set(params) - set(accepted))
    if extra:
        raise ConfigurationError(
            f"{kind} does not take {', '.join('--' + e.replace('_', '-') for e in extra)} "
            f"(accepted: {', '.join('--' + a.replace('_', '-') for a in accepted)})"
        )
    return builder(**params)


def describe_topology(topology: Topology) -> str:
    """Human-readable structure + route-program report."""
    lines: List[str] = [
        f"topology          {topology.extras.get('generator', 'custom')}",
        f"switches          {topology.num_routers}",
        f"ports per switch  {topology.ports_per_router}",
        f"hosts             {topology.num_hosts}",
        f"channels          {len(topology.channels)}",
    ]
    levels = topology.extras.get("levels")
    if levels is not None:
        counts: Dict[int, int] = {}
        for level in levels:
            counts[level] = counts.get(level, 0) + 1
        lines.append(
            "levels            "
            + ", ".join(
                f"L{level}: {count}" for level, count in sorted(counts.items())
            )
        )
    for key in ("k", "arity", "tree_levels", "rows", "cols", "fat_width"):
        if key in topology.extras:
            lines.append(f"{key:<17s} {topology.extras[key]}")
    program = topology.route_program
    if program is None:
        lines.append("route program     none (stateless routing)")
        return "\n".join(lines)
    stats = program.stats()
    lines.append("route program")
    for key in (
        "destinations",
        "dense_nodes",
        "entries",
        "alt_entries",
        "detour_entries",
        "unique_groups",
        "max_group_size",
        "table_ints",
    ):
        lines.append(f"  {key:<15s} {stats[key]}")
    return "\n".join(lines)
