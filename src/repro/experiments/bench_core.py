"""Core-engine benchmark: active-set loop and parallel sweep scaling.

Measures the two performance claims this repo's simulation core makes,
and writes them to ``BENCH_core.json`` so CI can archive the numbers:

* **single point** — one fig3 operating point run twice in-process,
  once with the active-set run loop and once with the legacy
  full-scan loop (``REPRO_LEGACY_LOOP=1``).  The two runs must produce
  bit-identical metrics; the wall-clock ratio is recorded (the
  active-set loop wins on sparse/idle traffic and roughly ties on the
  small saturated topologies benchmarked here).
* **sweep scaling** — the fig3 load sweep executed serially and with a
  process pool (``--jobs N``).  Per-point metrics must again be
  bit-identical; the speedup is recorded and is the number the
  acceptance bar (>= 1.5x on 4 cores) reads.

Any metric mismatch exits non-zero — this doubles as a golden-run
check on real workloads.

Usage::

    python -m repro.experiments.bench_core --profile quick --jobs 4 \
        --out BENCH_core.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from typing import Dict, List, Optional

from repro.core.schedulers import SchedulingPolicy
from repro.experiments.config import SingleSwitchExperiment
from repro.experiments.figures import (
    DEFAULT_LOADS,
    _base_kwargs,
    get_profile,
)
from repro.experiments.parallel import ParallelSweepExecutor, SweepTask
from repro.experiments.runner import simulate_single_switch

FORMAT = "bench-core-v1"

#: the single-point experiment: fig3's Virtual Clock router at load 0.8
SINGLE_POINT_LOAD = 0.8


def _metrics_dict(result) -> Dict:
    return dataclasses.asdict(result.metrics)


def _single_point(profile) -> Dict:
    """Active-set vs legacy loop on one fig3 point, in-process.

    The loop choice is read from ``REPRO_LEGACY_LOOP`` when the Network
    is constructed, so toggling the variable between the two
    ``simulate_single_switch`` calls selects the loop per run.
    """
    experiment = SingleSwitchExperiment(
        load=SINGLE_POINT_LOAD,
        mix=(80, 20),
        scheduler=SchedulingPolicy.VIRTUAL_CLOCK,
        vcs_per_pc=16,
        **_base_kwargs(profile),
    )
    saved = os.environ.pop("REPRO_LEGACY_LOOP", None)
    try:
        started = time.perf_counter()
        active = simulate_single_switch(experiment)
        active_s = time.perf_counter() - started

        os.environ["REPRO_LEGACY_LOOP"] = "1"
        started = time.perf_counter()
        legacy = simulate_single_switch(experiment)
        legacy_s = time.perf_counter() - started
    finally:
        if saved is None:
            os.environ.pop("REPRO_LEGACY_LOOP", None)
        else:
            os.environ["REPRO_LEGACY_LOOP"] = saved
    return {
        "load": SINGLE_POINT_LOAD,
        "active_s": round(active_s, 3),
        "legacy_s": round(legacy_s, 3),
        "speedup": round(legacy_s / active_s, 3) if active_s else None,
        "identical": _metrics_dict(active) == _metrics_dict(legacy),
    }


def _sweep_tasks(profile) -> List[SweepTask]:
    return [
        SweepTask(
            key=f"{policy}@{load:g}",
            runner=simulate_single_switch,
            experiment=SingleSwitchExperiment(
                load=load,
                mix=(80, 20),
                scheduler=policy,
                vcs_per_pc=16,
                **_base_kwargs(profile),
            ),
        )
        for policy in (SchedulingPolicy.VIRTUAL_CLOCK, SchedulingPolicy.FIFO)
        for load in DEFAULT_LOADS
    ]


def _sweep_scaling(profile, jobs: int) -> Dict:
    """Fig3 sweep serially vs in a ``jobs``-worker pool."""
    started = time.perf_counter()
    serial = ParallelSweepExecutor(jobs=1).run(_sweep_tasks(profile))
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    pooled = ParallelSweepExecutor(jobs=jobs).run(_sweep_tasks(profile))
    parallel_s = time.perf_counter() - started

    identical = {key: _metrics_dict(result) for key, result in serial.items()} == {
        key: _metrics_dict(result) for key, result in pooled.items()
    }
    return {
        "points": len(serial),
        "jobs": jobs,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "identical": identical,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_core",
        description="Benchmark the active-set loop and parallel sweeps.",
    )
    parser.add_argument("--profile", default="quick")
    parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="pool size for the sweep-scaling measurement",
    )
    parser.add_argument("--out", default="BENCH_core.json")
    args = parser.parse_args(argv)
    if args.jobs < 2:
        parser.error("--jobs must be >= 2 (scaling needs a pool)")

    profile = get_profile(args.profile)
    print(f"[bench_core] single point (load {SINGLE_POINT_LOAD:g}) ...")
    single = _single_point(profile)
    print(
        f"[bench_core] active {single['active_s']}s, "
        f"legacy {single['legacy_s']}s "
        f"(x{single['speedup']}, identical={single['identical']})"
    )
    print(f"[bench_core] fig3 sweep, --jobs {args.jobs} ...")
    sweep = _sweep_scaling(profile, args.jobs)
    print(
        f"[bench_core] serial {sweep['serial_s']}s, "
        f"{args.jobs} jobs {sweep['parallel_s']}s "
        f"(x{sweep['speedup']}, identical={sweep['identical']})"
    )

    # The recorded speedup only means something relative to the cores
    # actually available: on a 1-core box a pool can't beat serial.
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    record = {
        "format": FORMAT,
        "profile": profile.name,
        "cpu_count": cpus,
        "single_point": single,
        "sweep": sweep,
    }
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"[bench_core] wrote {args.out}")

    if not single["identical"]:
        print(
            "[bench_core] FAIL: active-set metrics diverge from the "
            "legacy loop",
            file=sys.stderr,
        )
        return 1
    if not sweep["identical"]:
        print(
            "[bench_core] FAIL: pooled sweep metrics diverge from the "
            "serial sweep",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
