"""Core-engine benchmark: active-set loop and parallel sweep scaling.

Measures the two performance claims this repo's simulation core makes,
writes them to ``BENCH_core.json`` for CI to archive, and appends every
run (with provenance) to ``BENCH_history.jsonl`` so the perf trajectory
is tracked across commits:

* **loop comparison** — a three-point workload run three times
  in-process: with the active-set object loop, with the fused array
  engine (``engine="array"``), and with the legacy full-scan loop
  (``REPRO_LEGACY_LOOP=1``).  The points bracket the loops' operating
  envelope: a *dense* fig3 single-switch at load 0.8 (every component
  busy — the active set machinery must roughly tie, and the array
  engine's fused kernels must win outright), a *sparse* 16x16 fat mesh
  at one stream per host (hundreds of mostly idle components — where
  skipping the full scan is the whole point), and a *sparse* 128-host
  3-level fat tree (the compiled-route-program topology class the
  scale campaign runs at 1024 hosts).
  The combined speedups are ``sum(legacy_s) / sum(active_s)`` and
  ``sum(legacy_s) / sum(array_s)``.  The dense point is timed over
  ``DENSE_POINT_REPS`` interleaved repetitions and each engine scores
  its minimum — the standard noise-rejecting estimator — because the
  dense floor (``--min-speedup-dense``) gates on that single point.
  Metrics must be bit-identical per point and per engine; this doubles
  as a golden-run check on real workloads.
* **sweep scaling** — the fig3 load sweep executed serially and with a
  process pool (``--jobs N``).  Per-point metrics must again be
  bit-identical; the speedup is recorded and is the number the
  acceptance bar (>= 1.5x on 4 cores) reads.

Any metric mismatch exits non-zero, as does a combined loop speedup
below ``--min-speedup`` or a dense-point array speedup below
``--min-speedup-dense`` (the CI regression gates).  The combined floor
alone would let a dense regression hide behind the sparse points'
margin, which is exactly what the per-point floor exists to catch.

Usage::

    python -m repro.experiments.bench_core --profile quick --jobs 4 \
        --min-speedup 1.0 --out BENCH_core.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import os
import platform
import subprocess
import sys
import time
from datetime import datetime, timezone
from typing import Dict, List, Optional

from repro.core.schedulers import SchedulingPolicy
from repro.experiments.config import (
    FatMeshExperiment,
    FatTree3Experiment,
    SingleSwitchExperiment,
)
from repro.experiments.figures import (
    DEFAULT_LOADS,
    _base_kwargs,
    get_profile,
)
from repro.experiments.parallel import ParallelSweepExecutor, SweepTask
from repro.sim.engine import DEFAULT_ENGINE, ENGINE_ARRAY, ENGINE_OBJECT
from repro.experiments.runner import (
    simulate_fat_mesh,
    simulate_fat_tree3,
    simulate_single_switch,
)

FORMAT = "bench-core-v3"

#: the dense loop point: fig3's Virtual Clock router at load 0.8
DENSE_POINT_LOAD = 0.8
#: the dense point runs at the default benchmark scale regardless of
#: profile: the quick profile's scale-40 shrink halves the workload,
#: and fixed per-run costs (network setup, injection events) then mask
#: the dense-phase engine throughput the floor is meant to guard
DENSE_POINT_SCALE = 20.0
#: interleaved repetitions for the dense point; each engine scores its
#: minimum across reps (scheduler noise only ever adds time, so the
#: minimum is the least-perturbed observation — five reps keep the
#: dense floor from tripping on a transiently loaded runner)
DENSE_POINT_REPS = 5
#: the sparse loop point: one real-time stream per host on a 16x16 mesh
SPARSE_POINT_LOAD = 0.01


def _canon(value):
    """Make metrics comparable: NaN != NaN, so map it to a sentinel.

    Latency stats are NaN when a class saw no traffic (e.g. a 100/0 mix
    has no best-effort frames); both loops produce the same NaN and that
    must count as identical.
    """
    if isinstance(value, float) and math.isnan(value):
        return "nan"
    if isinstance(value, dict):
        return {key: _canon(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canon(item) for item in value]
    return value


def _metrics_dict(result) -> Dict:
    return _canon(dataclasses.asdict(result.metrics))


def _loop_points(profile):
    """Loop-comparison points: (name, runner, experiment, reps).

    Frame counts are fixed per point (not taken from the profile) so
    the dense and sparse contributions stay comparably weighted; the
    profile still supplies the sparse points' workload scale and the
    base seed.  The dense point pins its own scale and repetition
    count (see ``DENSE_POINT_SCALE`` / ``DENSE_POINT_REPS``) because
    the per-point floor gates on it.
    """
    return [
        (
            "fig3_dense",
            simulate_single_switch,
            SingleSwitchExperiment(
                load=DENSE_POINT_LOAD,
                mix=(80, 20),
                scheduler=SchedulingPolicy.VIRTUAL_CLOCK,
                vcs_per_pc=16,
                scale=DENSE_POINT_SCALE,
                warmup_frames=1,
                measure_frames=1,
                seed=profile.seed,
            ),
            DENSE_POINT_REPS,
        ),
        (
            "fatmesh_sparse",
            simulate_fat_mesh,
            FatMeshExperiment(
                rows=16,
                cols=16,
                hosts_per_router=1,
                fat_width=1,
                load=SPARSE_POINT_LOAD,
                mix=(100, 0),
                scheduler=SchedulingPolicy.VIRTUAL_CLOCK,
                vcs_per_pc=4,
                scale=profile.scale,
                warmup_frames=1,
                measure_frames=3,
                seed=11,
            ),
            1,
        ),
        (
            "fattree_sparse",
            simulate_fat_tree3,
            FatTree3Experiment(
                k=8,
                load=SPARSE_POINT_LOAD,
                mix=(100, 0),
                scheduler=SchedulingPolicy.VIRTUAL_CLOCK,
                vcs_per_pc=4,
                scale=profile.scale,
                warmup_frames=1,
                measure_frames=2,
                seed=13,
            ),
            1,
        ),
    ]


def _loop_compare(profile) -> Dict:
    """Object loop vs array engine vs legacy loop, per bracket point.

    The legacy choice is read from ``REPRO_LEGACY_LOOP`` when the
    Network is constructed, so toggling the variable between runner
    calls selects the loop per run; the array engine is selected per
    run through the experiment's ``engine`` field.  Each point runs
    ``reps`` interleaved repetitions and every engine scores its
    minimum, so the dense floor compares best-case against best-case
    rather than whichever run a scheduler hiccup happened to hit.
    """
    saved = os.environ.pop("REPRO_LEGACY_LOOP", None)
    points = []
    total_active = 0.0
    total_legacy = 0.0
    total_array = 0.0
    identical = True
    try:
        for name, runner, experiment, reps in _loop_points(profile):
            array_experiment = dataclasses.replace(
                experiment, engine=ENGINE_ARRAY
            )
            active_s = legacy_s = array_s = math.inf
            active_m = legacy_m = array_m = None
            for _ in range(reps):
                os.environ.pop("REPRO_LEGACY_LOOP", None)
                started = time.perf_counter()
                result = runner(experiment)
                active_s = min(active_s, time.perf_counter() - started)
                active_m = _metrics_dict(result)

                started = time.perf_counter()
                result = runner(array_experiment)
                array_s = min(array_s, time.perf_counter() - started)
                array_m = _metrics_dict(result)

                os.environ["REPRO_LEGACY_LOOP"] = "1"
                started = time.perf_counter()
                result = runner(experiment)
                legacy_s = min(legacy_s, time.perf_counter() - started)
                legacy_m = _metrics_dict(result)

            point_identical = active_m == legacy_m
            array_identical = array_m == legacy_m
            identical = identical and point_identical and array_identical
            total_active += active_s
            total_legacy += legacy_s
            total_array += array_s
            points.append(
                {
                    "name": name,
                    "reps": reps,
                    "active_s": round(active_s, 3),
                    "legacy_s": round(legacy_s, 3),
                    "array_s": round(array_s, 3),
                    "speedup": (
                        round(legacy_s / active_s, 3) if active_s else None
                    ),
                    "array_speedup": (
                        round(legacy_s / array_s, 3) if array_s else None
                    ),
                    "identical": point_identical,
                    "array_identical": array_identical,
                }
            )
    finally:
        if saved is None:
            os.environ.pop("REPRO_LEGACY_LOOP", None)
        else:
            os.environ["REPRO_LEGACY_LOOP"] = saved
    return {
        "points": points,
        "engines": [ENGINE_OBJECT, ENGINE_ARRAY, "legacy"],
        "active_s": round(total_active, 3),
        "legacy_s": round(total_legacy, 3),
        "array_s": round(total_array, 3),
        "speedup": (
            round(total_legacy / total_active, 3) if total_active else None
        ),
        "array_speedup": (
            round(total_legacy / total_array, 3) if total_array else None
        ),
        "identical": identical,
    }


def _sweep_tasks(profile) -> List[SweepTask]:
    return [
        SweepTask(
            key=f"{policy}@{load:g}",
            runner=simulate_single_switch,
            experiment=SingleSwitchExperiment(
                load=load,
                mix=(80, 20),
                scheduler=policy,
                vcs_per_pc=16,
                **_base_kwargs(profile),
            ),
        )
        for policy in (SchedulingPolicy.VIRTUAL_CLOCK, SchedulingPolicy.FIFO)
        for load in DEFAULT_LOADS
    ]


def _sweep_scaling(profile, jobs: int) -> Dict:
    """Fig3 sweep serially vs in a ``jobs``-worker pool."""
    started = time.perf_counter()
    serial = ParallelSweepExecutor(jobs=1).run(_sweep_tasks(profile))
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    pooled = ParallelSweepExecutor(jobs=jobs).run(_sweep_tasks(profile))
    parallel_s = time.perf_counter() - started

    identical = {key: _metrics_dict(result) for key, result in serial.items()} == {
        key: _metrics_dict(result) for key, result in pooled.items()
    }
    return {
        "points": len(serial),
        "jobs": jobs,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "identical": identical,
    }


def _provenance() -> Dict:
    """Git SHA, UTC timestamp, and interpreter version for the record."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        sha = ""
    return {
        "git_sha": sha or "unknown",
        "timestamp_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform.python_version(),
    }


def _append_history(path: str, record: Dict) -> None:
    """Append one JSON line per bench run (the perf trajectory log)."""
    with open(path, "a") as handle:
        json.dump(record, handle, separators=(",", ":"), sort_keys=True)
        handle.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_core",
        description="Benchmark the active-set loop and parallel sweeps.",
    )
    parser.add_argument("--profile", default="quick")
    parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="pool size for the sweep-scaling measurement",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        help="fail (exit non-zero) when the combined active/legacy loop "
        "speedup drops below this floor (0 disables the gate)",
    )
    parser.add_argument(
        "--min-speedup-dense",
        type=float,
        default=0.0,
        help="fail when the fig3_dense array-engine speedup over the "
        "legacy loop drops below this floor or its metrics diverge "
        "(0 disables the gate); catches dense regressions the combined "
        "floor would absorb in the sparse points' margin",
    )
    parser.add_argument("--out", default="BENCH_core.json")
    parser.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        help="JSONL file each run is appended to (empty string disables)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 2:
        parser.error("--jobs must be >= 2 (scaling needs a pool)")

    profile = get_profile(args.profile)
    print("[bench_core] loop comparison (dense + sparse points) ...")
    loop = _loop_compare(profile)
    for point in loop["points"]:
        print(
            f"[bench_core]   {point['name']}: active {point['active_s']}s "
            f"(x{point['speedup']}), array {point['array_s']}s "
            f"(x{point['array_speedup']}), legacy {point['legacy_s']}s "
            f"[reps={point['reps']}, identical={point['identical']}, "
            f"array_identical={point['array_identical']}]"
        )
    print(
        f"[bench_core] combined: active {loop['active_s']}s "
        f"(x{loop['speedup']}), array {loop['array_s']}s "
        f"(x{loop['array_speedup']}), legacy {loop['legacy_s']}s "
        f"(identical={loop['identical']})"
    )
    print(f"[bench_core] fig3 sweep, --jobs {args.jobs} ...")
    sweep = _sweep_scaling(profile, args.jobs)
    print(
        f"[bench_core] serial {sweep['serial_s']}s, "
        f"{args.jobs} jobs {sweep['parallel_s']}s "
        f"(x{sweep['speedup']}, identical={sweep['identical']})"
    )

    # The recorded speedup only means something relative to the cores
    # actually available: on a 1-core box a pool can't beat serial.
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    record = {
        "format": FORMAT,
        "profile": profile.name,
        "cpu_count": cpus,
        "engines": {
            "default": DEFAULT_ENGINE,
            "compared": loop["engines"],
        },
        "provenance": _provenance(),
        "loop": loop,
        "sweep": sweep,
    }
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"[bench_core] wrote {args.out}")
    if args.history:
        _append_history(args.history, record)
        print(f"[bench_core] appended to {args.history}")

    if not loop["identical"]:
        print(
            "[bench_core] FAIL: active-set metrics diverge from the "
            "legacy loop",
            file=sys.stderr,
        )
        return 1
    if not sweep["identical"]:
        print(
            "[bench_core] FAIL: pooled sweep metrics diverge from the "
            "serial sweep",
            file=sys.stderr,
        )
        return 1
    if args.min_speedup and (
        loop["speedup"] is None or loop["speedup"] < args.min_speedup
    ):
        print(
            f"[bench_core] FAIL: loop speedup {loop['speedup']} below the "
            f"--min-speedup floor {args.min_speedup}",
            file=sys.stderr,
        )
        return 1
    if args.min_speedup_dense:
        dense = next(
            (p for p in loop["points"] if p["name"] == "fig3_dense"), None
        )
        if dense is None or not dense["array_identical"]:
            print(
                "[bench_core] FAIL: fig3_dense array metrics unavailable "
                "or diverging; the dense floor requires identical metrics",
                file=sys.stderr,
            )
            return 1
        if (
            dense["array_speedup"] is None
            or dense["array_speedup"] < args.min_speedup_dense
        ):
            print(
                f"[bench_core] FAIL: fig3_dense array speedup "
                f"{dense['array_speedup']} below the --min-speedup-dense "
                f"floor {args.min_speedup_dense}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
