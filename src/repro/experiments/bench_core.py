"""Core-engine benchmark: active-set loop and parallel sweep scaling.

Measures the two performance claims this repo's simulation core makes,
writes them to ``BENCH_core.json`` for CI to archive, and appends every
run (with provenance) to ``BENCH_history.jsonl`` so the perf trajectory
is tracked across commits:

* **loop comparison** — a three-point workload run twice in-process,
  once with the active-set run loop and once with the legacy full-scan
  loop (``REPRO_LEGACY_LOOP=1``).  The points bracket the loop's
  operating envelope: a *dense* fig3 single-switch at load 0.8 (every
  component busy — the active set machinery must roughly tie), a
  *sparse* 16x16 fat mesh at one stream per host (hundreds of mostly
  idle components — where skipping the full scan is the whole point),
  and a *sparse* 128-host 3-level fat tree (the compiled-route-program
  topology class the scale campaign runs at 1024 hosts).
  The combined speedup is ``sum(legacy_s) / sum(active_s)``.  Metrics
  must be bit-identical per point; this doubles as a golden-run check
  on real workloads.
* **sweep scaling** — the fig3 load sweep executed serially and with a
  process pool (``--jobs N``).  Per-point metrics must again be
  bit-identical; the speedup is recorded and is the number the
  acceptance bar (>= 1.5x on 4 cores) reads.

Any metric mismatch exits non-zero, as does a combined loop speedup
below ``--min-speedup`` (the CI regression gate).

Usage::

    python -m repro.experiments.bench_core --profile quick --jobs 4 \
        --min-speedup 1.0 --out BENCH_core.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import os
import platform
import subprocess
import sys
import time
from datetime import datetime, timezone
from typing import Dict, List, Optional

from repro.core.schedulers import SchedulingPolicy
from repro.experiments.config import (
    FatMeshExperiment,
    FatTree3Experiment,
    SingleSwitchExperiment,
)
from repro.experiments.figures import (
    DEFAULT_LOADS,
    _base_kwargs,
    get_profile,
)
from repro.experiments.parallel import ParallelSweepExecutor, SweepTask
from repro.experiments.runner import (
    simulate_fat_mesh,
    simulate_fat_tree3,
    simulate_single_switch,
)

FORMAT = "bench-core-v2"

#: the dense loop point: fig3's Virtual Clock router at load 0.8
DENSE_POINT_LOAD = 0.8
#: the sparse loop point: one real-time stream per host on a 16x16 mesh
SPARSE_POINT_LOAD = 0.01


def _canon(value):
    """Make metrics comparable: NaN != NaN, so map it to a sentinel.

    Latency stats are NaN when a class saw no traffic (e.g. a 100/0 mix
    has no best-effort frames); both loops produce the same NaN and that
    must count as identical.
    """
    if isinstance(value, float) and math.isnan(value):
        return "nan"
    if isinstance(value, dict):
        return {key: _canon(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canon(item) for item in value]
    return value


def _metrics_dict(result) -> Dict:
    return _canon(dataclasses.asdict(result.metrics))


def _loop_points(profile):
    """The loop-comparison workload points (name, runner, experiment).

    Frame counts are fixed per point (not taken from the profile) so
    the dense and sparse contributions stay comparably weighted; the
    profile still supplies the workload scale and base seed.
    """
    return [
        (
            "fig3_dense",
            simulate_single_switch,
            SingleSwitchExperiment(
                load=DENSE_POINT_LOAD,
                mix=(80, 20),
                scheduler=SchedulingPolicy.VIRTUAL_CLOCK,
                vcs_per_pc=16,
                scale=profile.scale,
                warmup_frames=1,
                measure_frames=1,
                seed=profile.seed,
            ),
        ),
        (
            "fatmesh_sparse",
            simulate_fat_mesh,
            FatMeshExperiment(
                rows=16,
                cols=16,
                hosts_per_router=1,
                fat_width=1,
                load=SPARSE_POINT_LOAD,
                mix=(100, 0),
                scheduler=SchedulingPolicy.VIRTUAL_CLOCK,
                vcs_per_pc=4,
                scale=profile.scale,
                warmup_frames=1,
                measure_frames=3,
                seed=11,
            ),
        ),
        (
            "fattree_sparse",
            simulate_fat_tree3,
            FatTree3Experiment(
                k=8,
                load=SPARSE_POINT_LOAD,
                mix=(100, 0),
                scheduler=SchedulingPolicy.VIRTUAL_CLOCK,
                vcs_per_pc=4,
                scale=profile.scale,
                warmup_frames=1,
                measure_frames=2,
                seed=13,
            ),
        ),
    ]


def _loop_compare(profile) -> Dict:
    """Active-set vs legacy loop over the bracket points, in-process.

    The loop choice is read from ``REPRO_LEGACY_LOOP`` when the Network
    is constructed, so toggling the variable between the two runner
    calls selects the loop per run.
    """
    saved = os.environ.pop("REPRO_LEGACY_LOOP", None)
    points = []
    total_active = 0.0
    total_legacy = 0.0
    identical = True
    try:
        for name, runner, experiment in _loop_points(profile):
            os.environ.pop("REPRO_LEGACY_LOOP", None)
            started = time.perf_counter()
            active = runner(experiment)
            active_s = time.perf_counter() - started

            os.environ["REPRO_LEGACY_LOOP"] = "1"
            started = time.perf_counter()
            legacy = runner(experiment)
            legacy_s = time.perf_counter() - started

            point_identical = _metrics_dict(active) == _metrics_dict(legacy)
            identical = identical and point_identical
            total_active += active_s
            total_legacy += legacy_s
            points.append(
                {
                    "name": name,
                    "active_s": round(active_s, 3),
                    "legacy_s": round(legacy_s, 3),
                    "speedup": (
                        round(legacy_s / active_s, 3) if active_s else None
                    ),
                    "identical": point_identical,
                }
            )
    finally:
        if saved is None:
            os.environ.pop("REPRO_LEGACY_LOOP", None)
        else:
            os.environ["REPRO_LEGACY_LOOP"] = saved
    return {
        "points": points,
        "active_s": round(total_active, 3),
        "legacy_s": round(total_legacy, 3),
        "speedup": (
            round(total_legacy / total_active, 3) if total_active else None
        ),
        "identical": identical,
    }


def _sweep_tasks(profile) -> List[SweepTask]:
    return [
        SweepTask(
            key=f"{policy}@{load:g}",
            runner=simulate_single_switch,
            experiment=SingleSwitchExperiment(
                load=load,
                mix=(80, 20),
                scheduler=policy,
                vcs_per_pc=16,
                **_base_kwargs(profile),
            ),
        )
        for policy in (SchedulingPolicy.VIRTUAL_CLOCK, SchedulingPolicy.FIFO)
        for load in DEFAULT_LOADS
    ]


def _sweep_scaling(profile, jobs: int) -> Dict:
    """Fig3 sweep serially vs in a ``jobs``-worker pool."""
    started = time.perf_counter()
    serial = ParallelSweepExecutor(jobs=1).run(_sweep_tasks(profile))
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    pooled = ParallelSweepExecutor(jobs=jobs).run(_sweep_tasks(profile))
    parallel_s = time.perf_counter() - started

    identical = {key: _metrics_dict(result) for key, result in serial.items()} == {
        key: _metrics_dict(result) for key, result in pooled.items()
    }
    return {
        "points": len(serial),
        "jobs": jobs,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "identical": identical,
    }


def _provenance() -> Dict:
    """Git SHA, UTC timestamp, and interpreter version for the record."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        sha = ""
    return {
        "git_sha": sha or "unknown",
        "timestamp_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform.python_version(),
    }


def _append_history(path: str, record: Dict) -> None:
    """Append one JSON line per bench run (the perf trajectory log)."""
    with open(path, "a") as handle:
        json.dump(record, handle, separators=(",", ":"), sort_keys=True)
        handle.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_core",
        description="Benchmark the active-set loop and parallel sweeps.",
    )
    parser.add_argument("--profile", default="quick")
    parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="pool size for the sweep-scaling measurement",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        help="fail (exit non-zero) when the combined active/legacy loop "
        "speedup drops below this floor (0 disables the gate)",
    )
    parser.add_argument("--out", default="BENCH_core.json")
    parser.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        help="JSONL file each run is appended to (empty string disables)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 2:
        parser.error("--jobs must be >= 2 (scaling needs a pool)")

    profile = get_profile(args.profile)
    print("[bench_core] loop comparison (dense + sparse points) ...")
    loop = _loop_compare(profile)
    for point in loop["points"]:
        print(
            f"[bench_core]   {point['name']}: active {point['active_s']}s, "
            f"legacy {point['legacy_s']}s (x{point['speedup']}, "
            f"identical={point['identical']})"
        )
    print(
        f"[bench_core] combined: active {loop['active_s']}s, "
        f"legacy {loop['legacy_s']}s "
        f"(x{loop['speedup']}, identical={loop['identical']})"
    )
    print(f"[bench_core] fig3 sweep, --jobs {args.jobs} ...")
    sweep = _sweep_scaling(profile, args.jobs)
    print(
        f"[bench_core] serial {sweep['serial_s']}s, "
        f"{args.jobs} jobs {sweep['parallel_s']}s "
        f"(x{sweep['speedup']}, identical={sweep['identical']})"
    )

    # The recorded speedup only means something relative to the cores
    # actually available: on a 1-core box a pool can't beat serial.
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    record = {
        "format": FORMAT,
        "profile": profile.name,
        "cpu_count": cpus,
        "provenance": _provenance(),
        "loop": loop,
        "sweep": sweep,
    }
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"[bench_core] wrote {args.out}")
    if args.history:
        _append_history(args.history, record)
        print(f"[bench_core] appended to {args.history}")

    if not loop["identical"]:
        print(
            "[bench_core] FAIL: active-set metrics diverge from the "
            "legacy loop",
            file=sys.stderr,
        )
        return 1
    if not sweep["identical"]:
        print(
            "[bench_core] FAIL: pooled sweep metrics diverge from the "
            "serial sweep",
            file=sys.stderr,
        )
        return 1
    if args.min_speedup and (
        loop["speedup"] is None or loop["speedup"] < args.min_speedup
    ):
        print(
            f"[bench_core] FAIL: loop speedup {loop['speedup']} below the "
            f"--min-speedup floor {args.min_speedup}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
