"""JSON export of reproduced figures and tables.

Downstream tooling (plotting notebooks, regression dashboards) consumes
the harness output as JSON; these converters flatten the result objects
into plain dictionaries and back.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Union

from repro.errors import ConfigurationError
from repro.experiments.figures import FigureData, Point
from repro.experiments.tables import Table2Data, Table3Data, Table3Row
from repro.metrics.collector import RunMetrics


def figure_to_dict(fig: FigureData) -> Dict:
    """Flatten a FigureData into JSON-serialisable primitives."""
    return {
        "kind": "figure",
        "figure_id": fig.figure_id,
        "title": fig.title,
        "xlabel": fig.xlabel,
        "notes": fig.notes,
        "series": {
            name: [
                {
                    "x": point.x,
                    "metrics": dataclasses.asdict(point.metrics),
                    "extra": point.extra,
                }
                for point in points
            ]
            for name, points in fig.series.items()
        },
    }


def figure_from_dict(data: Dict) -> FigureData:
    """Rebuild a FigureData exported by :func:`figure_to_dict`."""
    if data.get("kind") != "figure":
        raise ConfigurationError(
            f"expected kind='figure', got {data.get('kind')!r}"
        )
    series = {
        name: [
            Point(
                x=entry["x"],
                metrics=RunMetrics(**entry["metrics"]),
                extra=dict(entry.get("extra") or {}),
            )
            for entry in points
        ]
        for name, points in data["series"].items()
    }
    return FigureData(
        figure_id=data["figure_id"],
        title=data["title"],
        xlabel=data["xlabel"],
        series=series,
        notes=data.get("notes", ""),
    )


def table2_to_dict(table: Table2Data) -> Dict:
    """Flatten Table 2 (tuple keys become "x:y@load" strings)."""
    return {
        "kind": "table2",
        "loads": table.loads,
        "mixes": [list(mix) for mix in table.mixes],
        "latency_us": {
            f"{mix[0]:g}:{mix[1]:g}@{load:g}": value
            for (mix, load), value in table.latency_us.items()
        },
    }


def table2_from_dict(data: Dict) -> Table2Data:
    """Rebuild Table 2 from its exported form."""
    if data.get("kind") != "table2":
        raise ConfigurationError(
            f"expected kind='table2', got {data.get('kind')!r}"
        )
    latency = {}
    for key, value in data["latency_us"].items():
        mix_text, load_text = key.split("@")
        x, y = mix_text.split(":")
        latency[((float(x), float(y)), float(load_text))] = value
    return Table2Data(
        loads=[float(load) for load in data["loads"]],
        mixes=[tuple(float(v) for v in mix) for mix in data["mixes"]],
        latency_us=latency,
    )


def table3_to_dict(table: Table3Data) -> Dict:
    """Flatten Table 3."""
    return {
        "kind": "table3",
        "rows": [dataclasses.asdict(row) for row in table.rows],
    }


def table3_from_dict(data: Dict) -> Table3Data:
    """Rebuild Table 3 from its exported form."""
    if data.get("kind") != "table3":
        raise ConfigurationError(
            f"expected kind='table3', got {data.get('kind')!r}"
        )
    return Table3Data(rows=[Table3Row(**row) for row in data["rows"]])


def save_result(path: Union[str, Path], result) -> None:
    """Write a figure or table result to ``path`` as JSON."""
    if isinstance(result, FigureData):
        payload = figure_to_dict(result)
    elif isinstance(result, Table2Data):
        payload = table2_to_dict(result)
    elif isinstance(result, Table3Data):
        payload = table3_to_dict(result)
    else:
        raise ConfigurationError(
            f"cannot export object of type {type(result).__name__}"
        )
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_result(path: Union[str, Path]):
    """Load a result written by :func:`save_result`."""
    data = json.loads(Path(path).read_text())
    kind = data.get("kind")
    if kind == "figure":
        return figure_from_dict(data)
    if kind == "table2":
        return table2_from_dict(data)
    if kind == "table3":
        return table3_from_dict(data)
    raise ConfigurationError(f"unknown result kind {kind!r} in {path}")
