"""Wormhole router substrate: flits, buffers, crossbar, pipeline.

Implements the 5-stage PROUD pipelined router of the paper's Fig. 1
with credit-based virtual-channel flow control, a multiplexed or full
crossbar, and pluggable multiplexer scheduling (see
:mod:`repro.core.schedulers`).
"""

from repro.router.flit import Message, TrafficClass, messages_for_frame
from repro.router.buffers import InputVC, OutputVC
from repro.router.config import (
    CrossbarKind,
    QosPlacement,
    RouterConfig,
    RoutingMode,
)
from repro.router.router import WormholeRouter
from repro.router.routeprog import RouteProgram, compile_routes
from repro.router.routing import (
    CompiledRouting,
    FatMeshRouting,
    RoutingFunction,
    SingleSwitchRouting,
    TableRouting,
)

__all__ = [
    "CompiledRouting",
    "CrossbarKind",
    "FatMeshRouting",
    "InputVC",
    "Message",
    "OutputVC",
    "QosPlacement",
    "RouteProgram",
    "RouterConfig",
    "RoutingFunction",
    "RoutingMode",
    "SingleSwitchRouting",
    "TableRouting",
    "TrafficClass",
    "WormholeRouter",
    "compile_routes",
    "messages_for_frame",
]
