"""Wormhole router substrate: flits, buffers, crossbar, pipeline.

Implements the 5-stage PROUD pipelined router of the paper's Fig. 1
with credit-based virtual-channel flow control, a multiplexed or full
crossbar, and pluggable multiplexer scheduling (see
:mod:`repro.core.schedulers`).
"""

from repro.router.flit import Message, TrafficClass, messages_for_frame
from repro.router.buffers import InputVC, OutputVC
from repro.router.config import (
    CrossbarKind,
    QosPlacement,
    RouterConfig,
    RoutingMode,
)
from repro.router.router import WormholeRouter
from repro.router.routing import (
    FatMeshRouting,
    RoutingFunction,
    SingleSwitchRouting,
)

__all__ = [
    "CrossbarKind",
    "FatMeshRouting",
    "InputVC",
    "Message",
    "OutputVC",
    "QosPlacement",
    "RouterConfig",
    "RoutingFunction",
    "RoutingMode",
    "SingleSwitchRouting",
    "TrafficClass",
    "WormholeRouter",
    "messages_for_frame",
]
