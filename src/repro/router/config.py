"""Router configuration (the knobs of Table 1 plus design options)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.schedulers import SchedulingPolicy
from repro.errors import ConfigurationError


class QosPlacement:
    """Where the QoS scheduler runs (the paper's section 3.3 analysis).

    * ``AUTO`` — the paper's choice: contention point A (crossbar input
      multiplexer) for a multiplexed crossbar, point C (the output VC
      multiplexer) for a full crossbar.
    * ``INPUT_MUX`` — force point A only.
    * ``VC_MUX`` — force point C only (the placement the paper argues
      is weak for a multiplexed crossbar, since at most one VC of an
      output PC receives a flit per cycle there).
    * ``BOTH`` — points A and C simultaneously.
    * ``NONE`` — FIFO everywhere regardless of ``qos_policy`` (a
      placement-level ablation control).
    """

    AUTO = "auto"
    INPUT_MUX = "input_mux"
    VC_MUX = "vc_mux"
    BOTH = "both"
    NONE = "none"

    ALL = (AUTO, INPUT_MUX, VC_MUX, BOTH, NONE)


class CrossbarKind:
    """Crossbar design options from section 3.2 of the paper.

    * ``MULTIPLEXED`` — ``n x n`` crossbar; the VCs of each input PC
      share one crossbar input port through a multiplexer (contention
      point A), and the QoS scheduler runs there.
    * ``FULL`` — ``(n*m) x (n*m)`` crossbar; every VC has a dedicated
      crossbar port, so the only shared resource is the output physical
      channel and the QoS scheduler runs at the VC multiplexer
      (contention point C).
    """

    MULTIPLEXED = "multiplexed"
    FULL = "full"

    ALL = (MULTIPLEXED, FULL)


class RoutingMode:
    """How routing reacts to link failures.

    * ``ORACLE`` — the PR-1 behaviour (and the default, so existing
      runs stay bit-identical): port selection consults
      ``Link.is_available``, i.e. the ground-truth fault windows.  Fat
      groups dodge a down sibling instantly, but with perfect
      knowledge no real router has.
    * ``STATIC`` — no fault awareness at all.  Routing ignores link
      state; a failed link is a black hole until end-to-end recovery
      retries (and retries re-roll the same route).  The honest
      baseline for the failover campaign.
    * ``ADAPTIVE`` — symptom-based: the link-health monitor
      (:mod:`repro.network.health`) masks ports it infers down from
      observable evidence, routing falls back to detour tables on the
      escape VC when a fat group empties, and worms stuck on a newly
      masked port are killed and requeued.
    """

    ORACLE = "oracle"
    STATIC = "static"
    ADAPTIVE = "adaptive"

    ALL = (ORACLE, STATIC, ADAPTIVE)


@dataclass
class RouterConfig:
    """Static configuration of one wormhole router.

    Defaults follow Table 1: an 8-port switch with 32-bit flits, 20-flit
    messages, and a variable number of VCs per PC (16 in most studies).

    ``rt_vc_count`` implements the paper's static VC partitioning: VCs
    ``0 .. rt_vc_count-1`` of every PC are reserved for real-time (VBR /
    CBR) messages and the rest serve best-effort.  ``None`` means all
    VCs are available to every class (used by single-class studies).
    """

    num_ports: int = 8
    vcs_per_pc: int = 16
    flit_buffer_depth: int = 8
    output_buffer_depth: int = 2
    crossbar: str = CrossbarKind.MULTIPLEXED
    qos_policy: str = SchedulingPolicy.VIRTUAL_CLOCK
    qos_placement: str = QosPlacement.AUTO
    rt_vc_count: Optional[int] = None
    #: cycles spent in the routing-decision stage (stage 2)
    routing_delay: int = 1
    #: additional cycles for a successful arbitration (stage 3)
    arbitration_delay: int = 1
    #: when True, best-effort messages may claim an idle real-time VC
    #: (dynamic partitioning — a future-work extension, off by default)
    dynamic_partitioning: bool = False
    #: when True, a best-effort message waits for exactly the output VC
    #: it drew at the destination port instead of falling back to any
    #: free best-effort VC; real-time streams always bind (connection
    #: semantics)
    be_dst_vc_binding: bool = False
    #: when True, a real-time header that finds every real-time VC busy
    #: may preempt a best-effort message that borrowed one (kill and
    #: retransmit) — the paper's future-work item for dynamic mixes;
    #: meaningful together with ``dynamic_partitioning``
    preemption: bool = False
    #: cycles a preempted message waits before its retransmission is
    #: injected again (kill-and-retransmit backoff)
    preemption_backoff: int = 64
    #: how port selection reacts to link failures (see RoutingMode)
    routing_mode: str = RoutingMode.ORACLE

    def __post_init__(self) -> None:
        if self.num_ports < 1:
            raise ConfigurationError(f"num_ports must be >= 1, got {self.num_ports}")
        if self.vcs_per_pc < 1:
            raise ConfigurationError(
                f"vcs_per_pc must be >= 1, got {self.vcs_per_pc}"
            )
        if self.flit_buffer_depth < 1:
            raise ConfigurationError(
                f"flit_buffer_depth must be >= 1, got {self.flit_buffer_depth}"
            )
        if self.output_buffer_depth < 1:
            raise ConfigurationError(
                f"output_buffer_depth must be >= 1, got {self.output_buffer_depth}"
            )
        if self.crossbar not in CrossbarKind.ALL:
            raise ConfigurationError(
                f"crossbar must be one of {CrossbarKind.ALL}, got {self.crossbar!r}"
            )
        if self.qos_policy not in SchedulingPolicy.ALL:
            raise ConfigurationError(
                f"qos_policy must be one of {SchedulingPolicy.ALL}, "
                f"got {self.qos_policy!r}"
            )
        if self.qos_placement not in QosPlacement.ALL:
            raise ConfigurationError(
                f"qos_placement must be one of {QosPlacement.ALL}, "
                f"got {self.qos_placement!r}"
            )
        if self.rt_vc_count is not None and not (
            0 <= self.rt_vc_count <= self.vcs_per_pc
        ):
            raise ConfigurationError(
                f"rt_vc_count must be in [0, {self.vcs_per_pc}], "
                f"got {self.rt_vc_count}"
            )
        if self.routing_delay < 0 or self.arbitration_delay < 0:
            raise ConfigurationError("pipeline delays must be non-negative")
        if not 1 <= self.preemption_backoff <= 1_000_000:
            raise ConfigurationError(
                f"preemption_backoff must be in [1, 1_000_000] cycles, "
                f"got {self.preemption_backoff}"
            )
        if self.routing_mode not in RoutingMode.ALL:
            raise ConfigurationError(
                f"routing_mode must be one of {RoutingMode.ALL}, "
                f"got {self.routing_mode!r}"
            )

    def vc_range_for_class(self, is_real_time: bool) -> range:
        """VC indices a message of the given class may be assigned to."""
        if self.rt_vc_count is None:
            return range(self.vcs_per_pc)
        if is_real_time:
            return range(self.rt_vc_count)
        return range(self.rt_vc_count, self.vcs_per_pc)

    @property
    def header_pipeline_delay(self) -> int:
        """Cycles a header spends in stages 2-3 before the crossbar."""
        return self.routing_delay + self.arbitration_delay

    def resolve_mux_policies(self) -> "tuple[str, str]":
        """Effective ``(input_mux, vc_mux)`` scheduling policies.

        Applies the ``qos_placement`` rule to ``qos_policy``; the
        non-QoS point always falls back to FIFO, the conventional
        wormhole multiplexer.
        """
        fifo = SchedulingPolicy.FIFO
        placement = self.qos_placement
        if placement == QosPlacement.AUTO:
            if self.crossbar == CrossbarKind.MULTIPLEXED:
                return self.qos_policy, fifo
            return fifo, self.qos_policy
        if placement == QosPlacement.INPUT_MUX:
            return self.qos_policy, fifo
        if placement == QosPlacement.VC_MUX:
            return fifo, self.qos_policy
        if placement == QosPlacement.BOTH:
            return self.qos_policy, self.qos_policy
        return fifo, fifo

    @property
    def ni_policy(self) -> str:
        """Scheduler for the host interface's injection multiplexer.

        The NI link mux is the upstream counterpart of a router's VC
        multiplexer; it follows the QoS policy unless placement is
        ``NONE`` (the all-FIFO ablation).
        """
        if self.qos_placement == QosPlacement.NONE:
            return SchedulingPolicy.FIFO
        return self.qos_policy
