"""Virtual-channel buffers and credit-based flow control.

Two buffering points exist along a router pipe (Fig. 2 of the paper):

* :class:`InputVC` — the per-VC flit buffer at the input port (stage 1
  writes into it, the crossbar drains it).  The buffer is a FIFO of
  flits that may span *several* messages: the upstream multiplexer
  serialises messages on a VC, so a new header can sit behind the
  previous message's tail.  Routing/arbitration state always refers to
  the message at the front; it is released when that tail traverses the
  crossbar.
* :class:`OutputVC` — the small per-VC staging buffer between the
  crossbar and the output physical-channel multiplexer (stage 5).  It
  tracks *credits*: the number of free slots in the downstream router's
  matching :class:`InputVC`.

Flits are never materialised as objects; buffers store per-message
arrival/served counters plus a deque of scheduler stamps (one per
buffered flit).  The head of a buffer is the front message's
``served``-th flit — flit indices are implicit because wormhole flow
control delivers them in order.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.core.virtual_clock import VirtualClockState
from repro.errors import FlowControlError
from repro.router.flit import Message


class _MessageRecord:
    """Per-message bookkeeping inside an input VC buffer."""

    __slots__ = ("msg", "arrived", "served", "header_time")

    def __init__(self, msg: Message, header_time: int) -> None:
        self.msg = msg
        self.arrived = 0
        self.served = 0
        self.header_time = header_time


#: freelist of retired _MessageRecord instances.  One record is created
#: per message per hop (header arrival) and retired when the tail
#: crosses the crossbar (or the message is purged) — recycling them
#: keeps the steady-state flit path allocation-free.  The pool's size is
#: naturally bounded by the high-water mark of concurrently buffered
#: messages, so it never needs trimming.
_record_pool: list = []


def acquire_record(msg: Message, header_time: int) -> _MessageRecord:
    """A fresh or recycled record, fully reinitialised.

    Public because both engines share the pool: the object path calls
    it from :meth:`InputVC.accept_new_message`, the array engine from
    its inlined header-arrival kernel — one freelist either way.
    """
    if _record_pool:
        record = _record_pool.pop()
        record.msg = msg
        record.arrived = 0
        record.served = 0
        record.header_time = header_time
        return record
    return _MessageRecord(msg, header_time)


def release_record(record: _MessageRecord) -> None:
    """Retire a record to the pool, dropping its Message reference."""
    record.msg = None
    _record_pool.append(record)


class InputVC:
    """One virtual-channel flit buffer at a router input port."""

    __slots__ = (
        "port",
        "index",
        "capacity",
        "messages",
        "stamps",
        "buffered",
        "head_arrival",
        "route_port",
        "route_vc",
        "ready_at",
        "credit_sink",
        "vstate",
    )

    def __init__(self, port: int, index: int, capacity: int) -> None:
        self.port = port
        self.index = index
        self.capacity = capacity
        #: messages with flits in (or expected into) this buffer, front first
        self.messages: Deque[_MessageRecord] = deque()
        #: scheduler stamps of buffered flits, head first (arrival order)
        self.stamps: Deque[float] = deque()
        #: total flits currently buffered, across messages
        self.buffered = 0
        #: cycle the *front* message's header arrived (stage-2/3 timing)
        self.head_arrival = 0
        #: routed output port of the front message (-1 while unrouted)
        self.route_port = -1
        #: granted output VC of the front message (None until arbitration)
        self.route_vc: Optional["OutputVC"] = None
        #: earliest cycle the front message may use the crossbar
        self.ready_at = 0
        #: upstream object whose ``credits`` we replenish when draining
        self.credit_sink = None
        #: Virtual Clock registers for the arriving message's stamps
        self.vstate = VirtualClockState()

    # -- state queries --------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Number of flits currently buffered."""
        return self.buffered

    @property
    def is_free(self) -> bool:
        """True when no message occupies this VC."""
        return not self.messages

    @property
    def msg(self) -> Optional[Message]:
        """The front (in-service) message, or ``None``."""
        return self.messages[0].msg if self.messages else None

    @property
    def front_has_flit(self) -> bool:
        """True when the front message has a buffered, unserved flit."""
        if not self.messages:
            return False
        front = self.messages[0]
        return front.arrived > front.served

    # -- arrivals -------------------------------------------------------

    def accept_new_message(self, clock: int, msg: Message) -> None:
        """A header flit arrived: start a new message record."""
        self.messages.append(acquire_record(msg, clock))
        if len(self.messages) == 1:
            self.head_arrival = clock
            self.route_port = -1
            self.route_vc = None
        # Arrivals are serialised per message by the upstream mux, so a
        # single arrival-side Virtual Clock register pair suffices.
        self.vstate.open(clock, msg.vtick)

    def accept_flit(self, stamp: float) -> None:
        """Buffer one flit (header included) carrying a scheduler stamp."""
        if self.buffered >= self.capacity:
            raise FlowControlError(
                f"input VC ({self.port},{self.index}) overflow: upstream sent "
                f"a flit without credit"
            )
        if not self.messages:
            raise FlowControlError(
                f"input VC ({self.port},{self.index}) got a flit without a "
                f"header"
            )
        self.messages[-1].arrived += 1
        self.buffered += 1
        self.stamps.append(stamp)

    # -- service --------------------------------------------------------

    def head_stamp(self) -> float:
        """Stamp of the head-of-line flit (caller ensures occupancy > 0)."""
        return self.stamps[0]

    def pop_head(self) -> Tuple[Message, int]:
        """Drain the front message's next flit toward the crossbar."""
        if not self.front_has_flit:
            raise FlowControlError(
                f"input VC ({self.port},{self.index}) drained with no "
                f"serviceable flit"
            )
        front = self.messages[0]
        self.stamps.popleft()
        self.buffered -= 1
        flit_index = front.served
        front.served += 1
        return front.msg, flit_index

    def release_front(self) -> bool:
        """Retire the front message after its tail crossed the crossbar.

        Returns True when another message is waiting behind it (its
        header must then go through routing/arbitration again).
        """
        if not self.messages:
            raise FlowControlError(
                f"input VC ({self.port},{self.index}) released while free"
            )
        front = self.messages.popleft()
        if front.served != front.msg.size:
            raise FlowControlError(
                f"input VC ({self.port},{self.index}) released message "
                f"{front.msg.msg_id} before its tail was served"
            )
        release_record(front)
        self.route_port = -1
        self.route_vc = None
        if self.messages:
            self.head_arrival = self.messages[0].header_time
            return True
        return False

    def purge_message(self, msg: Message) -> int:
        """Remove a killed message's unserved flits (preemption support).

        Returns the number of flits removed.  Works for the front
        message (its routing/grant state is cleared by the router) and
        for queued messages alike; the caller owns credit accounting
        and scheduler-set maintenance.
        """
        offset = 0
        position = None
        for index, record in enumerate(self.messages):
            pending = record.arrived - record.served
            if record.msg is msg:
                position = index
                removed = pending
                break
            offset += pending
        else:
            return 0
        stamps = list(self.stamps)
        del stamps[offset : offset + removed]
        self.stamps = deque(stamps)
        self.buffered -= removed
        release_record(self.messages[position])
        del self.messages[position]
        if position == 0:
            self.route_port = -1
            self.route_vc = None
            if self.messages:
                self.head_arrival = self.messages[0].header_time
        return removed

    def check_invariants(self) -> None:
        """Raise if the buffer's bookkeeping is inconsistent (test hook)."""
        if self.buffered != len(self.stamps):
            raise FlowControlError(
                f"input VC ({self.port},{self.index}): buffered "
                f"{self.buffered} != stamps {len(self.stamps)}"
            )
        if self.buffered > self.capacity:
            raise FlowControlError(
                f"input VC ({self.port},{self.index}): over capacity"
            )
        per_message = sum(rec.arrived - rec.served for rec in self.messages)
        if per_message != self.buffered:
            raise FlowControlError(
                f"input VC ({self.port},{self.index}): per-message counters "
                f"disagree with total"
            )
        for rec in list(self.messages)[1:]:
            if rec.served:
                raise FlowControlError(
                    f"input VC ({self.port},{self.index}): non-front message "
                    f"was served"
                )


class OutputVC:
    """One virtual channel on an output physical channel."""

    __slots__ = (
        "port",
        "index",
        "capacity",
        "owner",
        "queue",
        "stamps",
        "credits",
        "downstream",
        "vstate",
    )

    def __init__(self, port: int, index: int, capacity: int) -> None:
        self.port = port
        self.index = index
        self.capacity = capacity
        #: message holding this output VC (arbitration grant), or None
        self.owner: Optional[Message] = None
        #: staged flits awaiting the stage-5 multiplexer: (msg, flit_index)
        self.queue: Deque = deque()
        #: scheduler stamps parallel to ``queue``
        self.stamps: Deque[float] = deque()
        #: free slots in the downstream input VC (set when wired to a link)
        self.credits = 0
        #: downstream InputVC, or None when the port ejects to a host
        self.downstream: Optional[InputVC] = None
        #: Virtual Clock registers for the VC multiplexer (point C)
        self.vstate = VirtualClockState()

    @property
    def is_free(self) -> bool:
        """True when no message holds the VC."""
        return self.owner is None

    @property
    def has_space(self) -> bool:
        """True when the staging buffer can accept another flit."""
        return len(self.queue) < self.capacity

    def grant(self, clock: int, msg: Message) -> None:
        """Arbitration grant: ``msg`` now owns this output VC."""
        if self.owner is not None:
            raise FlowControlError(
                f"output VC ({self.port},{self.index}) granted while owned"
            )
        self.owner = msg
        self.vstate.open(clock, msg.vtick)

    def push(self, msg: Message, flit_index: int, stamp: float) -> None:
        """Stage one flit from the crossbar."""
        if not self.has_space:
            raise FlowControlError(
                f"output VC ({self.port},{self.index}) staging overflow"
            )
        self.queue.append((msg, flit_index))
        self.stamps.append(stamp)

    def head_stamp(self) -> float:
        """Stamp of the head-of-line staged flit."""
        return self.stamps[0]

    def pop_head(self):
        """Remove and return the head staged flit as ``(msg, flit_index)``."""
        if not self.queue:
            raise FlowControlError(
                f"output VC ({self.port},{self.index}) drained while empty"
            )
        self.stamps.popleft()
        return self.queue.popleft()

    def release(self) -> None:
        """Free the VC after its tail flit left on the link."""
        self.owner = None
        self.vstate.close()

    def purge_owner(self, msg: Message) -> int:
        """Drop a killed owner's staged flits and free the VC.

        Returns the number of staged flits removed (the grant's
        exclusivity guarantees every staged flit belongs to the owner).
        """
        if self.owner is not msg:
            return 0
        removed = len(self.queue)
        self.queue.clear()
        self.stamps.clear()
        self.release()
        return removed

    def check_invariants(self) -> None:
        """Raise if the buffer's bookkeeping is inconsistent (test hook)."""
        if len(self.queue) != len(self.stamps):
            raise FlowControlError(
                f"output VC ({self.port},{self.index}): queue/stamp mismatch"
            )
        if len(self.queue) > self.capacity:
            raise FlowControlError(
                f"output VC ({self.port},{self.index}): over capacity"
            )
        if self.credits < 0:
            raise FlowControlError(
                f"output VC ({self.port},{self.index}): negative credits"
            )
