"""Routing functions: deterministic, with fat-link candidate sets.

A routing function maps ``(router_id, destination node)`` to the tuple
of output ports a header may use.  Deterministic routing returns a
single port except on *fat* topologies, where the two physical links
toward the same neighbour are interchangeable and the router picks the
less-loaded one (section 3.4: "a message can use any one of the two
links to traverse to the next node based on the current load").
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.errors import RoutingError


class RoutingFunction:
    """Interface: candidate output ports for a destination."""

    def candidates(self, router_id: int, dst_node: int) -> Tuple[int, ...]:
        """Output ports (non-empty tuple) a header may request."""
        raise NotImplementedError


class SingleSwitchRouting(RoutingFunction):
    """Routing inside one switch: each host hangs off one port."""

    def __init__(self, host_ports: Mapping[int, int]) -> None:
        self._host_ports: Dict[int, int] = dict(host_ports)

    def candidates(self, router_id: int, dst_node: int) -> Tuple[int, ...]:
        try:
            return (self._host_ports[dst_node],)
        except KeyError:
            raise RoutingError(
                f"router {router_id}: unknown destination node {dst_node}"
            ) from None


class TableRouting(RoutingFunction):
    """Precomputed routing table for multi-router topologies.

    The table is built once by the topology constructor (dimension-order
    for meshes), so the per-header cost is a dictionary lookup.  Entries
    with several ports are fat-link groups.
    """

    def __init__(self, table: Mapping[Tuple[int, int], Tuple[int, ...]]) -> None:
        self._table: Dict[Tuple[int, int], Tuple[int, ...]] = dict(table)
        for key, ports in self._table.items():
            if not ports:
                raise RoutingError(f"empty routing entry for {key}")

    def candidates(self, router_id: int, dst_node: int) -> Tuple[int, ...]:
        try:
            return self._table[(router_id, dst_node)]
        except KeyError:
            raise RoutingError(
                f"router {router_id}: no route to node {dst_node}"
            ) from None


class FatMeshRouting(TableRouting):
    """Dimension-order routing on a fat mesh (built by the topology)."""
