"""Routing functions: deterministic, with fat-link candidate sets.

A routing function maps ``(router_id, destination node)`` to the tuple
of output ports a header may use.  Deterministic routing returns a
single port except on *fat* topologies, where the two physical links
toward the same neighbour are interchangeable and the router picks the
less-loaded one (section 3.4: "a message can use any one of the two
links to traverse to the next node based on the current load").

Since the route-program refactor the tables themselves live in an
immutable, compiled :class:`~repro.router.routeprog.RouteProgram`
(built exactly once per topology); the :class:`CompiledRouting` facade
layers per-router *mask overlays* on top for fault-aware (adaptive)
routing: the link-health monitor marks a ``(router, port)`` down and
:meth:`route_adaptive` shrinks the candidate group to its healthy
members.  When a fat group empties entirely the message falls back to a
precomputed *detour*: a perpendicular first hop plus a switch of
dimension order (X-then-Y traffic detouring around a dead X group
continues Y-then-X, and vice versa), riding the escape VC to stay
deadlock-free.  See ``docs/simulator-internals.md``.

A facade is ``fork()``-able: the fork shares the compiled program but
starts with clean overlays and counters, which is what lets one cached
topology serve many networks (sweep workers, repeat runs) without mask
state or statistics ever leaking between runs.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.errors import RoutingError
from repro.router.routeprog import (
    FLAVOR_XY,
    FLAVOR_YX,
    RouteProgram,
    RouterRouteView,
    UpDownFailover,
    compile_routes,
)

__all__ = [
    "FLAVOR_XY",
    "FLAVOR_YX",
    "CompiledRouting",
    "FatMeshRouting",
    "RoutingFunction",
    "SingleSwitchRouting",
    "TableRouting",
    "UpDownFailover",
]


class RoutingFunction:
    """Interface: candidate output ports for a destination."""

    def candidates(self, router_id: int, dst_node: int) -> Tuple[int, ...]:
        """Output ports (non-empty tuple) a header may request."""
        raise NotImplementedError

    def fork(self) -> "RoutingFunction":
        """A facade for one network's private mutable routing state.

        Stateless routing functions may return ``self``; anything
        carrying a health mask or counters must return a fresh facade
        over the same (shared, immutable) route tables.
        """
        return self

    def router_view(self, router_id: int):
        """Per-router accessor bound to ``router_id`` (hot-path handle).

        Routers call ``view.candidates(dst)`` /
        ``view.route_adaptive(dst, flavor)`` without re-passing their
        id every header.  The default adapter just forwards to the
        two-argument interface methods.
        """
        return _BoundView(self, router_id)

    # -- fault awareness (no-ops for topologies without redundancy) ----

    def mask_port(self, router_id: int, port: int) -> None:
        """Exclude ``port`` from ``route_adaptive`` results."""

    def unmask_port(self, router_id: int, port: int) -> None:
        """Re-admit a previously masked port."""

    def masked(self, router_id: int) -> "frozenset[int]":
        """Currently masked ports of one router (diagnostics)."""
        return frozenset()

    def alt_candidates(
        self, router_id: int, dst_node: int
    ) -> Optional[Tuple[int, ...]]:
        """Alternate-table ports (Y-then-X), or None without one."""
        return None

    def detour_options(
        self, router_id: int, dst_node: int
    ) -> Tuple[Tuple[Tuple[int, ...], str], ...]:
        """Ordered ``(ports, flavor)`` fallbacks for a masked primary."""
        return ()

    def route_adaptive(
        self, router_id: int, dst_node: int, flavor: Optional[str]
    ) -> Tuple[Tuple[int, ...], Optional[str]]:
        """Candidates with the health mask applied.

        Returns ``(ports, flavor)`` where ``flavor`` is the detour
        flavour the message must carry from here on (sticky: once a
        message detours onto the Y-then-X table it stays there).  The
        default implementation ignores the mask — topologies without
        redundant paths have nowhere else to send the worm, and the
        end-to-end recovery layer owns the resulting losses.
        """
        return self.candidates(router_id, dst_node), flavor


class _BoundView:
    """Generic per-router adapter for custom routing functions."""

    __slots__ = ("_routing", "router_id")

    def __init__(self, routing: RoutingFunction, router_id: int) -> None:
        self._routing = routing
        self.router_id = router_id

    def candidates(self, dst_node: int) -> Tuple[int, ...]:
        return self._routing.candidates(self.router_id, dst_node)

    def route_adaptive(self, dst_node: int, flavor: Optional[str]):
        return self._routing.route_adaptive(self.router_id, dst_node, flavor)


class SingleSwitchRouting(RoutingFunction):
    """Routing inside one switch: each host hangs off one port.

    Stateless (no mask, no counters), so ``fork`` shares the instance.
    """

    def __init__(self, host_ports: Mapping[int, int]) -> None:
        self._host_ports: Dict[int, int] = dict(host_ports)

    def candidates(self, router_id: int, dst_node: int) -> Tuple[int, ...]:
        try:
            return (self._host_ports[dst_node],)
        except KeyError:
            raise RoutingError(
                f"router {router_id}: unknown destination node {dst_node}"
            ) from None


class CompiledRouting(RoutingFunction):
    """Mutable facade over an immutable :class:`RouteProgram`.

    Holds one :class:`RouterRouteView` per router (created lazily, and
    handed to the router itself as its hot-path handle) plus the
    aggregated reroute/detour counters the health summary reports.
    All table data stays in the shared program; ``fork`` therefore
    costs a few object allocations, never a recompile.
    """

    def __init__(self, program: RouteProgram) -> None:
        self.program = program
        self._views: Dict[int, RouterRouteView] = {}
        #: fat groups shrunk around a masked sibling (counter)
        self.reroutes = 0
        #: primary group fully masked, detour fallback used (counter)
        self.detours_taken = 0

    def fork(self) -> "CompiledRouting":
        return CompiledRouting(self.program)

    @property
    def overlay(self):
        """The program's :class:`UpDownFailover`, or None (shared, immutable)."""
        return self.program.overlay

    def router_view(self, router_id: int) -> RouterRouteView:
        view = self._views.get(router_id)
        if view is None:
            view = RouterRouteView(self, self.program, router_id)
            self._views[router_id] = view
        return view

    # -- two-argument interface (stateless queries + health hooks) -----

    def candidates(self, router_id: int, dst_node: int) -> Tuple[int, ...]:
        return self.program.candidates(router_id, dst_node)

    def alt_candidates(
        self, router_id: int, dst_node: int
    ) -> Optional[Tuple[int, ...]]:
        return self.program.alt_candidates(router_id, dst_node)

    def detour_options(
        self, router_id: int, dst_node: int
    ) -> Tuple[Tuple[Tuple[int, ...], str], ...]:
        return self.program.detour_options(router_id, dst_node)

    def mask_port(self, router_id: int, port: int) -> None:
        self.router_view(router_id).masked_ports.add(port)

    def unmask_port(self, router_id: int, port: int) -> None:
        view = self._views.get(router_id)
        if view is not None:
            view.masked_ports.discard(port)

    def masked(self, router_id: int) -> "frozenset[int]":
        view = self._views.get(router_id)
        return frozenset() if view is None else frozenset(view.masked_ports)

    def route_adaptive(
        self, router_id: int, dst_node: int, flavor: Optional[str]
    ) -> Tuple[Tuple[int, ...], Optional[str]]:
        return self.router_view(router_id).route_adaptive(dst_node, flavor)


class TableRouting(CompiledRouting):
    """Precomputed routing table for multi-router topologies.

    Accepts the generator-native dict form — ``(router_id, dst_node) ->
    ports`` plus the optional ``alt_table`` (the opposite dimension
    order, ridden by messages carrying the ``"yx"`` detour flavour) and
    ``detours`` (ordered ``(ports, flavor)`` fallbacks tried when the
    primary group is fully masked) — and compiles it into a shared
    :class:`RouteProgram` at construction.  Entries with several ports
    are fat-link groups; a topology without alternates keeps
    masked-group traffic on the primary route (recovery handles it).
    """

    def __init__(
        self,
        table: Mapping[Tuple[int, int], Tuple[int, ...]],
        alt_table: Optional[Mapping[Tuple[int, int], Tuple[int, ...]]] = None,
        detours: Optional[
            Mapping[Tuple[int, int], Tuple[Tuple[Tuple[int, ...], str], ...]]
        ] = None,
        name: str = "table",
        overlay: Optional[UpDownFailover] = None,
    ) -> None:
        super().__init__(
            compile_routes(
                table, alt_table, detours, name=name, overlay=overlay
            )
        )


class FatMeshRouting(TableRouting):
    """Dimension-order routing on a fat mesh (built by the topology)."""
