"""Routing functions: deterministic, with fat-link candidate sets.

A routing function maps ``(router_id, destination node)`` to the tuple
of output ports a header may use.  Deterministic routing returns a
single port except on *fat* topologies, where the two physical links
toward the same neighbour are interchangeable and the router picks the
less-loaded one (section 3.4: "a message can use any one of the two
links to traverse to the next node based on the current load").

Fault-aware (adaptive) routing adds a dynamic *mask* on top: the
link-health monitor marks a ``(router, port)`` down and
:meth:`route_adaptive` shrinks the candidate group to its healthy
members.  When a fat group empties entirely the message falls back to a
precomputed *detour*: a perpendicular first hop plus a switch of
dimension order (X-then-Y traffic detouring around a dead X group
continues Y-then-X, and vice versa), riding the escape VC to stay
deadlock-free.  See ``docs/simulator-internals.md``.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Set, Tuple

from repro.errors import RoutingError

#: detour flavours: which dimension-order table a detoured message uses
#: for the rest of its journey (None = the primary table)
FLAVOR_XY = "xy"
FLAVOR_YX = "yx"


class RoutingFunction:
    """Interface: candidate output ports for a destination."""

    def candidates(self, router_id: int, dst_node: int) -> Tuple[int, ...]:
        """Output ports (non-empty tuple) a header may request."""
        raise NotImplementedError

    # -- fault awareness (no-ops for topologies without redundancy) ----

    def mask_port(self, router_id: int, port: int) -> None:
        """Exclude ``port`` from ``route_adaptive`` results."""

    def unmask_port(self, router_id: int, port: int) -> None:
        """Re-admit a previously masked port."""

    def masked(self, router_id: int) -> "frozenset[int]":
        """Currently masked ports of one router (diagnostics)."""
        return frozenset()

    def route_adaptive(
        self, router_id: int, dst_node: int, flavor: Optional[str]
    ) -> Tuple[Tuple[int, ...], Optional[str]]:
        """Candidates with the health mask applied.

        Returns ``(ports, flavor)`` where ``flavor`` is the detour
        flavour the message must carry from here on (sticky: once a
        message detours onto the Y-then-X table it stays there).  The
        default implementation ignores the mask — topologies without
        redundant paths have nowhere else to send the worm, and the
        end-to-end recovery layer owns the resulting losses.
        """
        return self.candidates(router_id, dst_node), flavor


class SingleSwitchRouting(RoutingFunction):
    """Routing inside one switch: each host hangs off one port."""

    def __init__(self, host_ports: Mapping[int, int]) -> None:
        self._host_ports: Dict[int, int] = dict(host_ports)

    def candidates(self, router_id: int, dst_node: int) -> Tuple[int, ...]:
        try:
            return (self._host_ports[dst_node],)
        except KeyError:
            raise RoutingError(
                f"router {router_id}: unknown destination node {dst_node}"
            ) from None


class TableRouting(RoutingFunction):
    """Precomputed routing table for multi-router topologies.

    The table is built once by the topology constructor (dimension-order
    for meshes), so the per-header cost is a dictionary lookup.  Entries
    with several ports are fat-link groups.

    ``alt_table`` is the opposite dimension order (Y-then-X for a mesh
    routed X-then-Y) used by messages carrying the ``"yx"`` detour
    flavour; ``detours`` maps ``(router_id, dst_node)`` to an ordered
    tuple of ``(ports, flavor)`` fallbacks tried when the primary group
    is fully masked.  Both are optional — a topology without them keeps
    masked-group traffic on the primary route (recovery handles it).
    """

    def __init__(
        self,
        table: Mapping[Tuple[int, int], Tuple[int, ...]],
        alt_table: Optional[Mapping[Tuple[int, int], Tuple[int, ...]]] = None,
        detours: Optional[
            Mapping[Tuple[int, int], Tuple[Tuple[Tuple[int, ...], str], ...]]
        ] = None,
    ) -> None:
        self._table: Dict[Tuple[int, int], Tuple[int, ...]] = dict(table)
        for key, ports in self._table.items():
            if not ports:
                raise RoutingError(f"empty routing entry for {key}")
        self._alt_table: Dict[Tuple[int, int], Tuple[int, ...]] = dict(
            alt_table or {}
        )
        self._detours: Dict[
            Tuple[int, int], Tuple[Tuple[Tuple[int, ...], str], ...]
        ] = dict(detours or {})
        self._masked: Dict[int, Set[int]] = {}
        #: fat groups shrunk around a masked sibling (counter)
        self.reroutes = 0
        #: primary group fully masked, detour fallback used (counter)
        self.detours_taken = 0

    def candidates(self, router_id: int, dst_node: int) -> Tuple[int, ...]:
        try:
            return self._table[(router_id, dst_node)]
        except KeyError:
            raise RoutingError(
                f"router {router_id}: no route to node {dst_node}"
            ) from None

    # -- fault awareness ----------------------------------------------

    def mask_port(self, router_id: int, port: int) -> None:
        self._masked.setdefault(router_id, set()).add(port)

    def unmask_port(self, router_id: int, port: int) -> None:
        ports = self._masked.get(router_id)
        if ports is not None:
            ports.discard(port)
            if not ports:
                del self._masked[router_id]

    def masked(self, router_id: int) -> "frozenset[int]":
        return frozenset(self._masked.get(router_id, ()))

    def route_adaptive(
        self, router_id: int, dst_node: int, flavor: Optional[str]
    ) -> Tuple[Tuple[int, ...], Optional[str]]:
        primary = (
            self._alt_table.get((router_id, dst_node))
            if flavor == FLAVOR_YX
            else None
        )
        if primary is None:
            primary = self.candidates(router_id, dst_node)
        masked = self._masked.get(router_id)
        if not masked:
            return primary, flavor
        healthy = tuple(p for p in primary if p not in masked)
        if healthy:
            if len(healthy) < len(primary):
                self.reroutes += 1
            return healthy, flavor
        for ports, detour_flavor in self._detours.get(
            (router_id, dst_node), ()
        ):
            open_ports = tuple(p for p in ports if p not in masked)
            if open_ports:
                self.detours_taken += 1
                return open_ports, detour_flavor
        # Every option is masked: keep requesting the primary group.
        # The worm blocks there until the port recovers or the
        # end-to-end layer times it out — losing it outright would
        # undercount deliverable traffic after a recovery.
        return primary, flavor


class FatMeshRouting(TableRouting):
    """Dimension-order routing on a fat mesh (built by the topology)."""
