"""The pipelined wormhole router (PROUD model, paper Figs. 1 and 2).

Each cycle the router executes its stages in downstream-to-upstream
order so a flit advances at most one stage per cycle:

5. **Output VC multiplexer** — per output PC, pick one staged flit among
   the VCs with a flit and a downstream credit (contention point C) and
   put it on the link.
4. **Crossbar** — *multiplexed* crossbar: per input PC, the crossbar
   input multiplexer (contention point A, where MediaWorm runs Virtual
   Clock) picks one routed VC whose head flit can move; at most one flit
   per crossbar output port per cycle (contention point B).  *Full*
   crossbar: every routed VC with a flit and staging space moves one
   flit — its crossbar port is dedicated and the output VC is owned by a
   single message, so there is nothing to arbitrate.
3./2. **Arbitration / routing** — header flits at the head of an input
   VC compute their output port (after the routing delay) and then
   retry every cycle for a free output VC in their class partition.
1. **Sync / demux / buffer / decode** — modelled by the link latency;
   arriving flits are stamped for the crossbar-input scheduler and
   buffered (:meth:`WormholeRouter.accept_flit` is called by the link).

Activity sets (``_pending_arb``, ``_sendable``, ``_out_active``) and
the port worklists built on them (``_in_ports``, ``_out_ports``) keep
the per-cycle cost proportional to the number of busy VCs/ports rather
than the router's total VC count; :meth:`WormholeRouter.step` reports
quiescence so the network's active-set loop stops visiting an idle
router entirely until a flit arrival re-activates it.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional, Set

from repro.core.schedulers import (
    MuxScheduler,
    make_scheduler,
)
from repro.errors import FlowControlError
from repro.router.buffers import InputVC, OutputVC
from repro.router.config import CrossbarKind, RouterConfig, RoutingMode
from repro.router.flit import Message
from repro.router.routing import RoutingFunction


class RouterDatapathView(NamedTuple):
    """Hot-path state view of one router (fused-engine binding hook).

    Exposes the stable containers and immutable lookup tables a fused
    engine binds once per run: buffer grids, activity sets (mutated in
    place), the precomputed class partitions, and the per-port mux
    selectors.  Scalars that are *reassigned* by the object path
    (``_work``, ``_pending_arb``, ``_arb_rotate``) are deliberately
    absent — engines must read/write them through the router attribute
    so both paths see one source of truth.
    """

    router: "WormholeRouter"
    inputs: List[List[InputVC]]
    outputs: List[List[OutputVC]]
    sendable: List[Set[int]]
    out_active: List[Set[int]]
    in_ports: Set[int]
    out_ports: Set[int]
    part: list
    in_selectors: List[MuxScheduler]
    out_selectors: List[MuxScheduler]
    in_policy: MuxScheduler
    out_policy: MuxScheduler
    in_stateless: bool
    out_stateless: bool
    multiplexed: bool
    routing_delay: int
    arb_delay: int
    out_links: List[Optional[object]]
    is_host_port: List[bool]
    route_view: object
    out_flits: List[int]


class WormholeRouter:
    """One wormhole-switched router instance."""

    def __init__(
        self,
        router_id: int,
        config: RouterConfig,
        routing: RoutingFunction,
    ) -> None:
        self.router_id = router_id
        self.config = config
        self.routing = routing
        #: per-router routing handle: candidate lookups without the
        #: router-id indirection, and (on compiled route programs) the
        #: thin mask overlay adaptive failover mutates for this router
        self._route_view = routing.router_view(router_id)
        n, m = config.num_ports, config.vcs_per_pc
        self.inputs: List[List[InputVC]] = [
            [InputVC(p, v, config.flit_buffer_depth) for v in range(m)]
            for p in range(n)
        ]
        self.outputs: List[List[OutputVC]] = [
            [OutputVC(p, v, config.output_buffer_depth) for v in range(m)]
            for p in range(n)
        ]
        #: outgoing link per output port (wired by the network; None until then)
        self.out_links: List[Optional[object]] = [None] * n
        #: True for ports whose link ejects to a host (set when wired)
        self.is_host_port: List[bool] = [False] * n
        #: output ports declared dead by a fault plan (repro.faults);
        #: the load-based fat-link selector routes around them
        self.faulted_ports: Set[int] = set()
        #: routing-mode flags (see RoutingMode): oracle consults
        #: ground-truth fault windows, adaptive consults the symptom
        #: mask and may detour over the escape VC
        self._oracle = config.routing_mode == RoutingMode.ORACLE
        self._adaptive = config.routing_mode == RoutingMode.ADAPTIVE

        multiplexed = config.crossbar == CrossbarKind.MULTIPLEXED
        # Scheduler placement per section 3.3 (point A for a multiplexed
        # crossbar, point C for a full one), overridable for ablations
        # via config.qos_placement.
        in_policy, out_policy = config.resolve_mux_policies()
        self._in_policy: MuxScheduler = make_scheduler(in_policy)
        self._out_policy: MuxScheduler = make_scheduler(out_policy)
        #: per-input-port selector at point A (separate instances so
        #: round-robin rotation state stays per-multiplexer)
        self._in_selectors: List[MuxScheduler] = [
            make_scheduler(in_policy) for _ in range(n)
        ]
        self._out_selectors: List[MuxScheduler] = [
            make_scheduler(out_policy) for _ in range(n)
        ]
        self._multiplexed = multiplexed
        #: stateless-selector flags allow single-candidate fast paths in
        #: the crossbar mux / stage-5 mux (round-robin must still see
        #: single-candidate selections to rotate its priority)
        self._in_stateless = self._in_policy.stateless_select
        self._out_stateless = self._out_policy.stateless_select
        #: flits put on each output link (utilisation probe)
        self.out_flits: List[int] = [0] * n

        # Hot-path lookup tables derived from the (immutable) config:
        # per-class VC index tuples, whether each class partition can
        # spare an escape VC, and the per-cycle stage delays.
        self._class_vcs = (
            tuple(config.vc_range_for_class(False)),
            tuple(config.vc_range_for_class(True)),
        )
        self._multi_vc = (
            len(self._class_vcs[0]) >= 2,
            len(self._class_vcs[1]) >= 2,
        )
        self._routing_delay = config.routing_delay
        self._arb_delay = config.arbitration_delay
        #: per-port partition table: _part[port][is_real_time] is the
        #: (normal, escape_only) pair of VC index tuples.  Rebuilt per
        #: port by wire_output, since the escape reservation depends on
        #: is_host_port which is only known at wiring time.
        self._part = [self._build_port_partition(p) for p in range(n)]

        # Activity sets.
        self._pending_arb: List[InputVC] = []
        self._sendable: List[Set[int]] = [set() for _ in range(n)]
        self._out_active: List[Set[int]] = [set() for _ in range(n)]
        # Port worklists: ports whose _sendable / _out_active set is
        # nonempty, so the crossbar and stage-5 loops visit only busy
        # ports instead of scanning all n every cycle.
        self._in_ports: Set[int] = set()
        self._out_ports: Set[int] = set()
        self._work = 0  # total busy indicators, for fast idle skip
        self._arb_rotate = 0
        #: optional hook(msg, flit_index) fired when a flit crosses the
        #: crossbar — used by tests and the conservation audit
        self.on_crossbar: Optional[Callable[[Message, int], None]] = None
        #: activation hook fired when a flit arrival gives an idle
        #: router work; installed by the network so the dispatch loop
        #: resumes stepping it (component protocol)
        self.on_activated: Optional[Callable[[], None]] = None
        #: trace sink installed by repro.obs.install_tracing
        self.trace = None

    # ------------------------------------------------------------------
    # wiring helpers (used by the network builder)

    def wire_output(self, port: int, link, host: bool) -> None:
        """Attach ``link`` to ``port``; ``host`` marks an ejection port."""
        self.out_links[port] = link
        self.is_host_port[port] = host
        self._part[port] = self._build_port_partition(port)

    def _build_port_partition(self, port: int):
        """Precompute the (normal, escape_only) VC tuples per class.

        See :meth:`_partition_indices` for the escape-VC semantics; the
        table just hoists that decision out of the arbitration loop.
        """
        entry = []
        for indices in self._class_vcs:
            if (
                not self._adaptive
                or self.is_host_port[port]
                or len(indices) < 2
            ):
                entry.append((indices, indices))
            else:
                entry.append((indices[:-1], indices[-1:]))
        return tuple(entry)

    def datapath_view(self) -> RouterDatapathView:
        """The hot state both engines share (fused-engine binding hook)."""
        return RouterDatapathView(
            router=self,
            inputs=self.inputs,
            outputs=self.outputs,
            sendable=self._sendable,
            out_active=self._out_active,
            in_ports=self._in_ports,
            out_ports=self._out_ports,
            part=self._part,
            in_selectors=self._in_selectors,
            out_selectors=self._out_selectors,
            in_policy=self._in_policy,
            out_policy=self._out_policy,
            in_stateless=self._in_stateless,
            out_stateless=self._out_stateless,
            multiplexed=self._multiplexed,
            routing_delay=self._routing_delay,
            arb_delay=self._arb_delay,
            out_links=self.out_links,
            is_host_port=self.is_host_port,
            route_view=self._route_view,
            out_flits=self.out_flits,
        )

    # ------------------------------------------------------------------
    # flit ingress (called by links and host interfaces)

    def accept_flit(
        self, clock: int, port: int, vc_index: int, msg: Message, flit_index: int
    ) -> None:
        """Stage-1 arrival: buffer and stamp one flit."""
        vc = self.inputs[port][vc_index]
        was_idle = not self._work
        if flit_index == 0:
            vc.accept_new_message(clock, msg)
            if len(vc.messages) == 1:
                self._pending_arb.append(vc)
                self._work += 1
        stamp = self._in_policy.stamp(clock, vc.vstate)
        vc.accept_flit(stamp)
        if vc.route_vc is not None and vc.front_has_flit:
            sendable = self._sendable[port]
            if vc_index not in sendable:
                sendable.add(vc_index)
                self._in_ports.add(port)
                self._work += 1
        if was_idle and self._work and self.on_activated is not None:
            self.on_activated()

    # ------------------------------------------------------------------
    # main per-cycle step

    def step(self, clock: int) -> int:
        """Advance every pipeline stage by one cycle.

        Component protocol: returns the router's remaining activity —
        non-zero while any stage holds work, zero once quiescent (the
        dispatch loop then stops stepping it until a flit arrival fires
        :attr:`on_activated`).
        """
        if self._work:
            self._stage5_output(clock)
            self._stage4_crossbar(clock)
            self._stage23_route_arbitrate(clock)
        return self._work

    def next_due(self, clock: int) -> Optional[int]:
        """Component protocol: a busy router must step every cycle."""
        return clock if self._work else None

    @property
    def quiescent(self) -> bool:
        """True when no pipeline stage holds work."""
        return not self._work

    def stage_quiescence(self) -> "dict[str, bool]":
        """Per-stage quiescence report (introspection / diagnostics).

        Keys follow the pipeline: ``arbitration`` (stages 2/3 — headers
        awaiting routing or an output VC), ``crossbar`` (stage 4 —
        granted input VCs with buffered flits), ``output`` (stage 5 —
        output VCs with staged flits).
        """
        return {
            "arbitration": not self._pending_arb,
            "crossbar": not self._in_ports,
            "output": not self._out_ports,
        }

    # -- stage 5: output VC multiplexer + link ------------------------

    def _stage5_output(self, clock: int) -> None:
        out_ports = self._out_ports
        out_active = self._out_active
        outputs = self.outputs
        trace = self.trace
        # sorted() both fixes the service order (determinism) and copies
        # the worklist, which is mutated below; a single busy port needs
        # neither beyond the copy.
        if len(out_ports) == 1:
            ports = (next(iter(out_ports)),)
        else:
            ports = sorted(out_ports)
        for port in ports:
            active = out_active[port]
            ovcs = outputs[port]
            if trace is None and len(active) == 1 and self._out_stateless:
                # One staged VC, stateless selector: nothing to arbitrate.
                chosen = next(iter(active))
                ovc = ovcs[chosen]
                if ovc.downstream is not None and ovc.credits <= 0:
                    continue
            else:
                candidates = []
                for index in active:
                    ovc = ovcs[index]
                    if ovc.downstream is None or ovc.credits > 0:
                        candidates.append((ovc.stamps[0], index))
                if not candidates:
                    continue
                chosen = self._out_selectors[port].select(candidates)
                ovc = ovcs[chosen]
                if trace is not None:
                    trace.on_event(
                        "sched",
                        clock,
                        {
                            "router": self.router_id,
                            "point": "C",
                            "port": port,
                            "policy": self._out_policy.policy,
                            "vc": chosen,
                            "stamp": ovc.stamps[0],
                            "cands": len(candidates),
                        },
                    )
            msg, flit_index = ovc.pop_head()
            if ovc.downstream is not None:
                ovc.credits -= 1
            link = self.out_links[port]
            if link is None:
                raise FlowControlError(
                    f"router {self.router_id} port {port} has staged flits "
                    f"but no outgoing link"
                )
            link.send(clock, msg, flit_index, chosen)
            self.out_flits[port] += 1
            if not ovc.queue:
                active.discard(chosen)
                if not active:
                    out_ports.discard(port)
                self._work -= 1
            if flit_index == msg.last_flit:
                ovc.release()
                if trace is not None:
                    trace.on_event(
                        "vc_release",
                        clock,
                        {
                            "router": self.router_id,
                            "port": port,
                            "vc": chosen,
                            "msg": msg.msg_id,
                        },
                    )

    # -- stage 4: crossbar ---------------------------------------------

    def _stage4_crossbar(self, clock: int) -> None:
        if self._multiplexed:
            self._crossbar_multiplexed(clock)
        else:
            self._crossbar_full(clock)

    def _crossbar_multiplexed(self, clock: int) -> None:
        """Crossbar input multiplexer (contention point A).

        Per input PC, the multiplexer forwards the scheduler-preferred
        flit — at most one per cycle — into its granted output VC's
        staging buffer.  The crossbar fabric itself is modelled as
        non-blocking: commercial pipelined routers clock the fabric
        faster than the link, and the paper's router sustains loads up
        to 0.96 jitter-free, which rules out fabric matching losses.
        Bandwidth is enforced where it physically binds: one flit per
        cycle per input PC here (the mux), one flit per cycle per
        output PC at the stage-5 VC multiplexer, and back-pressure via
        the finite per-VC staging space (contention point B's queue).
        """
        inputs = self.inputs
        in_ports = self._in_ports
        sendable_sets = self._sendable
        trace = self.trace
        if len(in_ports) == 1:
            ports = (next(iter(in_ports)),)
        else:
            ports = sorted(in_ports)
        for port in ports:
            sendable = sendable_sets[port]
            if not sendable:
                continue
            port_vcs = inputs[port]
            if trace is None and len(sendable) == 1 and self._in_stateless:
                # One routed VC, stateless selector: check eligibility
                # and move without building a candidate list.
                vc = port_vcs[next(iter(sendable))]
                if vc.ready_at > clock:
                    continue
                ovc = vc.route_vc
                if len(ovc.queue) >= ovc.capacity:
                    continue
                self._move_through_crossbar(clock, vc)
                continue
            candidates = []
            for index in sendable:
                vc = port_vcs[index]
                if vc.ready_at > clock:
                    continue
                ovc = vc.route_vc
                if len(ovc.queue) >= ovc.capacity:
                    continue
                candidates.append((vc.stamps[0], index))
            if not candidates:
                continue
            chosen = self._in_selectors[port].select(candidates)
            if trace is not None:
                trace.on_event(
                    "sched",
                    clock,
                    {
                        "router": self.router_id,
                        "point": "A",
                        "port": port,
                        "policy": self._in_policy.policy,
                        "vc": chosen,
                        "stamp": port_vcs[chosen].stamps[0],
                        "cands": len(candidates),
                    },
                )
            self._move_through_crossbar(clock, port_vcs[chosen])

    def _crossbar_full(self, clock: int) -> None:
        inputs = self.inputs
        in_ports = self._in_ports
        if len(in_ports) == 1:
            ports = (next(iter(in_ports)),)
        else:
            ports = sorted(in_ports)
        for port in ports:
            sendable = self._sendable[port]
            if not sendable:
                continue
            port_vcs = inputs[port]
            for index in list(sendable):
                vc = port_vcs[index]
                if vc.ready_at > clock:
                    continue
                ovc = vc.route_vc
                if len(ovc.queue) >= ovc.capacity:
                    continue
                self._move_through_crossbar(clock, vc)

    def _move_through_crossbar(self, clock: int, vc: InputVC) -> None:
        """Move the head flit of ``vc`` into its granted output VC."""
        ovc = vc.route_vc
        msg, flit_index = vc.pop_head()
        sink = vc.credit_sink
        if sink is not None:
            sink.credits += 1
        stamp = self._out_policy.stamp(clock, ovc.vstate)
        ovc.push(msg, flit_index, stamp)
        out_active = self._out_active[ovc.port]
        if ovc.index not in out_active:
            out_active.add(ovc.index)
            self._out_ports.add(ovc.port)
            self._work += 1
        if self.on_crossbar is not None:
            self.on_crossbar(msg, flit_index)
        if self.trace is not None:
            self.trace.on_event(
                "xbar",
                clock,
                {
                    "router": self.router_id,
                    "port": vc.port,
                    "vc": vc.index,
                    "out_port": ovc.port,
                    "out_vc": ovc.index,
                    "msg": msg.msg_id,
                    "flit": flit_index,
                },
            )
        if flit_index == msg.last_flit:
            self._drop_sendable(vc)
            self._work -= 1
            if vc.release_front():
                # Another message is queued behind the tail; its header
                # re-enters routing/arbitration (stages 2-3).
                self._pending_arb.append(vc)
                self._work += 1
        elif not vc.front_has_flit:
            self._drop_sendable(vc)
            self._work -= 1

    def _drop_sendable(self, vc: InputVC) -> None:
        """Remove ``vc`` from its port's crossbar worklist."""
        sendable = self._sendable[vc.port]
        sendable.discard(vc.index)
        if not sendable:
            self._in_ports.discard(vc.port)

    # -- stages 2 and 3: routing decision + output VC arbitration ------

    def _stage23_route_arbitrate(self, clock: int) -> None:
        pending = self._pending_arb
        if not pending:
            return
        # Rotate the service order so no input VC is structurally favoured
        # when several headers contend for the same output VC.
        rotate = self._arb_rotate % len(pending)
        self._arb_rotate += 1
        ordered = pending[rotate:] + pending[:rotate]
        # Re-entrant additions (a preemption freeing a VC whose next
        # message must re-arbitrate) land in the fresh list and survive.
        self._pending_arb = []
        still_waiting: List[InputVC] = []
        for vc in ordered:
            if not self._try_route_and_arbitrate(clock, vc):
                still_waiting.append(vc)
        self._pending_arb.extend(still_waiting)

    def _try_route_and_arbitrate(self, clock: int, vc: InputVC) -> bool:
        msg = vc.msg
        if msg is None:  # defensive: released while pending
            self._work -= 1
            return True
        if clock < vc.head_arrival + self._routing_delay:
            return False
        if vc.route_port < 0:
            if self._adaptive:
                ports, flavor = self._route_view.route_adaptive(
                    msg.dst_node, msg.detoured
                )
                if flavor != msg.detoured:
                    # Entering a detour needs an escape VC; a partition
                    # with a single VC cannot spare one, so the worm
                    # stays on the (masked) primary route and the
                    # recovery layer owns its fate.
                    if not self._multi_vc[msg.is_real_time]:
                        ports = self._route_view.candidates(msg.dst_node)
                    else:
                        msg.detoured = flavor
            else:
                ports = self._route_view.candidates(msg.dst_node)
            vc.route_port = self._select_output_port(clock, ports)
            if self.trace is not None:
                self.trace.on_event(
                    "route",
                    clock,
                    {
                        "router": self.router_id,
                        "port": vc.port,
                        "vc": vc.index,
                        "msg": msg.msg_id,
                        "out": vc.route_port,
                    },
                )
        escape_only = (
            self._adaptive
            and msg.detoured is not None
            and not self.is_host_port[vc.route_port]
        )
        ovc = self._arbitrate_output_vc(clock, vc.route_port, msg, escape_only)
        if ovc is None:
            return False
        if self.trace is not None:
            self.trace.on_event(
                "vc_alloc",
                clock,
                {
                    "router": self.router_id,
                    "port": ovc.port,
                    "vc": ovc.index,
                    "msg": msg.msg_id,
                },
            )
        vc.route_vc = ovc
        vc.ready_at = clock + self._arb_delay
        if vc.front_has_flit:
            sendable = self._sendable[vc.port]
            if vc.index not in sendable:
                sendable.add(vc.index)
                self._in_ports.add(vc.port)
                self._work += 1
        self._work -= 1  # leaves pending_arb
        return True

    def _select_output_port(self, clock: int, ports) -> int:
        """Pick among fat-link candidates by current load (section 3.4).

        Candidates whose output port failed or whose link sits in a
        fault down window are skipped — the surviving sibling of a fat
        group absorbs the traffic.  A message whose *only* candidate is
        faulted still takes it (and its flits are lost on the dead
        wire); end-to-end recovery, not routing, owns that case.
        """
        if len(ports) == 1:
            return ports[0]
        if self._oracle:
            # Oracle mode only: consult the ground-truth fault state.
            # Static mode stays blind; adaptive mode already shrank the
            # group via the symptom mask in route_adaptive.
            usable = [p for p in ports if self._port_usable(clock, p)]
            if usable:
                ports = usable
        best_port = -1
        best_load = None
        for port in ports:
            load = sum(
                (0 if ovc.is_free else 1) + len(ovc.queue)
                for ovc in self.outputs[port]
            )
            if best_load is None or load < best_load:
                best_load = load
                best_port = port
        return best_port

    def _port_usable(self, clock: int, port: int) -> bool:
        """False when the port (or its outgoing link) is faulted."""
        if port in self.faulted_ports:
            return False
        link = self.out_links[port]
        return link is None or link.is_available(clock)

    def _partition_indices(
        self, port: int, is_real_time: bool, escape_only: bool
    ):
        """VC indices of the class partition, escape VC applied.

        In adaptive mode the last VC of every multi-VC partition on a
        non-host port is reserved as the *escape* VC: only detoured
        messages may claim it (``escape_only``), and they may claim
        nothing else.  Keeping normal worms off the escape VC means a
        detoured worm can never be blocked behind traffic that is
        itself waiting on the dead dimension — the standard escape-
        channel deadlock-freedom argument.  Single-VC partitions have
        nothing to spare; detours are refused there at routing time.

        The actual partition tuples are precomputed per port by
        :meth:`_build_port_partition`; this accessor just indexes the
        table (bools index as 0/1).
        """
        return self._part[port][is_real_time][escape_only]

    def _arbitrate_output_vc(
        self, clock: int, port: int, msg: Message, escape_only: bool = False
    ) -> Optional[OutputVC]:
        """Grant a free output VC on ``port`` to ``msg``, if any.

        The destination VC chosen by the stream (section 4.2.1) is
        binding at the final hop (the host port); elsewhere any free VC
        in the message's class partition may be used.  With dynamic
        partitioning enabled, best-effort messages may also borrow a
        free real-time VC when their own partition is exhausted.
        """
        ovcs = self.outputs[port]
        if self.is_host_port[port] and msg.dst_vc is not None:
            ovc = ovcs[msg.dst_vc]
            if ovc.is_free:
                ovc.grant(clock, msg)
                return ovc
            # A real-time message blocked on its bound VC by a
            # best-effort *borrower* (dynamic partitioning) may preempt
            # it — this is the dominant preemption case, since stream
            # traffic always binds its destination VC.
            if (
                self.config.preemption
                and msg.is_real_time
                and self.on_preempt is not None
                and ovc.owner is not None
                and not ovc.owner.is_real_time
            ):
                self.on_preempt(ovc.owner)
                if ovc.is_free:
                    ovc.grant(clock, msg)
                    return ovc
            # Real-time streams keep connection semantics: every message
            # of the stream uses the stream's destination VC, so they
            # serialise there (the paper's streams-per-VC capacity).
            # Best-effort messages have no connection to preserve; their
            # drawn VC is a preference, and head-of-line waiting for a
            # busy VC while sibling VCs idle would only waste grants
            # (see DESIGN.md, model fidelity notes).
            if msg.is_real_time or self.config.be_dst_vc_binding:
                return None
        for index in self._part[port][msg.is_real_time][escape_only]:
            ovc = ovcs[index]
            if ovc.owner is None:
                ovc.grant(clock, msg)
                return ovc
        if escape_only:
            # A detoured worm waits for its escape VC; borrowing or
            # preempting a normal VC would defeat the reservation.
            return None
        if self.config.dynamic_partitioning and not msg.is_real_time:
            for index in self._part[port][True][False]:
                ovc = ovcs[index]
                if ovc.owner is None:
                    ovc.grant(clock, msg)
                    return ovc
        if (
            self.config.preemption
            and msg.is_real_time
            and self.on_preempt is not None
        ):
            victim = self._find_preemption_victim(port)
            if victim is not None:
                # the hook kills the victim network-wide (dropping its
                # remaining flits everywhere) and schedules a retransmit
                self.on_preempt(victim)
                for index in self._part[port][True][False]:
                    ovc = ovcs[index]
                    if ovc.owner is None:
                        ovc.grant(clock, msg)
                        return ovc
        return None

    # ------------------------------------------------------------------
    # preemption support

    def purge_message(self, msg: Message) -> int:
        """Remove every trace of a killed message from this router.

        Returns the number of flits dropped (input buffers + staging).
        Credits consumed by dropped input-buffer flits are returned to
        the upstream sender; scheduler activity sets are repaired.
        """
        dropped = 0
        for port, port_vcs in enumerate(self.inputs):
            for vc in port_vcs:
                if not any(rec.msg is msg for rec in vc.messages):
                    continue
                was_front = vc.messages[0].msg is msg
                had_grant = was_front and vc.route_vc is not None
                removed = vc.purge_message(msg)
                dropped += removed
                if vc.credit_sink is not None:
                    vc.credit_sink.credits += removed
                if had_grant:
                    if vc.index in self._sendable[port]:
                        self._drop_sendable(vc)
                        self._work -= 1
                if was_front:
                    if vc in self._pending_arb:
                        self._pending_arb.remove(vc)
                        self._work -= 1
                    if vc.messages:
                        # the next message's header re-enters stage 2/3
                        self._pending_arb.append(vc)
                        self._work += 1
        for port_ovcs in self.outputs:
            for ovc in port_ovcs:
                if ovc.owner is msg:
                    staged = ovc.purge_owner(msg)
                    dropped += staged
                    if staged == 0 or not ovc.queue:
                        active = self._out_active[ovc.port]
                        if ovc.index in active:
                            active.discard(ovc.index)
                            if not active:
                                self._out_ports.discard(ovc.port)
                            self._work -= 1
        return dropped

    #: hook(msg) -> None installed by the network to kill & retransmit
    #: a preemption victim; None disables preemption at arbitration
    on_preempt: Optional[Callable[[Message], None]] = None

    def _find_preemption_victim(self, port: int) -> Optional[Message]:
        """A best-effort message squatting on a real-time VC, if any."""
        for index in self._class_vcs[True]:
            owner = self.outputs[port][index].owner
            if owner is not None and not owner.is_real_time:
                return owner
        return None

    # ------------------------------------------------------------------
    # introspection / audit helpers

    def buffered_flits(self) -> int:
        """Total flits held in this router's buffers (audit hook)."""
        total = 0
        for port_vcs in self.inputs:
            for vc in port_vcs:
                total += vc.occupancy
        for port_ovcs in self.outputs:
            for ovc in port_ovcs:
                total += len(ovc.queue)
        return total

    def check_invariants(self) -> None:
        """Validate every buffer's bookkeeping (test hook)."""
        for port_vcs in self.inputs:
            for vc in port_vcs:
                vc.check_invariants()
        for port_ovcs in self.outputs:
            for ovc in port_ovcs:
                ovc.check_invariants()
        in_ports = {p for p, vcs in enumerate(self._sendable) if vcs}
        out_ports = {p for p, vcs in enumerate(self._out_active) if vcs}
        if self._in_ports != in_ports or self._out_ports != out_ports:
            raise FlowControlError(
                f"router {self.router_id} port worklists drifted: "
                f"in {sorted(self._in_ports)} vs {sorted(in_ports)}, "
                f"out {sorted(self._out_ports)} vs {sorted(out_ports)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WormholeRouter(id={self.router_id}, ports={self.config.num_ports}, "
            f"vcs={self.config.vcs_per_pc}, xbar={self.config.crossbar})"
        )
