"""Compiled route programs: per-topology routing as flat indexed data.

A :class:`RouteProgram` is the routing layer of one topology compiled
into immutable flat structures — built exactly once per topology by
:func:`compile_routes` and shared, read-only, by every router and every
:class:`~repro.network.network.Network` instantiated over it:

* destination nodes map to dense *slots* (``node_slot``; the common
  case of node ids ``0..H-1`` short-circuits the dict entirely);
* candidate port groups are deduplicated into one ``groups`` tuple
  (a 16-pod fat tree has 320 routers x 1024 destinations but only a
  few hundred distinct groups);
* the primary and alternate (Y-then-X) tables become per-router integer
  rows (``primary[rid][slot] -> group id``, ``-1`` = no route), which
  is the representation the ROADMAP's numpy array backend indexes
  directly;
* detour fallbacks stay sparse: ``detours[(rid, slot)]`` is an ordered
  tuple of ``(group id, flavor)`` pairs.

Mutable routing state — the health mask a failover campaign applies via
``mask_port``/``unmask_port`` and the reroute/detour counters — lives
*outside* the program, in per-router :class:`RouterRouteView` overlays
owned by a :class:`~repro.router.routing.CompiledRouting` facade.  A
facade is cheap to ``fork()`` (the program is shared by reference), so
cached topologies can serve many networks without ever leaking mask
state between runs.

The module-level compile counter exists for the construction-count
tests: building a topology compiles its program exactly once, and
nothing downstream (network assembly, forking, sweep repetition over a
cached topology) may compile again.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import RoutingError

#: detour flavours: which dimension-order table a detoured message uses
#: for the rest of its journey (None = the primary table)
FLAVOR_XY = "xy"
FLAVOR_YX = "yx"

#: total RouteProgram compilations in this process (see compile_count)
_COMPILE_COUNT = 0


def compile_count() -> int:
    """Process-wide number of :func:`compile_routes` invocations.

    Tests assert the *delta* of this counter around topology reuse: one
    compile per distinct topology, zero for additional networks, forks,
    or cache hits.
    """
    return _COMPILE_COUNT


class RouteProgram:
    """Immutable compiled routing tables for one topology."""

    __slots__ = (
        "name",
        "num_routers",
        "nodes",
        "node_slot",
        "dense",
        "groups",
        "primary",
        "alt",
        "detours",
        "overlay",
    )

    def __init__(
        self,
        name: str,
        num_routers: int,
        nodes: Tuple[int, ...],
        node_slot: Dict[int, int],
        dense: bool,
        groups: Tuple[Tuple[int, ...], ...],
        primary: Tuple[Tuple[int, ...], ...],
        alt: Optional[Tuple[Optional[Tuple[int, ...]], ...]],
        detours: Dict[Tuple[int, int], Tuple[Tuple[int, str], ...]],
        overlay: Optional["UpDownFailover"] = None,
    ) -> None:
        self.name = name
        self.num_routers = num_routers
        self.nodes = nodes
        self.node_slot = node_slot
        self.dense = dense
        self.groups = groups
        self.primary = primary
        self.alt = alt
        self.detours = detours
        #: alternate-ancestor failover overlay for up*/down* fabrics
        #: (None on topologies that repair via alt tables/detours instead)
        self.overlay = overlay

    # -- queries (stateless; the mask lives in RouterRouteView) --------

    def slot_of(self, node: int) -> int:
        """Dense slot of a node id, or ``-1`` when unknown."""
        if self.dense:
            return node if 0 <= node < len(self.nodes) else -1
        return self.node_slot.get(node, -1)

    def candidates(self, router_id: int, dst_node: int) -> Tuple[int, ...]:
        """Primary candidate ports; raises :class:`RoutingError` if none."""
        gid = -1
        if 0 <= router_id < self.num_routers:
            slot = self.slot_of(dst_node)
            if slot >= 0:
                gid = self.primary[router_id][slot]
        if gid < 0:
            raise RoutingError(
                f"router {router_id}: no route to node {dst_node}"
            )
        return self.groups[gid]

    def alt_candidates(
        self, router_id: int, dst_node: int
    ) -> Optional[Tuple[int, ...]]:
        """Alternate-table (Y-then-X) ports, or None without an entry."""
        if self.alt is None or not 0 <= router_id < self.num_routers:
            return None
        row = self.alt[router_id]
        if row is None:
            return None
        slot = self.slot_of(dst_node)
        if slot < 0:
            return None
        gid = row[slot]
        return None if gid < 0 else self.groups[gid]

    def detour_options(
        self, router_id: int, dst_node: int
    ) -> Tuple[Tuple[Tuple[int, ...], str], ...]:
        """Ordered ``(ports, flavor)`` fallbacks for a masked primary."""
        slot = self.slot_of(dst_node)
        if slot < 0:
            return ()
        return tuple(
            (self.groups[gid], flavor)
            for gid, flavor in self.detours.get((router_id, slot), ())
        )

    def stats(self) -> Dict[str, object]:
        """Size/shape accounting (``mediaworm topo``, diagnostics)."""
        entries = sum(
            1 for row in self.primary for gid in row if gid >= 0
        )
        alt_entries = 0
        if self.alt is not None:
            alt_entries = sum(
                1
                for row in self.alt
                if row is not None
                for gid in row
                if gid >= 0
            )
        group_sizes = [len(g) for g in self.groups]
        return {
            "name": self.name,
            "routers": self.num_routers,
            "destinations": len(self.nodes),
            "dense_nodes": self.dense,
            "entries": entries,
            "alt_entries": alt_entries,
            "detour_entries": len(self.detours),
            "unique_groups": len(self.groups),
            "max_group_size": max(group_sizes, default=0),
            "table_ints": self.num_routers * len(self.nodes),
            "failover_overlay": self.overlay is not None,
        }


class UpDownFailover:
    """Precomputed alternate-ancestor repair for up*/down* fabrics.

    A levelled (fat-tree / folded-Clos) route program has no detour
    table by theorem: below the lowest common ancestor the down path is
    unique, so there is nothing *local* to fall back on when a switch
    on that path dies.  The repair that does exist is global: ascend
    through a *different* ancestor whose down-subtree still reaches the
    destination.  Because worms ascend adaptively (any parent group,
    picked by load), the repair is expressible purely as extra
    ``(router, port)`` masks — prune every up-edge whose ancestor
    subtree lost destinations that a sibling ancestor still reaches,
    and load-based shrink does the rest.

    :meth:`analyze` computes, for a set of dead switches (and/or dead
    directed edges), exactly that mask set plus the hosts no amount of
    re-steering can save (their attachment switch died, or every
    ancestor lost them).  The computation is *demonically safe*: after
    applying the masks, **every** unmasked candidate port at every
    live router leads to a router that still reaches every live
    destination the worm could be carrying — the router's load-based
    pick can never wander into a dead end.  Results are memoised per
    fault set; the zero-fault path never touches any of this, and the
    heavy per-topology bit tables are built lazily on the first
    analysis, so building a 1024-host tree stays as cheap as before.

    The structure is immutable shared data like the rest of the
    program: runs *read* mask sets from it and apply them to their own
    forked :class:`RouterRouteView` overlays, so forks stay isolated.
    """

    __slots__ = (
        "num_routers",
        "levels",
        "adjacency",
        "host_router",
        "_ready",
        "parents",
        "children",
        "_nodes",
        "_node_bit",
        "_hosts_at",
        "_below",
        "_all_hosts",
        "_down_order",
        "_cache",
    )

    def __init__(
        self,
        levels: Sequence[int],
        adjacency: Mapping[Tuple[int, int], Tuple[int, ...]],
        host_router: Mapping[int, int],
    ) -> None:
        self.num_routers = len(levels)
        self.levels = tuple(levels)
        self.adjacency = {
            key: tuple(ports) for key, ports in adjacency.items()
        }
        self.host_router = dict(host_router)
        self._ready = False
        self._cache: Dict[
            Tuple[FrozenSet[int], FrozenSet[Tuple[int, int]]],
            Tuple[Tuple[Tuple[int, int], ...], FrozenSet[int]],
        ] = {}

    # -- lazy per-topology tables --------------------------------------

    def _ensure(self) -> None:
        if self._ready:
            return
        num = self.num_routers
        levels = self.levels
        children: List[List[int]] = [[] for _ in range(num)]
        parents: List[List[int]] = [[] for _ in range(num)]
        for rid, nbr in sorted(self.adjacency):
            if levels[nbr] == levels[rid] - 1:
                children[rid].append(nbr)
            elif levels[nbr] == levels[rid] + 1:
                parents[rid].append(nbr)
        self.children = tuple(tuple(c) for c in children)
        self.parents = tuple(tuple(p) for p in parents)
        nodes = tuple(sorted(self.host_router))
        self._nodes = nodes
        self._node_bit = {node: 1 << i for i, node in enumerate(nodes)}
        self._all_hosts = (1 << len(nodes)) - 1
        hosts_at = [0] * num
        for node, rid in self.host_router.items():
            hosts_at[rid] |= self._node_bit[node]
        self._hosts_at = tuple(hosts_at)
        up_order = sorted(range(num), key=lambda r: (levels[r], r))
        below = [0] * num
        for rid in up_order:
            mask = hosts_at[rid]
            joint = 0
            for child in self.children[rid]:
                if joint & below[child]:
                    raise RoutingError(
                        "failover overlay needs disjoint child subtrees "
                        f"(router {rid} reaches some host via two children)"
                    )
                joint |= below[child]
                mask |= below[child]
            below[rid] = mask
        self._below = tuple(below)
        self._down_order = tuple(reversed(up_order))
        self._ready = True

    # -- fault analysis -------------------------------------------------

    def analyze(
        self,
        dead_switches: FrozenSet[int] = frozenset(),
        dead_edges: FrozenSet[Tuple[int, int]] = frozenset(),
    ) -> Tuple[Tuple[Tuple[int, int], ...], FrozenSet[int]]:
        """Masks and casualties for a fault set.

        ``dead_switches`` are router ids presumed crashed; every edge
        touching one is dead.  ``dead_edges`` adds individually severed
        directed adjacencies ``(router, neighbour)`` (a fat edge dies
        only when *all* its parallel ports are gone — the caller maps
        link faults to edges).  Returns ``(masks, isolated)``: the
        sorted ``(router, port)`` pairs adaptive routing must mask so
        no surviving candidate dead-ends, and the host nodes no
        masking can save (shed them instead of letting the watchdog
        fire).
        """
        dead_switches = frozenset(dead_switches)
        dead_edges = frozenset(dead_edges)
        key = (dead_switches, dead_edges)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        self._ensure()
        adjacency = self.adjacency
        hosts_at = self._hosts_at
        below = self._below
        all_hosts = self._all_hosts

        def edge_alive(rid: int, nbr: int) -> bool:
            return (
                rid not in dead_switches
                and nbr not in dead_switches
                and (rid, nbr) not in dead_edges
            )

        masks: Set[Tuple[int, int]] = set()
        # Ports aimed straight at a dead switch or over a severed edge
        # are masked outright (the symptom-driven link layer converges
        # on the same set; listing them here keeps analyze() complete).
        for (rid, nbr), ports in adjacency.items():
            if rid not in dead_switches and not edge_alive(rid, nbr):
                masks.update((rid, port) for port in ports)

        # Demonic down-reachability: hosts a router delivers downward
        # no matter which surviving candidate the load picker chooses.
        # Child subtrees are disjoint (checked in _ensure), so the OR
        # over live children is exact.
        ok_down = [0] * self.num_routers
        for rid in self._down_order[::-1]:  # ascending level order
            if rid in dead_switches:
                continue
            mask = hosts_at[rid]
            for child in self.children[rid]:
                if edge_alive(rid, child):
                    mask |= ok_down[child]
            ok_down[rid] = mask

        # Top-down: prune up-edges into ancestors that lost destinations
        # a sibling ancestor still reaches, then summarise what each
        # router can *certainly* deliver (safe = down set + what every
        # surviving parent guarantees).
        safe = [0] * self.num_routers
        for rid in self._down_order:
            if rid in dead_switches:
                continue
            alive_parents = [
                p
                for p in self.parents[rid]
                if p not in dead_switches and edge_alive(rid, p)
            ]
            outside = all_hosts & ~below[rid]
            union = 0
            for p in alive_parents:
                union |= safe[p]
            up_safe = 0
            keep_any = False
            for p in alive_parents:
                if (union & ~safe[p]) & outside:
                    masks.update(
                        (rid, port) for port in adjacency[(rid, p)]
                    )
                else:
                    up_safe = safe[p] if not keep_any else up_safe & safe[p]
                    keep_any = True
            safe[rid] = ok_down[rid] | (up_safe & outside)

        # Casualties: hosts on a dead switch, hosts whose own leaf lost
        # every way out, then hosts some *surviving* leaf can no longer
        # reach.  Order matters — a cut-off leaf can reach nobody, so
        # letting it vote in the reachability pass would condemn the
        # whole fabric instead of just its own hosts.
        dead_hosts = 0
        for rid in dead_switches:
            if 0 <= rid < self.num_routers:
                dead_hosts |= hosts_at[rid]
        isolated = dead_hosts
        live_leaves = [
            rid
            for rid in range(self.num_routers)
            if hosts_at[rid] and rid not in dead_switches
        ]
        for leaf in live_leaves:
            others = all_hosts & ~dead_hosts & ~hosts_at[leaf]
            if others and not (safe[leaf] & others):
                isolated |= hosts_at[leaf]
        for leaf in live_leaves:
            if hosts_at[leaf] & isolated:
                continue
            isolated |= all_hosts & ~safe[leaf]

        node_bit = self._node_bit
        isolated_nodes = frozenset(
            node for node in self._nodes if isolated & node_bit[node]
        )
        result = (tuple(sorted(masks)), isolated_nodes)
        if len(self._cache) >= 128:
            self._cache.clear()
        self._cache[key] = result
        return result

    def masks_for(
        self, dead_switches: "FrozenSet[int] | Set[int]"
    ) -> Tuple[Tuple[Tuple[int, int], ...], FrozenSet[int]]:
        """:meth:`analyze` specialised to crashed switches (runtime path)."""
        return self.analyze(dead_switches=frozenset(dead_switches))

    def dead_edges_from_ports(
        self, dead_ports: "Set[Tuple[int, int]]"
    ) -> FrozenSet[Tuple[int, int]]:
        """Directed adjacencies whose every parallel port is dead."""
        return frozenset(
            (rid, nbr)
            for (rid, nbr), ports in self.adjacency.items()
            if all((rid, port) in dead_ports for port in ports)
        )


def compile_routes(
    table: Mapping[Tuple[int, int], Tuple[int, ...]],
    alt_table: Optional[Mapping[Tuple[int, int], Tuple[int, ...]]] = None,
    detours: Optional[
        Mapping[Tuple[int, int], Tuple[Tuple[Tuple[int, ...], str], ...]]
    ] = None,
    *,
    name: str = "table",
    num_routers: Optional[int] = None,
    overlay: Optional[UpDownFailover] = None,
) -> RouteProgram:
    """Compile dict routing tables into one :class:`RouteProgram`.

    The input is the generator-native form — ``(router_id, dst_node) ->
    ports`` mappings — and the output is the flat indexed program every
    router queries.  Candidate tuples are preserved exactly (same ports,
    same order), so a compiled topology is bit-identical to the historic
    dict-per-lookup behaviour.  Empty candidate groups are rejected
    here, the single validation point.
    """
    global _COMPILE_COUNT
    _COMPILE_COUNT += 1

    nodes_seen: Set[int] = set()
    max_router = -1
    for (rid, node), ports in table.items():
        if not ports:
            raise RoutingError(f"empty routing entry for {(rid, node)}")
        nodes_seen.add(node)
        if rid > max_router:
            max_router = rid
    for (rid, node), ports in (alt_table or {}).items():
        nodes_seen.add(node)
        if rid > max_router:
            max_router = rid
    if num_routers is None:
        num_routers = max_router + 1
    nodes = tuple(sorted(nodes_seen))
    dense = nodes == tuple(range(len(nodes)))
    node_slot = {node: slot for slot, node in enumerate(nodes)}

    groups: List[Tuple[int, ...]] = []
    group_ids: Dict[Tuple[int, ...], int] = {}

    def intern_group(ports: Tuple[int, ...]) -> int:
        ports = tuple(ports)
        gid = group_ids.get(ports)
        if gid is None:
            gid = len(groups)
            group_ids[ports] = gid
            groups.append(ports)
        return gid

    num_slots = len(nodes)
    primary_rows = [[-1] * num_slots for _ in range(num_routers)]
    for (rid, node), ports in table.items():
        primary_rows[rid][node_slot[node]] = intern_group(ports)

    alt_rows: Optional[List[Optional[Tuple[int, ...]]]] = None
    if alt_table:
        alt_mut: List[Optional[List[int]]] = [None] * num_routers
        for (rid, node), ports in alt_table.items():
            if not ports:
                raise RoutingError(
                    f"empty alternate routing entry for {(rid, node)}"
                )
            row = alt_mut[rid]
            if row is None:
                row = [-1] * num_slots
                alt_mut[rid] = row
            row[node_slot[node]] = intern_group(ports)
        alt_rows = [
            None if row is None else tuple(row) for row in alt_mut
        ]

    detour_map: Dict[Tuple[int, int], Tuple[Tuple[int, str], ...]] = {}
    for (rid, node), options in (detours or {}).items():
        compiled = tuple(
            (intern_group(ports), flavor) for ports, flavor in options
        )
        if compiled:
            detour_map[(rid, node_slot[node])] = compiled

    return RouteProgram(
        name=name,
        num_routers=num_routers,
        nodes=nodes,
        node_slot=node_slot,
        dense=dense,
        groups=tuple(groups),
        primary=tuple(tuple(row) for row in primary_rows),
        alt=None if alt_rows is None else tuple(alt_rows),
        detours=detour_map,
        overlay=overlay,
    )


class RouterRouteView:
    """One router's window onto a shared program: mask overlay + lookups.

    The view holds the *only* mutable routing state of its router — the
    set of health-masked ports — plus bound references into the shared
    program rows, so the per-header hot path is two tuple indexes.  The
    owning :class:`~repro.router.routing.CompiledRouting` facade
    aggregates the ``reroutes``/``detours_taken`` counters across its
    views (the health summary reads them per network, not per router).
    """

    __slots__ = (
        "router_id",
        "masked_ports",
        "_owner",
        "_program",
        "_groups",
        "_primary",
        "_alt",
        "_dense",
        "_num_slots",
    )

    def __init__(self, owner, program: RouteProgram, router_id: int) -> None:
        self.router_id = router_id
        self.masked_ports: Set[int] = set()
        self._owner = owner
        self._program = program
        self._groups = program.groups
        in_range = 0 <= router_id < program.num_routers
        self._primary = program.primary[router_id] if in_range else None
        self._alt = (
            program.alt[router_id]
            if in_range and program.alt is not None
            else None
        )
        self._dense = program.dense
        self._num_slots = len(program.nodes)

    def _slot(self, dst_node: int) -> int:
        if self._dense:
            return dst_node if 0 <= dst_node < self._num_slots else -1
        return self._program.node_slot.get(dst_node, -1)

    def candidates(self, dst_node: int) -> Tuple[int, ...]:
        row = self._primary
        if row is not None:
            slot = self._slot(dst_node)
            if slot >= 0:
                gid = row[slot]
                if gid >= 0:
                    return self._groups[gid]
        raise RoutingError(
            f"router {self.router_id}: no route to node {dst_node}"
        )

    def route_adaptive(
        self, dst_node: int, flavor: Optional[str]
    ) -> Tuple[Tuple[int, ...], Optional[str]]:
        """Candidates with this router's mask overlay applied.

        Same contract and same decision order as the historic
        ``TableRouting.route_adaptive``: alternate table for ``"yx"``
        worms, fat-group shrink, ordered detour fallback, and finally
        the (masked) primary so a fully dead neighbourhood blocks
        rather than silently dropping the worm.
        """
        primary = None
        if flavor == FLAVOR_YX and self._alt is not None:
            slot = self._slot(dst_node)
            if slot >= 0:
                gid = self._alt[slot]
                if gid >= 0:
                    primary = self._groups[gid]
        if primary is None:
            primary = self.candidates(dst_node)
        masked = self.masked_ports
        if not masked:
            return primary, flavor
        healthy = tuple(p for p in primary if p not in masked)
        if healthy:
            if len(healthy) < len(primary):
                self._owner.reroutes += 1
            return healthy, flavor
        slot = self._slot(dst_node)
        for gid, detour_flavor in self._program.detours.get(
            (self.router_id, slot), ()
        ):
            ports = self._groups[gid]
            open_ports = tuple(p for p in ports if p not in masked)
            if open_ports:
                self._owner.detours_taken += 1
                return open_ports, detour_flavor
        # Every option is masked: keep requesting the primary group.
        # The worm blocks there until the port recovers or the
        # end-to-end layer times it out — losing it outright would
        # undercount deliverable traffic after a recovery.
        return primary, flavor
