"""Compiled route programs: per-topology routing as flat indexed data.

A :class:`RouteProgram` is the routing layer of one topology compiled
into immutable flat structures — built exactly once per topology by
:func:`compile_routes` and shared, read-only, by every router and every
:class:`~repro.network.network.Network` instantiated over it:

* destination nodes map to dense *slots* (``node_slot``; the common
  case of node ids ``0..H-1`` short-circuits the dict entirely);
* candidate port groups are deduplicated into one ``groups`` tuple
  (a 16-pod fat tree has 320 routers x 1024 destinations but only a
  few hundred distinct groups);
* the primary and alternate (Y-then-X) tables become per-router integer
  rows (``primary[rid][slot] -> group id``, ``-1`` = no route), which
  is the representation the ROADMAP's numpy array backend indexes
  directly;
* detour fallbacks stay sparse: ``detours[(rid, slot)]`` is an ordered
  tuple of ``(group id, flavor)`` pairs.

Mutable routing state — the health mask a failover campaign applies via
``mask_port``/``unmask_port`` and the reroute/detour counters — lives
*outside* the program, in per-router :class:`RouterRouteView` overlays
owned by a :class:`~repro.router.routing.CompiledRouting` facade.  A
facade is cheap to ``fork()`` (the program is shared by reference), so
cached topologies can serve many networks without ever leaking mask
state between runs.

The module-level compile counter exists for the construction-count
tests: building a topology compiles its program exactly once, and
nothing downstream (network assembly, forking, sweep repetition over a
cached topology) may compile again.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import RoutingError

#: detour flavours: which dimension-order table a detoured message uses
#: for the rest of its journey (None = the primary table)
FLAVOR_XY = "xy"
FLAVOR_YX = "yx"

#: total RouteProgram compilations in this process (see compile_count)
_COMPILE_COUNT = 0


def compile_count() -> int:
    """Process-wide number of :func:`compile_routes` invocations.

    Tests assert the *delta* of this counter around topology reuse: one
    compile per distinct topology, zero for additional networks, forks,
    or cache hits.
    """
    return _COMPILE_COUNT


class RouteProgram:
    """Immutable compiled routing tables for one topology."""

    __slots__ = (
        "name",
        "num_routers",
        "nodes",
        "node_slot",
        "dense",
        "groups",
        "primary",
        "alt",
        "detours",
    )

    def __init__(
        self,
        name: str,
        num_routers: int,
        nodes: Tuple[int, ...],
        node_slot: Dict[int, int],
        dense: bool,
        groups: Tuple[Tuple[int, ...], ...],
        primary: Tuple[Tuple[int, ...], ...],
        alt: Optional[Tuple[Optional[Tuple[int, ...]], ...]],
        detours: Dict[Tuple[int, int], Tuple[Tuple[int, str], ...]],
    ) -> None:
        self.name = name
        self.num_routers = num_routers
        self.nodes = nodes
        self.node_slot = node_slot
        self.dense = dense
        self.groups = groups
        self.primary = primary
        self.alt = alt
        self.detours = detours

    # -- queries (stateless; the mask lives in RouterRouteView) --------

    def slot_of(self, node: int) -> int:
        """Dense slot of a node id, or ``-1`` when unknown."""
        if self.dense:
            return node if 0 <= node < len(self.nodes) else -1
        return self.node_slot.get(node, -1)

    def candidates(self, router_id: int, dst_node: int) -> Tuple[int, ...]:
        """Primary candidate ports; raises :class:`RoutingError` if none."""
        gid = -1
        if 0 <= router_id < self.num_routers:
            slot = self.slot_of(dst_node)
            if slot >= 0:
                gid = self.primary[router_id][slot]
        if gid < 0:
            raise RoutingError(
                f"router {router_id}: no route to node {dst_node}"
            )
        return self.groups[gid]

    def alt_candidates(
        self, router_id: int, dst_node: int
    ) -> Optional[Tuple[int, ...]]:
        """Alternate-table (Y-then-X) ports, or None without an entry."""
        if self.alt is None or not 0 <= router_id < self.num_routers:
            return None
        row = self.alt[router_id]
        if row is None:
            return None
        slot = self.slot_of(dst_node)
        if slot < 0:
            return None
        gid = row[slot]
        return None if gid < 0 else self.groups[gid]

    def detour_options(
        self, router_id: int, dst_node: int
    ) -> Tuple[Tuple[Tuple[int, ...], str], ...]:
        """Ordered ``(ports, flavor)`` fallbacks for a masked primary."""
        slot = self.slot_of(dst_node)
        if slot < 0:
            return ()
        return tuple(
            (self.groups[gid], flavor)
            for gid, flavor in self.detours.get((router_id, slot), ())
        )

    def stats(self) -> Dict[str, object]:
        """Size/shape accounting (``mediaworm topo``, diagnostics)."""
        entries = sum(
            1 for row in self.primary for gid in row if gid >= 0
        )
        alt_entries = 0
        if self.alt is not None:
            alt_entries = sum(
                1
                for row in self.alt
                if row is not None
                for gid in row
                if gid >= 0
            )
        group_sizes = [len(g) for g in self.groups]
        return {
            "name": self.name,
            "routers": self.num_routers,
            "destinations": len(self.nodes),
            "dense_nodes": self.dense,
            "entries": entries,
            "alt_entries": alt_entries,
            "detour_entries": len(self.detours),
            "unique_groups": len(self.groups),
            "max_group_size": max(group_sizes, default=0),
            "table_ints": self.num_routers * len(self.nodes),
        }


def compile_routes(
    table: Mapping[Tuple[int, int], Tuple[int, ...]],
    alt_table: Optional[Mapping[Tuple[int, int], Tuple[int, ...]]] = None,
    detours: Optional[
        Mapping[Tuple[int, int], Tuple[Tuple[Tuple[int, ...], str], ...]]
    ] = None,
    *,
    name: str = "table",
    num_routers: Optional[int] = None,
) -> RouteProgram:
    """Compile dict routing tables into one :class:`RouteProgram`.

    The input is the generator-native form — ``(router_id, dst_node) ->
    ports`` mappings — and the output is the flat indexed program every
    router queries.  Candidate tuples are preserved exactly (same ports,
    same order), so a compiled topology is bit-identical to the historic
    dict-per-lookup behaviour.  Empty candidate groups are rejected
    here, the single validation point.
    """
    global _COMPILE_COUNT
    _COMPILE_COUNT += 1

    nodes_seen: Set[int] = set()
    max_router = -1
    for (rid, node), ports in table.items():
        if not ports:
            raise RoutingError(f"empty routing entry for {(rid, node)}")
        nodes_seen.add(node)
        if rid > max_router:
            max_router = rid
    for (rid, node), ports in (alt_table or {}).items():
        nodes_seen.add(node)
        if rid > max_router:
            max_router = rid
    if num_routers is None:
        num_routers = max_router + 1
    nodes = tuple(sorted(nodes_seen))
    dense = nodes == tuple(range(len(nodes)))
    node_slot = {node: slot for slot, node in enumerate(nodes)}

    groups: List[Tuple[int, ...]] = []
    group_ids: Dict[Tuple[int, ...], int] = {}

    def intern_group(ports: Tuple[int, ...]) -> int:
        ports = tuple(ports)
        gid = group_ids.get(ports)
        if gid is None:
            gid = len(groups)
            group_ids[ports] = gid
            groups.append(ports)
        return gid

    num_slots = len(nodes)
    primary_rows = [[-1] * num_slots for _ in range(num_routers)]
    for (rid, node), ports in table.items():
        primary_rows[rid][node_slot[node]] = intern_group(ports)

    alt_rows: Optional[List[Optional[Tuple[int, ...]]]] = None
    if alt_table:
        alt_mut: List[Optional[List[int]]] = [None] * num_routers
        for (rid, node), ports in alt_table.items():
            if not ports:
                raise RoutingError(
                    f"empty alternate routing entry for {(rid, node)}"
                )
            row = alt_mut[rid]
            if row is None:
                row = [-1] * num_slots
                alt_mut[rid] = row
            row[node_slot[node]] = intern_group(ports)
        alt_rows = [
            None if row is None else tuple(row) for row in alt_mut
        ]

    detour_map: Dict[Tuple[int, int], Tuple[Tuple[int, str], ...]] = {}
    for (rid, node), options in (detours or {}).items():
        compiled = tuple(
            (intern_group(ports), flavor) for ports, flavor in options
        )
        if compiled:
            detour_map[(rid, node_slot[node])] = compiled

    return RouteProgram(
        name=name,
        num_routers=num_routers,
        nodes=nodes,
        node_slot=node_slot,
        dense=dense,
        groups=tuple(groups),
        primary=tuple(tuple(row) for row in primary_rows),
        alt=None if alt_rows is None else tuple(alt_rows),
        detours=detour_map,
    )


class RouterRouteView:
    """One router's window onto a shared program: mask overlay + lookups.

    The view holds the *only* mutable routing state of its router — the
    set of health-masked ports — plus bound references into the shared
    program rows, so the per-header hot path is two tuple indexes.  The
    owning :class:`~repro.router.routing.CompiledRouting` facade
    aggregates the ``reroutes``/``detours_taken`` counters across its
    views (the health summary reads them per network, not per router).
    """

    __slots__ = (
        "router_id",
        "masked_ports",
        "_owner",
        "_program",
        "_groups",
        "_primary",
        "_alt",
        "_dense",
        "_num_slots",
    )

    def __init__(self, owner, program: RouteProgram, router_id: int) -> None:
        self.router_id = router_id
        self.masked_ports: Set[int] = set()
        self._owner = owner
        self._program = program
        self._groups = program.groups
        in_range = 0 <= router_id < program.num_routers
        self._primary = program.primary[router_id] if in_range else None
        self._alt = (
            program.alt[router_id]
            if in_range and program.alt is not None
            else None
        )
        self._dense = program.dense
        self._num_slots = len(program.nodes)

    def _slot(self, dst_node: int) -> int:
        if self._dense:
            return dst_node if 0 <= dst_node < self._num_slots else -1
        return self._program.node_slot.get(dst_node, -1)

    def candidates(self, dst_node: int) -> Tuple[int, ...]:
        row = self._primary
        if row is not None:
            slot = self._slot(dst_node)
            if slot >= 0:
                gid = row[slot]
                if gid >= 0:
                    return self._groups[gid]
        raise RoutingError(
            f"router {self.router_id}: no route to node {dst_node}"
        )

    def route_adaptive(
        self, dst_node: int, flavor: Optional[str]
    ) -> Tuple[Tuple[int, ...], Optional[str]]:
        """Candidates with this router's mask overlay applied.

        Same contract and same decision order as the historic
        ``TableRouting.route_adaptive``: alternate table for ``"yx"``
        worms, fat-group shrink, ordered detour fallback, and finally
        the (masked) primary so a fully dead neighbourhood blocks
        rather than silently dropping the worm.
        """
        primary = None
        if flavor == FLAVOR_YX and self._alt is not None:
            slot = self._slot(dst_node)
            if slot >= 0:
                gid = self._alt[slot]
                if gid >= 0:
                    primary = self._groups[gid]
        if primary is None:
            primary = self.candidates(dst_node)
        masked = self.masked_ports
        if not masked:
            return primary, flavor
        healthy = tuple(p for p in primary if p not in masked)
        if healthy:
            if len(healthy) < len(primary):
                self._owner.reroutes += 1
            return healthy, flavor
        slot = self._slot(dst_node)
        for gid, detour_flavor in self._program.detours.get(
            (self.router_id, slot), ()
        ):
            ports = self._groups[gid]
            open_ports = tuple(p for p in ports if p not in masked)
            if open_ports:
                self._owner.detours_taken += 1
                return open_ports, detour_flavor
        # Every option is masked: keep requesting the primary group.
        # The worm blocks there until the port recovers or the
        # end-to-end layer times it out — losing it outright would
        # undercount deliverable traffic after a recovery.
        return primary, flavor
