"""Messages, flit indexing, and frame packetisation.

A wormhole **message** is a sequence of flits: one header flit carrying
routing information and the message's bandwidth requirement (its Vtick),
followed by body flits and a tail flit.  Because all flits of a message
are identical except for their position, the simulator never allocates
per-flit objects: a flit in flight is the pair ``(message, flit_index)``
and buffered flits are counted, with only their scheduler stamps stored.

Frames (the unit the video workload cares about) are *packetised* into
fixed-size messages per section 4.2.1: a frame of ``F`` flits becomes
``ceil(F / message_size)`` messages, all of ``message_size`` flits except
possibly the last.  The network services each message independently.
"""

from __future__ import annotations

import itertools
import math
from typing import List, Optional

from repro.errors import ConfigurationError

_message_ids = itertools.count()


class TrafficClass:
    """Traffic classes from the ATM taxonomy the paper adopts."""

    VBR = "vbr"
    CBR = "cbr"
    BEST_EFFORT = "best_effort"

    REAL_TIME = (VBR, CBR)
    ALL = (VBR, CBR, BEST_EFFORT)

    @staticmethod
    def is_real_time(traffic_class: str) -> bool:
        """True for the classes that carry a bandwidth reservation."""
        return traffic_class in TrafficClass.REAL_TIME


class Message:
    """One wormhole message (or, for PCS, one data burst on a circuit).

    Attributes double as the header-flit contents: destination
    (``dst_node`` plus the stream's pre-chosen destination VC), the
    Vtick bandwidth requirement, and the traffic class that selects the
    VC partition.  Bookkeeping fields (stream/frame identity, injection
    and delivery times) exist for the metrics layer.
    """

    __slots__ = (
        "msg_id",
        "src_node",
        "dst_node",
        "size",
        "last_flit",
        "vtick",
        "traffic_class",
        "stream_id",
        "frame_id",
        "frame_messages",
        "src_vc",
        "dst_vc",
        "inject_time",
        "deliver_time",
        "killed",
        "corrupted",
        "detoured",
    )

    def __init__(
        self,
        src_node: int,
        dst_node: int,
        size: int,
        vtick: float,
        traffic_class: str,
        stream_id: int = -1,
        frame_id: int = -1,
        frame_messages: int = 1,
        src_vc: int = 0,
        dst_vc: Optional[int] = None,
    ) -> None:
        if size < 1:
            raise ConfigurationError(f"message size must be >= 1 flit, got {size}")
        if vtick <= 0:
            raise ConfigurationError(f"Vtick must be positive, got {vtick}")
        if traffic_class not in TrafficClass.ALL:
            raise ConfigurationError(f"unknown traffic class {traffic_class!r}")
        self.msg_id = next(_message_ids)
        self.src_node = src_node
        self.dst_node = dst_node
        self.size = size
        #: index of the tail flit, precomputed so the per-flit hot paths
        #: compare against an attribute instead of calling is_tail()
        self.last_flit = size - 1
        self.vtick = vtick
        self.traffic_class = traffic_class
        self.stream_id = stream_id
        self.frame_id = frame_id
        self.frame_messages = frame_messages
        self.src_vc = src_vc
        self.dst_vc = dst_vc
        self.inject_time = -1
        self.deliver_time = -1
        #: set by preemption: the message's remaining flits are being
        #: purged and it will be retransmitted as a fresh message
        self.killed = False
        #: set by fault injection when a flit was corrupted in transit;
        #: a sink with the end-to-end checksum enabled rejects the
        #: message at its tail flit
        self.corrupted = False
        #: adaptive-routing detour flavour (None, "xy", or "yx"): set
        #: when a header escapes a fully masked fat group, sticky for
        #: the rest of the journey, and reset by clone() so a
        #: retransmission re-routes from scratch
        self.detoured = None

    @property
    def is_real_time(self) -> bool:
        """True for VBR/CBR messages."""
        return self.traffic_class in TrafficClass.REAL_TIME

    def clone(self) -> "Message":
        """A fresh copy for retransmission (preemption or recovery).

        The clone keeps the routing and stream/frame identity so the
        metrics layer attributes its delivery to the same frame, but
        gets a new message id and clean injection/delivery state.
        """
        return Message(
            src_node=self.src_node,
            dst_node=self.dst_node,
            size=self.size,
            vtick=self.vtick,
            traffic_class=self.traffic_class,
            stream_id=self.stream_id,
            frame_id=self.frame_id,
            frame_messages=self.frame_messages,
            src_vc=self.src_vc,
            dst_vc=self.dst_vc,
        )

    def is_tail(self, flit_index: int) -> bool:
        """True if ``flit_index`` names this message's tail flit."""
        return flit_index == self.last_flit

    def is_header(self, flit_index: int) -> bool:
        """True if ``flit_index`` names this message's header flit."""
        return flit_index == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(id={self.msg_id}, {self.src_node}->{self.dst_node}, "
            f"size={self.size}, class={self.traffic_class}, "
            f"stream={self.stream_id}, frame={self.frame_id})"
        )


def messages_for_frame(
    frame_flits: int,
    message_size: int,
    src_node: int,
    dst_node: int,
    vtick: float,
    traffic_class: str,
    stream_id: int,
    frame_id: int,
    src_vc: int,
    dst_vc: Optional[int],
    header_flits: int = 0,
) -> List[Message]:
    """Packetise one frame into messages (section 4.2.1).

    All messages are ``message_size`` flits except possibly the last,
    which carries the remainder.  Every message is tagged with its frame
    so the delivery tracker can detect frame completion.

    ``header_flits`` models the per-message header overhead the paper's
    Fig. 7 discusses ("1 header flit in a message size of 20 flits
    consumes 5% of the stream bandwidth"): each message carries
    ``message_size - header_flits`` flits of frame payload, and the
    header flits ride on the wire on top of the frame's payload.
    """
    if frame_flits < 1:
        raise ConfigurationError(f"frame must have >= 1 flit, got {frame_flits}")
    if message_size < 1:
        raise ConfigurationError(
            f"message size must be >= 1 flit, got {message_size}"
        )
    if not 0 <= header_flits < message_size:
        raise ConfigurationError(
            f"header flits must be in [0, message_size), got {header_flits}"
        )
    payload_per_message = message_size - header_flits
    count = math.ceil(frame_flits / payload_per_message)
    messages = []
    remaining = frame_flits
    for _ in range(count):
        payload = min(payload_per_message, remaining)
        remaining -= payload
        size = payload + header_flits
        messages.append(
            Message(
                src_node=src_node,
                dst_node=dst_node,
                size=size,
                vtick=vtick,
                traffic_class=traffic_class,
                stream_id=stream_id,
                frame_id=frame_id,
                frame_messages=count,
                src_vc=src_vc,
                dst_vc=dst_vc,
            )
        )
    return messages
