#!/usr/bin/env python
"""MediaWorm (wormhole) against a pipelined circuit switching router.

The paper's section 5.6 comparison: a connection-oriented PCS router
reserves one VC per stream and delivers excellent jitter — but drops
connection attempts whenever a drawn VC is busy, and needs one VC per
stream (24 VCs for a 100 Mbps link of 4 Mbps streams).  The wormhole
MediaWorm router accepts *every* stream on far fewer resources and
stays jitter-free well into realistic operating loads.

Prints the Fig. 8 jitter comparison side by side with the Table 3
connection accounting.

Run with:  python examples/pcs_vs_mediaworm.py
"""

from repro import (
    PCSExperiment,
    SingleSwitchExperiment,
    simulate_pcs,
    simulate_single_switch,
)
from repro.experiments.report import format_table

LOADS = (0.4, 0.6, 0.7, 0.8, 0.9)
RUN = dict(scale=25.0, warmup_frames=2, measure_frames=6, seed=1)


def main() -> None:
    rows = []
    for load in LOADS:
        wormhole = simulate_single_switch(
            SingleSwitchExperiment(
                load=load, mix=(100, 0), bandwidth_mbps=100.0, vcs_per_pc=24,
                **RUN,
            )
        )
        pcs = simulate_pcs(PCSExperiment(load=load, **RUN))
        stats = pcs.connections
        rows.append(
            [
                f"{load:g}",
                wormhole.metrics.d,
                wormhole.metrics.sigma_d,
                pcs.metrics.d,
                pcs.metrics.sigma_d,
                stats.attempts,
                stats.established,
                stats.dropped,
            ]
        )
        print(f"  done: load={load:g} "
              f"(PCS dropped {stats.dropped}/{stats.attempts} attempts)")

    print()
    print(
        format_table(
            [
                "load",
                "WH d",
                "WH sigma",
                "PCS d",
                "PCS sigma",
                "PCS attempts",
                "established",
                "dropped",
            ],
            rows,
        )
    )
    print(
        "\nreading: both deliver ~33 ms; PCS keeps sigma low by refusing "
        "work — every stream MediaWorm carries was accepted, while PCS "
        "turns away a growing share of connection attempts as load rises."
    )


if __name__ == "__main__":
    main()
