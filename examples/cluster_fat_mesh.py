#!/usr/bin/env python
"""A 16-node cluster on a 2x2 fat mesh of MediaWorm switches.

Reproduces the deployment of section 5.7: four 8-port switches, four
hosts each, two physical links between every adjacent pair ("fat"
links), deterministic dimension-order routing with load-based fat-link
selection.  Sweeps the real-time share of the traffic and reports both
the video QoS and the best-effort latency — the trade-off of Fig. 9.

Also demonstrates scaling beyond the paper: pass ``--mesh 3`` for a
3x3 fat mesh (36 hosts), the scalability direction the paper lists as
future work.

Run with:  python examples/cluster_fat_mesh.py [--mesh 2] [--load 0.8]
"""

import argparse

from repro import FatMeshExperiment, simulate_fat_mesh
from repro.experiments.report import format_table

MIXES = ((40, 60), (60, 40), (80, 20))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mesh", type=int, default=2, help="mesh side length")
    parser.add_argument("--load", type=float, default=0.8)
    args = parser.parse_args()

    rows = []
    for mix in MIXES:
        experiment = FatMeshExperiment(
            rows=args.mesh,
            cols=args.mesh,
            load=args.load,
            mix=mix,
            scale=32.0,
            warmup_frames=2,
            measure_frames=5,
            seed=1,
        )
        result = simulate_fat_mesh(experiment)
        metrics = result.metrics
        rows.append(
            [
                f"{mix[0]}:{mix[1]}",
                metrics.d,
                metrics.sigma_d,
                metrics.be_latency_us,
                metrics.frames_delivered,
            ]
        )
        print(f"  done: mix={mix[0]}:{mix[1]} "
              f"({len(result.workload.streams)} streams)")

    print(f"\n{args.mesh}x{args.mesh} fat mesh at load {args.load:g}:")
    print(
        format_table(
            ["mix", "d (ms)", "sigma_d (ms)", "BE latency (us)", "frames"],
            rows,
        )
    )
    print(
        "\nreading: video stays near d=33 ms across mixes; the cost of a "
        "larger real-time share is carried by best-effort latency."
    )


if __name__ == "__main__":
    main()
