#!/usr/bin/env python
"""Scheduler shootout: Virtual Clock vs FIFO vs round-robin.

Sweeps the input load on the 8-port MediaWorm switch under the paper's
80:20 VBR/best-effort mix and prints a side-by-side comparison of the
three multiplexer scheduling policies.  This is the experiment behind
the paper's Fig. 3, extended with the round-robin baseline the
conclusion mentions as the other "rate agnostic" scheduler.

Expected shape: all three are jitter-free at low load; near saturation
the rate-agnostic schedulers drift (d > 33 ms, sigma_d grows) while
Virtual Clock holds the frame rate, at the price of best-effort latency.

Run with:  python examples/scheduler_shootout.py
"""

from repro import SchedulingPolicy, SingleSwitchExperiment, simulate_single_switch
from repro.experiments.report import format_table

LOADS = (0.6, 0.8, 0.9, 0.96)
POLICIES = (
    SchedulingPolicy.VIRTUAL_CLOCK,
    SchedulingPolicy.FIFO,
    SchedulingPolicy.ROUND_ROBIN,
)


def main() -> None:
    rows = []
    for load in LOADS:
        for policy in POLICIES:
            experiment = SingleSwitchExperiment(
                load=load,
                mix=(80, 20),
                scheduler=policy,
                scale=25.0,
                warmup_frames=2,
                measure_frames=6,
                seed=1,
            )
            metrics = simulate_single_switch(experiment).metrics
            rows.append(
                [
                    f"{load:g}",
                    policy,
                    metrics.d,
                    metrics.sigma_d,
                    metrics.be_latency_us,
                    "yes" if metrics.is_jitter_free() else "no",
                ]
            )
            print(f"  done: load={load:g} policy={policy}")
    print()
    print(
        format_table(
            ["load", "scheduler", "d (ms)", "sigma_d (ms)",
             "BE latency (us)", "jitter-free"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
