#!/usr/bin/env python
"""A video-on-demand cluster with admission control.

The paper's conclusion sketches the deployment story: a cluster switch
carries as many 4 Mbps MPEG-2 streams as admission control allows
(the jitter-free region ends around 70-80% of link bandwidth), and
everything else rides best-effort.

This example plays that story end to end:

1. clients keep requesting streams toward a pool of server nodes;
2. an :class:`AdmissionController` (threshold 0.75 per channel) accepts
   or rejects each request based on the source and destination links;
3. the accepted streams — and only those — are offered to a MediaWorm
   switch, and the delivered QoS is measured.

The punchline: the admitted load lands at the controller's threshold
and the measured delivery is jitter-free, i.e. the admission rule
actually protects the QoS the router can honour.

Run with:  python examples/video_server_admission.py
"""

from repro import (
    AdmissionController,
    MetricsCollector,
    Network,
    RngStreams,
    RouterConfig,
    single_switch,
)
from repro.core.virtual_clock import vtick_for_fraction
from repro.sim.units import LinkSpec, TimeBase, WorkloadScale
from repro.traffic.mpeg import vbr_frame_model
from repro.traffic.streams import MediaStream, StreamConfig

NUM_PORTS = 8
SCALE = 25.0
THRESHOLD = 0.75
REQUESTS = 700  # client requests to offer (more than the cluster can take)


def main() -> None:
    link = LinkSpec(400.0, 32)
    scale = WorkloadScale(SCALE)
    interval = max(1, round(scale.scale_cycles(link.ms_to_cycles(33.0))))
    frame_mean = scale.scale_flits(link.bytes_to_flits(16666))
    frame_std = scale.scale_flits(link.bytes_to_flits(3333))
    stream_fraction = frame_mean / interval  # ~1% of a link per stream

    controller = AdmissionController(threshold=THRESHOLD)
    collector = MetricsCollector(TimeBase(link, scale), warmup=2 * interval)
    network = Network(
        single_switch(NUM_PORTS),
        RouterConfig(num_ports=NUM_PORTS, vcs_per_pc=16, rt_vc_count=16),
        on_message=collector.on_message,
    )

    rngs = RngStreams(7)
    placement = rngs.stream("placement")
    accepted = rejected = 0
    for request in range(REQUESTS):
        src = placement.randrange(NUM_PORTS)
        dst = (src + 1 + placement.randrange(NUM_PORTS - 1)) % NUM_PORTS
        path = [("host-in", src, 0), ("host-out", dst, 0)]
        if not controller.admit(request, stream_fraction, path):
            rejected += 1
            continue
        accepted += 1
        stream = MediaStream(
            StreamConfig(
                src_node=src,
                dst_node=dst,
                src_vc=placement.randrange(16),
                dst_vc=placement.randrange(16),
                vtick=vtick_for_fraction(stream_fraction),
                message_size=20,
                frame_interval=interval,
                frame_model=vbr_frame_model(frame_mean, frame_std),
                phase=placement.randrange(interval),
            ),
            rngs.stream(f"stream{request}"),
        )
        stream.start(network)

    utilization = controller.utilization()
    busiest = max(utilization.values())
    print(f"requests offered   : {REQUESTS}")
    print(f"streams admitted   : {accepted}")
    print(f"streams rejected   : {rejected}")
    print(f"busiest channel    : {busiest:.3f} of link bandwidth "
          f"(threshold {THRESHOLD})")

    print("\nsimulating the admitted streams...")
    network.run(8 * interval)
    metrics = collector.snapshot()
    print(f"frames delivered   : {metrics.frames_delivered:,}")
    print(f"delivery interval d: {metrics.d:.3f} ms (nominal 33 ms)")
    print(f"jitter sigma_d     : {metrics.sigma_d:.3f} ms")
    verdict = "jitter-free" if metrics.is_jitter_free() else "jittery"
    print(f"\nverdict: admission control at {THRESHOLD:.0%} keeps delivery "
          f"{verdict}")


if __name__ == "__main__":
    main()
