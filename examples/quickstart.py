#!/usr/bin/env python
"""Quickstart: one MediaWorm router carrying video and best-effort traffic.

Builds the paper's 8-port, 16-VC MediaWorm switch, offers an 80:20 mix
of MPEG-2 VBR streams and best-effort messages at 70% link load, and
prints the three numbers the paper's evaluation revolves around:

* d        — mean frame delivery interval (33 ms = on-time playback)
* sigma_d  — its standard deviation (0 = jitter-free)
* BE lat.  — average best-effort message latency

Run with:  python examples/quickstart.py
"""

from repro import SingleSwitchExperiment, simulate_single_switch


def main() -> None:
    experiment = SingleSwitchExperiment(
        load=0.7,            # fraction of each 400 Mbps input link
        mix=(80, 20),        # real-time : best-effort
        num_ports=8,
        vcs_per_pc=16,
        scale=20.0,          # workload shrink factor (1.0 = paper-faithful)
        warmup_frames=3,
        measure_frames=8,
        seed=1,
    )
    print(f"simulating {experiment.total_cycles:,} router cycles "
          f"({experiment.workload_config().streams_per_node()} video streams "
          f"per node)...")
    result = simulate_single_switch(experiment)

    metrics = result.metrics
    print()
    print(f"offered load            : {result.achieved_load:.3f}")
    print(f"frames delivered        : {metrics.frames_delivered:,}")
    print(f"mean delivery interval d: {metrics.d:8.3f} ms  (nominal 33 ms)")
    print(f"jitter sigma_d          : {metrics.sigma_d:8.3f} ms")
    print(f"best-effort latency     : {metrics.be_latency_us:8.1f} us "
          f"({metrics.be_message_count:,} messages)")
    print()
    verdict = "jitter-free" if metrics.is_jitter_free() else "jittery"
    print(f"verdict: VBR delivery is {verdict} at load "
          f"{experiment.load:g} with Virtual Clock scheduling")


if __name__ == "__main__":
    main()
