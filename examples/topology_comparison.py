#!/usr/bin/env python
"""Topology shoot-out: single switch vs fat mesh vs fat tree.

Section 3.4 of the paper motivates "fat" topologies for clusters:
multiple endpoints per switch put more than one endpoint's worth of
load on inter-switch links, so those links are doubled (fat mesh) or
aggregated through spine switches (fat tree).  This example offers the
same per-host mixed load to three cluster fabrics built from MediaWorm
switches and compares the delivered QoS:

* a single 8-port switch (the paper's main testbed, no inter-switch
  links at all);
* the paper's 2x2 fat mesh (16 hosts, two links per neighbour pair);
* a 4-leaf / 2-spine fat tree (8 hosts, adaptive up-link choice).

Run with:  python examples/topology_comparison.py [--load 0.8]
"""

import argparse

from repro import (
    FatMeshExperiment,
    FatTreeExperiment,
    SingleSwitchExperiment,
    simulate_fat_mesh,
    simulate_fat_tree,
    simulate_single_switch,
)
from repro.experiments.report import format_table

RUN = dict(mix=(60, 40), scale=32.0, warmup_frames=2, measure_frames=5, seed=1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--load", type=float, default=0.8)
    args = parser.parse_args()

    rows = []
    fabrics = (
        (
            "single switch (8 hosts)",
            lambda: simulate_single_switch(
                SingleSwitchExperiment(load=args.load, **RUN)
            ),
        ),
        (
            "2x2 fat mesh (16 hosts)",
            lambda: simulate_fat_mesh(
                FatMeshExperiment(load=args.load, **RUN)
            ),
        ),
        (
            "4-leaf fat tree (8 hosts)",
            lambda: simulate_fat_tree(
                FatTreeExperiment(
                    load=args.load,
                    leaves=4,
                    spines=2,
                    hosts_per_leaf=2,
                    fat_width=1,
                    **RUN,
                )
            ),
        ),
    )
    for name, run in fabrics:
        result = run()
        metrics = result.metrics
        rows.append(
            [
                name,
                metrics.d,
                metrics.sigma_d,
                metrics.be_latency_us,
                len(result.workload.streams),
            ]
        )
        print(f"  done: {name}")

    print(f"\nmixed traffic 60:40 at load {args.load:g}:")
    print(
        format_table(
            ["fabric", "d (ms)", "sigma_d (ms)", "BE latency (us)",
             "streams"],
            rows,
        )
    )
    print(
        "\nreading: with balanced fat links every fabric keeps video at "
        "d = 33 ms; multi-switch fabrics pay a little extra best-effort "
        "latency for the inter-switch hops."
    )


if __name__ == "__main__":
    main()
