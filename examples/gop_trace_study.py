#!/usr/bin/env python
"""Trace-driven video: GOP-structured MPEG-2 vs the statistical model.

The paper models frame sizes with a normal distribution; real MPEG-2
video is burstier — every group of pictures opens with a large I frame
followed by medium P and small B frames (the trace-driven workloads the
related multimedia-router studies use).  This example runs both through
the same MediaWorm switch at the same mean rate and compares:

* the delivery-interval statistics (d, sigma_d), and
* a delivery-interval histogram.

The punchline is a *flash crowd* lesson: when every client starts its
stream within one frame period, their GOPs stay in lockstep and every
15th interval carries all the I frames at once — 2.5x the provisioned
real-time load, and no scheduler can deliver that on time.  Staggering
the GOP phase across streams (what a real VOD server does naturally)
restores the tight 33 ms spike at the *same* mean load.

Run with:  python examples/gop_trace_study.py
"""

from repro import (
    MetricsCollector,
    Network,
    RngStreams,
    RouterConfig,
    single_switch,
)
from repro.core.virtual_clock import vtick_for_fraction
from repro.metrics.histogram import interval_histogram
from repro.sim.units import LinkSpec, TimeBase, WorkloadScale
from repro.traffic.mpeg import vbr_frame_model
from repro.traffic.streams import MediaStream, StreamConfig
from repro.traffic.trace import TraceFrameModel, generate_mpeg2_gop_trace

NUM_PORTS = 8
SCALE = 25.0
LOAD = 0.7
EPOCHS = 8


def run(model_factory, label: str) -> None:
    link = LinkSpec(400.0, 32)
    scale = WorkloadScale(SCALE)
    interval = max(1, round(scale.scale_cycles(link.ms_to_cycles(33.0))))
    frame_mean = scale.scale_flits(link.bytes_to_flits(16666))
    stream_fraction = frame_mean / interval
    streams_per_node = round(LOAD / stream_fraction)

    collector = MetricsCollector(TimeBase(link, scale), warmup=2 * interval)
    network = Network(
        single_switch(NUM_PORTS),
        RouterConfig(num_ports=NUM_PORTS, vcs_per_pc=16, rt_vc_count=16),
        on_message=collector.on_message,
    )
    rngs = RngStreams(11)
    placement = rngs.stream("placement")
    for node in range(NUM_PORTS):
        others = [n for n in range(NUM_PORTS) if n != node]
        for index in range(streams_per_node):
            stream_rng = rngs.stream(f"{label}/{node}/{index}")
            MediaStream(
                StreamConfig(
                    src_node=node,
                    dst_node=others[index % len(others)],
                    src_vc=placement.randrange(16),
                    dst_vc=placement.randrange(16),
                    vtick=vtick_for_fraction(stream_fraction),
                    message_size=20,
                    frame_interval=interval,
                    frame_model=model_factory(frame_mean, stream_rng),
                    phase=placement.randrange(interval),
                ),
                stream_rng,
            ).start(network)

    network.run((2 + EPOCHS) * interval)
    metrics = collector.snapshot()
    timebase = TimeBase(link, scale)
    intervals_ms = [
        timebase.report_ms(value) for value in collector.delivery.intervals
    ]
    print(f"--- {label} ---")
    print(f"d = {metrics.d:.3f} ms   sigma_d = {metrics.sigma_d:.3f} ms   "
          f"frames = {metrics.frames_delivered:,}")
    histogram = interval_histogram(intervals_ms, span_ms=5.0, bins=10)
    print(histogram.render(width=44))
    near = histogram.fraction_in(32.0, 34.0)
    print(f"fraction within 33 +/- 1 ms: {near:.1%}\n")


def normal_model(mean_flits, rng):
    return vbr_frame_model(mean_flits, mean_flits * 0.2)


def gop_model_synchronized(mean_flits, rng):
    trace = generate_mpeg2_gop_trace(
        frames=150, mean_flits=mean_flits, rng=rng, noise=0.1
    )
    return TraceFrameModel(trace)


def gop_model_staggered(mean_flits, rng):
    trace = generate_mpeg2_gop_trace(
        frames=150, mean_flits=mean_flits, rng=rng, noise=0.1
    )
    # start each stream at a random point of its GOP so I frames from
    # different streams do not land in the same frame interval
    offset = rng.randrange(len(trace))
    return TraceFrameModel(trace[offset:] + trace[:offset])


def main() -> None:
    run(normal_model, "normal frame-size model (the paper's workload)")
    run(gop_model_synchronized, "GOP trace, all streams in LOCKSTEP")
    run(gop_model_staggered, "GOP trace, STAGGERED GOP phases")


if __name__ == "__main__":
    main()
