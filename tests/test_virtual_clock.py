"""The Virtual Clock algorithm (paper section 3.3 / Zhang 1991)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.virtual_clock import (
    BEST_EFFORT_VTICK,
    VirtualClockState,
    vtick_for_fraction,
    vtick_for_rate,
)
from repro.errors import ConfigurationError


class TestVtickHelpers:
    def test_vtick_for_rate_is_reciprocal(self):
        # paper example: 120K flits/sec needs Vtick = 1/120K
        assert vtick_for_rate(120_000.0) == pytest.approx(1 / 120_000.0)

    def test_vtick_for_fraction(self):
        # a 1% stream is entitled to one flit every 100 cycles
        assert vtick_for_fraction(0.01) == pytest.approx(100.0)

    def test_full_link_fraction(self):
        assert vtick_for_fraction(1.0) == pytest.approx(1.0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            vtick_for_rate(0.0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            vtick_for_fraction(0.0)
        with pytest.raises(ConfigurationError):
            vtick_for_fraction(1.5)

    def test_best_effort_vtick_dwarfs_real_time(self):
        # any plausible run length stays far below the BE stamp offset
        assert BEST_EFFORT_VTICK > 1e9


class TestVirtualClockState:
    def test_open_initialises_auxvc_to_clock(self):
        state = VirtualClockState()
        state.open(clock=500, vtick=10.0)
        assert state.auxvc == 500.0
        assert state.is_open

    def test_first_stamp_is_clock_plus_vtick(self):
        state = VirtualClockState()
        state.open(clock=100, vtick=25.0)
        assert state.stamp_arrival(100) == pytest.approx(125.0)

    def test_burst_is_paced_in_virtual_time(self):
        # All arrivals at the same clock: stamps advance by Vtick each,
        # which is the rate regulation MediaWorm relies on.
        state = VirtualClockState()
        state.open(clock=0, vtick=100.0)
        stamps = [state.stamp_arrival(0) for _ in range(5)]
        assert stamps == [pytest.approx(100.0 * (i + 1)) for i in range(5)]

    def test_idle_connection_resyncs_to_clock(self):
        # max(Clock, auxVC): after an idle period the stamp follows the
        # wall clock instead of granting banked credit.
        state = VirtualClockState()
        state.open(clock=0, vtick=10.0)
        state.stamp_arrival(0)  # auxvc = 10
        assert state.stamp_arrival(1000) == pytest.approx(1010.0)

    def test_backlogged_connection_keeps_virtual_lead(self):
        state = VirtualClockState()
        state.open(clock=0, vtick=10.0)
        for _ in range(10):
            last = state.stamp_arrival(0)
        # arriving at clock 50 < auxvc 100: stamp keeps growing from 100
        assert state.stamp_arrival(50) == pytest.approx(last + 10.0)

    def test_close_resets(self):
        state = VirtualClockState()
        state.open(clock=10, vtick=5.0)
        state.stamp_arrival(10)
        state.close()
        assert not state.is_open
        assert state.vtick == BEST_EFFORT_VTICK

    def test_open_rejects_bad_vtick(self):
        state = VirtualClockState()
        with pytest.raises(ConfigurationError):
            state.open(clock=0, vtick=0.0)

    def test_smaller_vtick_means_earlier_stamps(self):
        # "A smaller Vtick value means higher bandwidth requirement."
        fast, slow = VirtualClockState(), VirtualClockState()
        fast.open(0, vtick=10.0)
        slow.open(0, vtick=100.0)
        assert fast.stamp_arrival(0) < slow.stamp_arrival(0)

    @given(
        st.lists(st.integers(min_value=0, max_value=10**6), min_size=1),
        st.floats(min_value=0.5, max_value=1e4),
    )
    def test_stamps_strictly_increase_for_nondecreasing_clock(
        self, clocks, vtick
    ):
        state = VirtualClockState()
        clocks = sorted(clocks)
        state.open(clocks[0], vtick)
        previous = None
        for clock in clocks:
            stamp = state.stamp_arrival(clock)
            if previous is not None:
                assert stamp > previous
            previous = stamp

    @given(
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0.5, max_value=1e4),
    )
    def test_stamp_never_precedes_clock(self, clock, vtick):
        state = VirtualClockState()
        state.open(0, vtick)
        assert state.stamp_arrival(clock) >= clock
