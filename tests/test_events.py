"""EventHeap ordering and firing semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.events import EventHeap


class TestEventHeap:
    def test_empty_heap(self):
        heap = EventHeap()
        assert len(heap) == 0
        assert not heap
        assert heap.next_time() is None
        assert heap.fire_due(100) == 0

    def test_fires_due_events(self):
        heap = EventHeap()
        fired = []
        heap.schedule(5, lambda: fired.append("a"))
        heap.schedule(10, lambda: fired.append("b"))
        assert heap.fire_due(5) == 1
        assert fired == ["a"]
        assert len(heap) == 1

    def test_fires_everything_at_or_before_now(self):
        heap = EventHeap()
        fired = []
        for t in (3, 1, 2):
            heap.schedule(t, lambda t=t: fired.append(t))
        assert heap.fire_due(2) == 2
        assert fired == [1, 2]

    def test_same_time_fires_in_schedule_order(self):
        heap = EventHeap()
        fired = []
        for i in range(5):
            heap.schedule(7, lambda i=i: fired.append(i))
        heap.fire_due(7)
        assert fired == [0, 1, 2, 3, 4]

    def test_next_time_is_minimum(self):
        heap = EventHeap()
        heap.schedule(9, lambda: None)
        heap.schedule(3, lambda: None)
        heap.schedule(6, lambda: None)
        assert heap.next_time() == 3

    def test_callback_may_schedule_at_same_time(self):
        heap = EventHeap()
        fired = []

        def chain():
            fired.append("first")
            heap.schedule(4, lambda: fired.append("second"))

        heap.schedule(4, chain)
        assert heap.fire_due(4) == 2
        assert fired == ["first", "second"]

    def test_callback_may_schedule_future_events(self):
        heap = EventHeap()
        fired = []
        heap.schedule(1, lambda: heap.schedule(10, lambda: fired.append("x")))
        heap.fire_due(1)
        assert not fired
        assert heap.next_time() == 10

    def test_bool_truthiness(self):
        heap = EventHeap()
        heap.schedule(1, lambda: None)
        assert heap

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1))
    def test_fire_order_is_nondecreasing(self, times):
        heap = EventHeap()
        fired = []
        for t in times:
            heap.schedule(t, lambda t=t: fired.append(t))
        heap.fire_due(max(times))
        assert fired == sorted(fired)
        assert sorted(fired) == sorted(times)

    @given(
        st.lists(st.integers(min_value=0, max_value=100), min_size=1),
        st.integers(min_value=0, max_value=100),
    )
    def test_partial_fire_splits_by_now(self, times, now):
        heap = EventHeap()
        fired = []
        for t in times:
            heap.schedule(t, lambda t=t: fired.append(t))
        count = heap.fire_due(now)
        assert count == sum(1 for t in times if t <= now)
        assert len(heap) == len(times) - count
