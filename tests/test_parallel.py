"""The parallel sweep executor: determinism, resilience, checkpoints."""

import dataclasses
import os

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.experiments.config import SingleSwitchExperiment
from repro.experiments.parallel import (
    CRASH_RESEED_STEP,
    ParallelSweepExecutor,
    SweepTask,
    execute_tasks,
)
from repro.experiments.resilience import SweepCheckpoint
from repro.experiments.runner import WorkloadSummary, simulate_single_switch

TINY = dict(scale=100.0, warmup_frames=1, measure_frames=2, seed=7)


@dataclasses.dataclass(frozen=True)
class StubExperiment:
    """Minimal picklable experiment: a seed is all retries need."""

    seed: int = 7
    watchdog_window: object = None


@dataclasses.dataclass
class StubResult:
    value: int
    portable_calls: int = 0

    def portable(self):
        return dataclasses.replace(self, portable_calls=self.portable_calls + 1)


def double_seed(experiment):
    """Module-level (picklable) stub runner."""
    return StubResult(experiment.seed * 2)


def always_fails(experiment):
    raise SimulationError(f"point with seed {experiment.seed} is wedged")


def exit_on_first_seed(experiment):
    """Kill the worker process outright unless the seed was crash-reseeded."""
    if experiment.seed < CRASH_RESEED_STEP:
        os._exit(1)
    return StubResult(experiment.seed)


def _tiny_tasks(loads=(0.6, 0.9)):
    return [
        SweepTask(
            key=f"sw@{load:g}",
            runner=simulate_single_switch,
            experiment=SingleSwitchExperiment(load=load, mix=(80, 20), **TINY),
        )
        for load in loads
    ]


class TestValidation:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ParallelSweepExecutor(jobs=0)

    def test_crash_retries_must_be_nonnegative(self):
        with pytest.raises(ConfigurationError):
            ParallelSweepExecutor(crash_retries=-1)

    def test_encode_decode_must_pair(self):
        executor = ParallelSweepExecutor()
        with pytest.raises(ConfigurationError):
            executor.run([], encode=lambda r: r)

    def test_checkpoint_requires_codec(self, tmp_path):
        executor = ParallelSweepExecutor()
        checkpoint = SweepCheckpoint(str(tmp_path / "ck.json"), meta={})
        with pytest.raises(ConfigurationError):
            executor.run([], checkpoint=checkpoint)

    def test_duplicate_keys_rejected(self):
        tasks = [
            SweepTask("a", double_seed, StubExperiment()),
            SweepTask("a", double_seed, StubExperiment()),
        ]
        with pytest.raises(ConfigurationError):
            ParallelSweepExecutor().run(tasks)


class TestInline:
    def test_results_in_task_order(self):
        tasks = [
            SweepTask("b", double_seed, StubExperiment(seed=2)),
            SweepTask("a", double_seed, StubExperiment(seed=1)),
        ]
        results = ParallelSweepExecutor().run(tasks)
        assert list(results) == ["b", "a"]
        assert [r.value for r in results.values()] == [4, 2]

    def test_inline_results_are_portable(self):
        results = ParallelSweepExecutor().run(
            [SweepTask("a", double_seed, StubExperiment())]
        )
        assert results["a"].portable_calls == 1

    def test_failure_raises_without_hook(self):
        tasks = [SweepTask("a", always_fails, StubExperiment())]
        with pytest.raises(SimulationError):
            ParallelSweepExecutor(attempts=1).run(tasks)

    def test_failure_hook_skips_the_key(self):
        tasks = [
            SweepTask("bad", always_fails, StubExperiment(seed=1)),
            SweepTask("good", double_seed, StubExperiment(seed=3)),
        ]
        seen = []
        results = ParallelSweepExecutor(attempts=1).run(
            tasks, on_failure=lambda task, exc: seen.append(task.key)
        )
        assert list(results) == ["good"]
        assert seen == ["bad"]

    def test_execute_tasks_without_executor_is_plain(self):
        """The None path: runner called directly, no portable conversion."""
        results = execute_tasks([SweepTask("a", double_seed, StubExperiment())])
        assert results["a"].portable_calls == 0


class TestCheckpoint:
    def _codec(self):
        return (
            lambda result: {"value": result.value},
            lambda data: StubResult(data["value"]),
        )

    def test_restores_without_rerunning(self, tmp_path):
        path = str(tmp_path / "ck.json")
        encode, decode = self._codec()
        tasks = [SweepTask("a", double_seed, StubExperiment(seed=5))]
        executor = ParallelSweepExecutor()
        first = executor.run(
            tasks,
            checkpoint=SweepCheckpoint(path, meta={}),
            encode=encode,
            decode=decode,
        )
        assert first["a"].value == 10
        rerun = [SweepTask("a", always_fails, StubExperiment(seed=5))]
        second = executor.run(
            rerun,
            checkpoint=SweepCheckpoint(path, meta={}),
            encode=encode,
            decode=decode,
        )
        assert second["a"].value == 10  # runner never called

    def test_partial_checkpoint_runs_the_rest(self, tmp_path):
        path = str(tmp_path / "ck.json")
        encode, decode = self._codec()
        checkpoint = SweepCheckpoint(path, meta={})
        checkpoint.put("a", {"value": 1})
        results = ParallelSweepExecutor().run(
            [
                SweepTask("a", always_fails, StubExperiment()),
                SweepTask("b", double_seed, StubExperiment(seed=4)),
            ],
            checkpoint=checkpoint,
            encode=encode,
            decode=decode,
        )
        assert results["a"].value == 1
        assert results["b"].value == 8
        assert sorted(checkpoint.done_keys) == ["a", "b"]


class TestPool:
    def test_pool_matches_serial_bitwise(self):
        serial = ParallelSweepExecutor(jobs=1).run(_tiny_tasks())
        pooled = ParallelSweepExecutor(jobs=2).run(_tiny_tasks())
        assert list(serial) == list(pooled)
        for key in serial:
            assert dataclasses.asdict(serial[key].metrics) == dataclasses.asdict(
                pooled[key].metrics
            )

    def test_pool_results_are_portable(self):
        results = ParallelSweepExecutor(jobs=2).run(_tiny_tasks(loads=(0.6,)))
        assert isinstance(results["sw@0.6"].workload, WorkloadSummary)

    def test_worker_crash_reseeds_and_recovers(self):
        tasks = [SweepTask("a", exit_on_first_seed, StubExperiment(seed=7))]
        executor = ParallelSweepExecutor(jobs=2, crash_retries=2)
        results = executor.run(tasks)
        assert results["a"].value == 7 + CRASH_RESEED_STEP

    def test_crash_budget_exhausted_raises(self):
        tasks = [
            SweepTask(
                "a", exit_on_first_seed, StubExperiment(seed=-CRASH_RESEED_STEP)
            )
        ]
        executor = ParallelSweepExecutor(jobs=2, crash_retries=1)
        with pytest.raises(SimulationError):
            executor.run(tasks)
