"""Traffic mixes, load accounting, VC partitioning of the workload."""

import pytest

from repro.errors import ConfigurationError
from repro.router.flit import TrafficClass
from repro.sim.rng import RngStreams
from repro.sim.units import LinkSpec, WorkloadScale
from repro.traffic.mix import (
    TrafficMix,
    WorkloadConfig,
    build_workload,
    rt_vc_count,
)

from conftest import make_network


class TestTrafficMix:
    def test_fraction(self):
        assert TrafficMix(80, 20).rt_fraction == pytest.approx(0.8)
        assert TrafficMix(100, 0).rt_fraction == 1.0
        assert TrafficMix(0, 100).rt_fraction == 0.0

    def test_str(self):
        assert str(TrafficMix(80, 20)) == "80:20"

    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            TrafficMix(-1, 5)
        with pytest.raises(ConfigurationError):
            TrafficMix(0, 0)


class TestRtVcCount:
    def test_paper_80_20_with_16_vcs(self):
        assert rt_vc_count(16, TrafficMix(80, 20)) == 13

    def test_pure_real_time_takes_all(self):
        assert rt_vc_count(16, TrafficMix(100, 0)) == 16

    def test_pure_best_effort_takes_none(self):
        assert rt_vc_count(16, TrafficMix(0, 100)) == 0

    def test_always_leaves_one_vc_for_other_class(self):
        assert rt_vc_count(16, TrafficMix(99, 1)) == 15
        assert rt_vc_count(16, TrafficMix(1, 99)) == 1

    def test_50_50_split(self):
        assert rt_vc_count(16, TrafficMix(50, 50)) == 8


def _config(**overrides):
    defaults = dict(
        link=LinkSpec(400.0, 32),
        scale=WorkloadScale(100.0),
        load=0.5,
        mix=TrafficMix(80, 20),
    )
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


class TestWorkloadConfig:
    def test_frame_interval_scales(self):
        config = _config(scale=WorkloadScale(1.0))
        assert config.frame_interval_cycles == 412_500
        config = _config(scale=WorkloadScale(100.0))
        assert config.frame_interval_cycles == 4125

    def test_stream_fraction_is_scale_invariant(self):
        small = _config(scale=WorkloadScale(100.0)).stream_fraction
        full = _config(scale=WorkloadScale(1.0)).stream_fraction
        assert small == pytest.approx(full, rel=1e-3)
        # a 4 Mbps stream is ~1% of a 400 Mbps link
        assert full == pytest.approx(0.0101, rel=0.01)

    def test_streams_per_node_matches_paper_capacity(self):
        # load 0.8 at 100:0 -> ~79 streams of ~1% each
        config = _config(load=0.8, mix=TrafficMix(100, 0))
        assert config.streams_per_node() == pytest.approx(79, abs=1)

    def test_load_split(self):
        config = _config(load=0.9, mix=TrafficMix(80, 20))
        assert config.rt_load == pytest.approx(0.72)
        assert config.be_load == pytest.approx(0.18)

    def test_cbr_model_is_constant(self):
        config = _config(rt_class=TrafficClass.CBR)
        assert config.frame_model().is_constant

    def test_vbr_model_keeps_sigma_ratio(self):
        model = _config().frame_model()
        assert model.std_flits / model.mean_flits == pytest.approx(0.2, rel=0.01)

    def test_rejects_bad_load(self):
        with pytest.raises(ConfigurationError):
            _config(load=0.0)

    def test_rejects_best_effort_rt_class(self):
        with pytest.raises(ConfigurationError):
            _config(rt_class=TrafficClass.BEST_EFFORT)

    def test_rejects_header_not_below_message(self):
        with pytest.raises(ConfigurationError):
            _config(header_flits=20)


class TestBuildWorkload:
    def test_builds_streams_and_sources(self):
        net = make_network(ports=4, vcs=4, rt_vc_count=3)
        workload = build_workload(net, _config(), RngStreams(1), start=False)
        assert workload.streams_per_node == _config().streams_per_node()
        assert len(workload.streams) == 4 * workload.streams_per_node
        assert len(workload.besteffort) == 4

    def test_stream_vcs_stay_in_rt_partition(self):
        net = make_network(ports=4, vcs=4, rt_vc_count=2)
        workload = build_workload(net, _config(), RngStreams(1), start=False)
        for stream in workload.streams:
            assert stream.config.src_vc in (0, 1)
            assert stream.config.dst_vc in (0, 1)

    def test_besteffort_vcs_stay_in_be_partition(self):
        net = make_network(ports=4, vcs=4, rt_vc_count=2)
        workload = build_workload(net, _config(), RngStreams(1), start=False)
        for source in workload.besteffort:
            assert set(source.config.vcs) == {2, 3}

    def test_no_self_destinations(self):
        net = make_network(ports=4, vcs=4, rt_vc_count=3)
        workload = build_workload(net, _config(), RngStreams(1), start=False)
        for stream in workload.streams:
            assert stream.config.dst_node != stream.config.src_node

    def test_balanced_destinations_even_out(self):
        net = make_network(ports=8, vcs=4, rt_vc_count=3)
        config = _config(load=0.7, mix=TrafficMix(100, 0))
        workload = build_workload(net, config, RngStreams(1), start=False)
        received = {}
        for stream in workload.streams:
            received[stream.config.dst_node] = (
                received.get(stream.config.dst_node, 0) + 1
            )
        counts = sorted(received.values())
        assert counts[-1] - counts[0] <= 2  # nearly perfectly balanced

    def test_pure_rt_has_no_besteffort_sources(self):
        net = make_network(ports=4, vcs=4, rt_vc_count=4)
        config = _config(mix=TrafficMix(100, 0))
        workload = build_workload(net, config, RngStreams(1), start=False)
        assert not workload.besteffort
        assert workload.achieved_be_load == 0.0

    def test_pure_be_has_no_streams(self):
        net = make_network(ports=4, vcs=4, rt_vc_count=0)
        config = _config(mix=TrafficMix(0, 100))
        workload = build_workload(net, config, RngStreams(1), start=False)
        assert not workload.streams
        assert workload.achieved_rt_load == 0.0

    def test_achieved_load_close_to_offered(self):
        net = make_network(ports=4, vcs=4, rt_vc_count=3)
        config = _config(load=0.5)
        workload = build_workload(net, config, RngStreams(1), start=False)
        assert workload.achieved_load == pytest.approx(0.5, abs=0.02)

    def test_rt_streams_without_rt_vcs_rejected(self):
        net = make_network(ports=4, vcs=4, rt_vc_count=0)
        with pytest.raises(ConfigurationError):
            build_workload(net, _config(), RngStreams(1), start=False)

    def test_needs_two_hosts(self):
        net = make_network(ports=2)  # fine: 2 hosts
        build_workload(net, _config(), RngStreams(1), start=False)

    def test_started_workload_emits(self):
        net = make_network(ports=4, vcs=4, rt_vc_count=3)
        workload = build_workload(net, _config(), RngStreams(1), start=True)
        net.run(_config().frame_interval_cycles * 2)
        assert net.flits_injected > 0

    def test_deterministic_given_seed(self):
        def build():
            net = make_network(ports=4, vcs=4, rt_vc_count=3)
            wl = build_workload(net, _config(), RngStreams(9), start=False)
            return [
                (s.config.dst_node, s.config.src_vc, s.config.dst_vc,
                 s.config.phase)
                for s in wl.streams
            ]

        assert build() == build()
