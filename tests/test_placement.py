"""QoS scheduler placement (the paper's contention points A/B/C)."""

import pytest

from repro.core.schedulers import SchedulingPolicy
from repro.errors import ConfigurationError
from repro.router.config import CrossbarKind, QosPlacement, RouterConfig

from conftest import deliver_all, make_message, make_network

VC = SchedulingPolicy.VIRTUAL_CLOCK
FIFO = SchedulingPolicy.FIFO


class TestPlacementResolution:
    def test_auto_multiplexed_puts_qos_at_input_mux(self):
        config = RouterConfig(crossbar=CrossbarKind.MULTIPLEXED, qos_policy=VC)
        assert config.resolve_mux_policies() == (VC, FIFO)

    def test_auto_full_puts_qos_at_vc_mux(self):
        config = RouterConfig(crossbar=CrossbarKind.FULL, qos_policy=VC)
        assert config.resolve_mux_policies() == (FIFO, VC)

    def test_forced_input_mux(self):
        config = RouterConfig(
            crossbar=CrossbarKind.FULL,
            qos_policy=VC,
            qos_placement=QosPlacement.INPUT_MUX,
        )
        assert config.resolve_mux_policies() == (VC, FIFO)

    def test_forced_vc_mux(self):
        config = RouterConfig(
            qos_policy=VC, qos_placement=QosPlacement.VC_MUX
        )
        assert config.resolve_mux_policies() == (FIFO, VC)

    def test_both(self):
        config = RouterConfig(qos_policy=VC, qos_placement=QosPlacement.BOTH)
        assert config.resolve_mux_policies() == (VC, VC)

    def test_none_is_all_fifo(self):
        config = RouterConfig(qos_policy=VC, qos_placement=QosPlacement.NONE)
        assert config.resolve_mux_policies() == (FIFO, FIFO)
        assert config.ni_policy == FIFO

    def test_ni_follows_qos_policy_otherwise(self):
        config = RouterConfig(qos_policy=VC)
        assert config.ni_policy == VC

    def test_rejects_unknown_placement(self):
        with pytest.raises(ConfigurationError):
            RouterConfig(qos_placement="everywhere")


class TestPlacementBehaviour:
    @pytest.mark.parametrize("placement", QosPlacement.ALL)
    def test_every_placement_delivers(self, placement):
        net = make_network(qos_placement=placement)
        messages = [
            make_message(src=s, dst=(s + 1) % 4, size=5, src_vc=s % 4,
                         dst_vc=s % 4)
            for s in range(4)
        ]
        for msg in messages:
            net.inject_now(msg)
        deliver_all(net)
        assert all(m.deliver_time > 0 for m in messages)

    def test_none_placement_ignores_vtick(self):
        # All-FIFO placement: a tiny Vtick buys nothing at the NI mux
        # (FIFO tie-break by VC index wins instead).
        net = make_network(qos_placement=QosPlacement.NONE)
        slow = make_message(size=8, vtick=500.0, src_vc=0, dst_vc=0)
        fast = make_message(size=8, vtick=5.0, src_vc=1, dst_vc=1)
        net.inject_now(slow)
        net.inject_now(fast)
        deliver_all(net)
        assert slow.deliver_time < fast.deliver_time

    def test_vc_mux_placement_still_honours_rates_downstream(self):
        net = make_network(qos_placement=QosPlacement.VC_MUX)
        msg = make_message(size=6)
        net.inject_now(msg)
        deliver_all(net)
        assert msg.deliver_time > 0
