"""Shared fixtures: tiny networks and workloads that run in milliseconds."""

from __future__ import annotations

import pytest

from repro.core.schedulers import SchedulingPolicy
from repro.experiments.config import SingleSwitchExperiment
from repro.experiments.runner import simulate_single_switch
from repro.metrics.collector import MetricsCollector
from repro.network.network import Network
from repro.network.topology import fat_mesh, single_switch
from repro.router.config import RouterConfig
from repro.router.flit import Message, TrafficClass
from repro.sim.rng import RngStreams
from repro.sim.units import LinkSpec, TimeBase, WorkloadScale
from repro.traffic.mix import build_workload


@pytest.fixture
def link400() -> LinkSpec:
    """The paper's main link: 400 Mbps, 32-bit flits (80 ns cycles)."""
    return LinkSpec(bandwidth_mbps=400.0, flit_size_bits=32)


@pytest.fixture
def timebase(link400) -> TimeBase:
    return TimeBase(link400, WorkloadScale(1.0))


def make_network(
    ports: int = 4,
    vcs: int = 4,
    depth: int = 4,
    policy: str = SchedulingPolicy.VIRTUAL_CLOCK,
    crossbar: str = "multiplexed",
    rt_vc_count=None,
    on_message=None,
    trace_sink=None,
    **config_kwargs,
) -> Network:
    """A small single-switch network for direct flit-level tests.

    ``trace_sink`` installs an observability sink (see ``repro.obs``)
    on every component before the network is returned.
    """
    config = RouterConfig(
        num_ports=ports,
        vcs_per_pc=vcs,
        flit_buffer_depth=depth,
        crossbar=crossbar,
        qos_policy=policy,
        rt_vc_count=rt_vc_count,
        **config_kwargs,
    )
    network = Network(single_switch(ports), config, on_message=on_message)
    if trace_sink is not None:
        from repro.obs import install_tracing

        install_tracing(network, trace_sink)
    return network


def make_mesh_network(
    rows: int = 2,
    cols: int = 2,
    hosts_per_router: int = 1,
    fat_width: int = 2,
    vcs: int = 4,
    depth: int = 4,
    policy: str = SchedulingPolicy.VIRTUAL_CLOCK,
    rt_vc_count=2,
    on_message=None,
    trace_sink=None,
    **config_kwargs,
):
    """A small fat-mesh network; returns ``(network, topology)``.

    The fault/failover/health tests all exercise the same 2x2 fat mesh;
    build it here instead of re-deriving the RouterConfig by hand.
    """
    topology = fat_mesh(
        rows=rows,
        cols=cols,
        hosts_per_router=hosts_per_router,
        fat_width=fat_width,
    )
    config = RouterConfig(
        num_ports=topology.ports_per_router,
        vcs_per_pc=vcs,
        flit_buffer_depth=depth,
        qos_policy=policy,
        rt_vc_count=rt_vc_count,
        **config_kwargs,
    )
    network = Network(topology, config, on_message=on_message)
    if trace_sink is not None:
        from repro.obs import install_tracing

        install_tracing(network, trace_sink)
    return network, topology


def make_message(
    src: int = 0,
    dst: int = 1,
    size: int = 5,
    vtick: float = 100.0,
    traffic_class: str = TrafficClass.VBR,
    src_vc: int = 0,
    dst_vc: int = 0,
    **kwargs,
) -> Message:
    """A small real-time message with sensible defaults."""
    return Message(
        src_node=src,
        dst_node=dst,
        size=size,
        vtick=vtick,
        traffic_class=traffic_class,
        src_vc=src_vc,
        dst_vc=dst_vc,
        **kwargs,
    )


def deliver_all(network: Network, max_cycles: int = 100_000) -> None:
    """Run until every injected flit has ejected (bounded)."""
    network.run_until_drained(max_extra=max_cycles)


TINY = dict(scale=100.0, warmup_frames=1, measure_frames=2, seed=7)


@pytest.fixture(scope="session")
def tiny_run():
    """One cached tiny single-switch run shared by read-only assertions."""
    experiment = SingleSwitchExperiment(load=0.6, mix=(80, 20), **TINY)
    return simulate_single_switch(experiment)


@pytest.fixture(scope="session")
def tiny_loaded_run():
    """A near-saturation tiny run (shared, read-only)."""
    experiment = SingleSwitchExperiment(load=0.9, mix=(80, 20), **TINY)
    return simulate_single_switch(experiment)


@pytest.fixture
def rngs() -> RngStreams:
    return RngStreams(seed=1234)


def attach_workload(network: Network, load=0.5, mix=(80, 20), **overrides):
    """Build and start a paper-style workload on ``network``."""
    from repro.traffic.mix import TrafficMix, WorkloadConfig
    from repro.sim.units import LinkSpec, WorkloadScale

    config = WorkloadConfig(
        link=LinkSpec(),
        scale=WorkloadScale(100.0),
        load=load,
        mix=TrafficMix(*mix),
        **overrides,
    )
    return build_workload(network, config, RngStreams(3))
