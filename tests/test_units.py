"""Unit conversions: LinkSpec, WorkloadScale, TimeBase."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim.units import (
    MPEG2_FRAME_BYTES_MEAN,
    MPEG2_FRAME_INTERVAL_MS,
    LinkSpec,
    TimeBase,
    WorkloadScale,
)


class TestLinkSpec:
    def test_paper_cycle_time_400mbps(self):
        # 32 bits at 400 Mbps = 80 ns per flit
        assert LinkSpec(400.0, 32).cycle_ns == pytest.approx(80.0)

    def test_paper_cycle_time_100mbps(self):
        assert LinkSpec(100.0, 32).cycle_ns == pytest.approx(320.0)

    def test_flits_per_second(self):
        assert LinkSpec(400.0, 32).flits_per_second == pytest.approx(12.5e6)

    def test_bytes_to_flits(self):
        assert LinkSpec(400.0, 32).bytes_to_flits(4) == pytest.approx(1.0)

    def test_mpeg_frame_is_about_4167_flits(self):
        flits = LinkSpec(400.0, 32).bytes_to_flits(MPEG2_FRAME_BYTES_MEAN)
        assert flits == pytest.approx(4166.5)

    def test_frame_interval_is_412500_cycles(self):
        cycles = LinkSpec(400.0, 32).ms_to_cycles(MPEG2_FRAME_INTERVAL_MS)
        assert cycles == pytest.approx(412_500)

    def test_ms_roundtrip(self):
        link = LinkSpec(400.0, 32)
        assert link.cycles_to_ms(link.ms_to_cycles(12.5)) == pytest.approx(12.5)

    def test_us_roundtrip(self):
        link = LinkSpec(100.0, 32)
        assert link.cycles_to_us(link.us_to_cycles(7.25)) == pytest.approx(7.25)

    def test_stream_rate_fraction(self):
        # A 4 Mbps stream is 1% of a 400 Mbps link.
        assert LinkSpec(400.0, 32).rate_fraction(4.0) == pytest.approx(0.01)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ConfigurationError):
            LinkSpec(0.0, 32)

    def test_rejects_nonpositive_flit_size(self):
        with pytest.raises(ConfigurationError):
            LinkSpec(400.0, 0)

    @given(st.floats(min_value=0.001, max_value=1e5))
    def test_ms_cycles_inverse_property(self, ms):
        link = LinkSpec(400.0, 32)
        assert link.cycles_to_ms(link.ms_to_cycles(ms)) == pytest.approx(
            ms, rel=1e-9
        )


class TestWorkloadScale:
    def test_identity_scale(self):
        scale = WorkloadScale(1.0)
        assert scale.scale_flits(100.0) == 100.0
        assert scale.scale_cycles(100.0) == 100.0
        assert scale.unscale_cycles(100.0) == 100.0

    def test_scaling_preserves_rate_fraction(self):
        scale = WorkloadScale(20.0)
        flits, cycles = 4167.0, 412_500.0
        before = flits / cycles
        after = scale.scale_flits(flits) / scale.scale_cycles(cycles)
        assert after == pytest.approx(before)

    def test_unscale_inverts_scale(self):
        scale = WorkloadScale(7.5)
        assert scale.unscale_cycles(scale.scale_cycles(999.0)) == pytest.approx(
            999.0
        )

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ConfigurationError):
            WorkloadScale(0.0)
        with pytest.raises(ConfigurationError):
            WorkloadScale(-3.0)

    @given(
        st.floats(min_value=0.01, max_value=1000),
        st.floats(min_value=0.001, max_value=1e6),
    )
    def test_rate_invariance_property(self, factor, flits):
        scale = WorkloadScale(factor)
        cycles = flits * 99.0  # arbitrary rate
        assert scale.scale_flits(flits) / scale.scale_cycles(
            cycles
        ) == pytest.approx(flits / cycles, rel=1e-9)


class TestTimeBase:
    def test_report_ms_at_scale_1(self, timebase):
        # 412500 cycles at 80 ns = 33 ms
        assert timebase.report_ms(412_500) == pytest.approx(33.0)

    def test_report_ms_undoes_workload_scaling(self, link400):
        tb = TimeBase(link400, WorkloadScale(20.0))
        # a scaled run measures interval/20 cycles for a 33 ms interval
        assert tb.report_ms(412_500 / 20) == pytest.approx(33.0)

    def test_report_us(self, link400):
        tb = TimeBase(link400, WorkloadScale(1.0))
        assert tb.report_us(100) == pytest.approx(8.0)

    def test_report_nan_passthrough(self, timebase):
        assert math.isnan(timebase.report_ms(float("nan")))
