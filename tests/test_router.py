"""Flit-level router behaviour on tiny single-switch networks."""

import pytest

from repro.core.schedulers import SchedulingPolicy
from repro.errors import FlowControlError
from repro.router.config import CrossbarKind
from repro.router.flit import TrafficClass

from conftest import deliver_all, make_message, make_network


class TestBasicDelivery:
    def test_single_message_is_delivered(self):
        net = make_network()
        msg = make_message(src=0, dst=1, size=5)
        net.inject_now(msg)
        deliver_all(net)
        assert msg.deliver_time > 0
        assert net.flits_ejected == 5
        net.check_invariants()

    def test_header_pipeline_latency(self):
        # 1-flit message: NI mux (cycle 0) -> host link (2 cycles, stage 1)
        # -> routing (1) -> arbitration grant, crossbar next cycle ->
        # stage-5 mux -> output link (2 cycles).
        net = make_network()
        msg = make_message(size=1)
        net.inject_now(msg)
        deliver_all(net)
        assert msg.deliver_time == 7

    def test_body_flits_stream_at_link_rate(self):
        # After the header's pipeline fill, one flit ejects per cycle:
        # tail of an n-flit message lands at header_latency + (n - 1).
        net = make_network()
        msg = make_message(size=6)
        net.inject_now(msg)
        deliver_all(net)
        assert msg.deliver_time == 7 + 5

    def test_all_port_pairs_work(self):
        net = make_network(ports=4)
        messages = []
        for src in range(4):
            dst = (src + 1) % 4
            msg = make_message(src=src, dst=dst, size=3)
            messages.append(msg)
            net.inject_now(msg)
        deliver_all(net)
        assert all(m.deliver_time > 0 for m in messages)
        assert net.flits_ejected == 12

    def test_message_to_far_port(self):
        net = make_network(ports=8)
        msg = make_message(src=7, dst=0, size=4)
        net.inject_now(msg)
        deliver_all(net)
        assert msg.deliver_time > 0

    def test_crossbar_hook_sees_every_flit(self):
        net = make_network()
        seen = []
        net.routers[0].on_crossbar = lambda m, i: seen.append((m.msg_id, i))
        msg = make_message(size=4)
        net.inject_now(msg)
        deliver_all(net)
        assert seen == [(msg.msg_id, i) for i in range(4)]


class TestWormholeSemantics:
    def test_messages_on_same_vc_serialize(self):
        net = make_network()
        first = make_message(size=4, src_vc=0, dst_vc=0)
        second = make_message(size=4, src_vc=0, dst_vc=1)
        net.inject_now(first)
        net.inject_now(second)
        deliver_all(net)
        # first's tail must leave before second's tail arrives
        assert second.deliver_time > first.deliver_time

    def test_messages_on_distinct_vcs_interleave(self):
        # Two 8-flit messages on different VCs share the host link;
        # total time is ~2x one message, and both finish close together.
        net = make_network()
        a = make_message(size=8, src_vc=0, dst_vc=0)
        b = make_message(size=8, src_vc=1, dst_vc=1)
        net.inject_now(a)
        net.inject_now(b)
        deliver_all(net)
        assert abs(a.deliver_time - b.deliver_time) <= 8

    def test_same_dst_vc_serialises_streams(self):
        # Connection semantics: two RT messages from different sources
        # bound to the same destination VC cannot overlap there.
        net = make_network()
        a = make_message(src=0, dst=2, size=6, src_vc=0, dst_vc=1)
        b = make_message(src=1, dst=2, size=6, src_vc=0, dst_vc=1)
        net.inject_now(a)
        net.inject_now(b)
        deliver_all(net)
        assert abs(a.deliver_time - b.deliver_time) >= 6

    def test_distinct_dst_vcs_share_output_link(self):
        net = make_network()
        a = make_message(src=0, dst=2, size=6, src_vc=0, dst_vc=0)
        b = make_message(src=1, dst=2, size=6, src_vc=0, dst_vc=1)
        net.inject_now(a)
        net.inject_now(b)
        deliver_all(net)
        # output link is shared: both finish within ~one message of each
        # other rather than strictly serialised
        assert abs(a.deliver_time - b.deliver_time) <= 7

    def test_long_message_respects_small_buffers(self):
        net = make_network(depth=2)
        msg = make_message(size=32)
        net.inject_now(msg)
        deliver_all(net)
        assert msg.deliver_time > 0
        net.check_invariants()

    def test_many_messages_conserve_flits(self):
        net = make_network(ports=4, vcs=2, depth=3)
        total = 0
        for i in range(20):
            msg = make_message(
                src=i % 4, dst=(i + 1) % 4, size=3 + i % 5, src_vc=i % 2,
                dst_vc=i % 2,
            )
            total += msg.size
            net.inject_now(msg)
        deliver_all(net)
        assert net.flits_ejected == total
        net.check_invariants()


class TestClassPartitioning:
    def test_best_effort_keeps_to_its_partition(self):
        net = make_network(vcs=4, rt_vc_count=2)
        granted = []
        router = net.routers[0]
        original = router._arbitrate_output_vc

        def spy(clock, port, msg, escape_only=False):
            ovc = original(clock, port, msg, escape_only)
            if ovc is not None:
                granted.append((msg.traffic_class, ovc.index))
            return ovc

        router._arbitrate_output_vc = spy
        be = make_message(
            size=3,
            vtick=1e12,
            traffic_class=TrafficClass.BEST_EFFORT,
            src_vc=2,
            dst_vc=None,
        )
        net.inject_now(be)
        deliver_all(net)
        assert granted == [(TrafficClass.BEST_EFFORT, 2)] or granted == [
            (TrafficClass.BEST_EFFORT, 3)
        ]

    def test_real_time_keeps_to_its_partition(self):
        net = make_network(vcs=4, rt_vc_count=2)
        msg = make_message(size=3, src_vc=0, dst_vc=1)
        net.inject_now(msg)
        deliver_all(net)
        assert msg.deliver_time > 0

    def test_best_effort_stuck_without_partition(self):
        # No BE VCs and no dynamic partitioning: arbitration never
        # grants, the message never drains.
        from repro.errors import SimulationError

        net = make_network(vcs=2, rt_vc_count=2)
        be = make_message(
            size=2,
            vtick=1e12,
            traffic_class=TrafficClass.BEST_EFFORT,
            src_vc=0,
            dst_vc=None,
        )
        net.inject_now(be)
        with pytest.raises(SimulationError):
            net.run_until_drained(max_extra=5_000)

    def test_dynamic_partitioning_lets_best_effort_borrow(self):
        net = make_network(vcs=2, rt_vc_count=2, dynamic_partitioning=True)
        be = make_message(
            size=2,
            vtick=1e12,
            traffic_class=TrafficClass.BEST_EFFORT,
            src_vc=0,
            dst_vc=None,
        )
        net.inject_now(be)
        deliver_all(net)
        assert be.deliver_time > 0

    def test_be_dst_vc_fallback_avoids_hol(self):
        # Two BE messages drawn to the same dst VC: with the default
        # fallback the second borrows a sibling VC instead of waiting.
        net = make_network(vcs=4, rt_vc_count=0)
        a = make_message(
            size=8, vtick=1e12, traffic_class=TrafficClass.BEST_EFFORT,
            src_vc=0, dst_vc=1,
        )
        b = make_message(
            size=8, vtick=1e12, traffic_class=TrafficClass.BEST_EFFORT,
            src_vc=1, dst_vc=1,
        )
        net.inject_now(a)
        net.inject_now(b)
        deliver_all(net)
        assert abs(a.deliver_time - b.deliver_time) <= 9

    def test_strict_be_binding_serialises(self):
        net = make_network(vcs=4, rt_vc_count=0, be_dst_vc_binding=True)
        a = make_message(
            size=8, vtick=1e12, traffic_class=TrafficClass.BEST_EFFORT,
            src_vc=0, dst_vc=1,
        )
        b = make_message(
            size=8, vtick=1e12, traffic_class=TrafficClass.BEST_EFFORT,
            src_vc=1, dst_vc=1,
        )
        net.inject_now(a)
        net.inject_now(b)
        deliver_all(net)
        assert abs(a.deliver_time - b.deliver_time) >= 8


class TestCrossbarKinds:
    @pytest.mark.parametrize("crossbar", [CrossbarKind.MULTIPLEXED, CrossbarKind.FULL])
    def test_delivery_under_both_crossbars(self, crossbar):
        net = make_network(crossbar=crossbar)
        messages = [
            make_message(src=s, dst=(s + 1) % 4, size=5, src_vc=s % 4,
                         dst_vc=s % 4)
            for s in range(4)
        ]
        for msg in messages:
            net.inject_now(msg)
        deliver_all(net)
        assert all(m.deliver_time > 0 for m in messages)

    def test_full_crossbar_moves_vcs_concurrently(self):
        # With a full crossbar, two VCs of one input port can cross in
        # the same cycle; with a multiplexed crossbar they cannot.
        def run(crossbar):
            net = make_network(crossbar=crossbar)
            a = make_message(src=0, dst=1, size=10, src_vc=0, dst_vc=0)
            b = make_message(src=0, dst=2, size=10, src_vc=1, dst_vc=1)
            net.inject_now(a)
            net.inject_now(b)
            deliver_all(net)
            return max(a.deliver_time, b.deliver_time)

        # Both configs share the host-link bottleneck (1 flit/cycle), so
        # completion times match; the full crossbar must not be slower.
        assert run(CrossbarKind.FULL) <= run(CrossbarKind.MULTIPLEXED)

    @pytest.mark.parametrize(
        "policy",
        [
            SchedulingPolicy.VIRTUAL_CLOCK,
            SchedulingPolicy.FIFO,
            SchedulingPolicy.ROUND_ROBIN,
        ],
    )
    def test_every_policy_delivers(self, policy):
        net = make_network(policy=policy)
        msg = make_message(size=6)
        net.inject_now(msg)
        deliver_all(net)
        assert msg.deliver_time > 0


class TestRouterAudit:
    def test_invariants_hold_mid_flight(self):
        net = make_network()
        for i in range(8):
            net.inject_now(
                make_message(src=i % 4, dst=(i + 2) % 4, size=6, src_vc=i % 4,
                             dst_vc=i % 4)
            )
        for _ in range(10):
            net.run(net.clock + 3)
            net.check_invariants()
        deliver_all(net)
        net.check_invariants()

    def test_buffered_flits_counts_everything(self):
        net = make_network()
        msg = make_message(size=10)
        net.inject_now(msg)
        net.run(6)
        assert net.buffered_flits() == 10 - net.flits_ejected

    def test_stage5_without_link_raises(self):
        # Corrupting the wiring surfaces as a FlowControlError, not a
        # silent flit drop.
        net = make_network()
        router = net.routers[0]
        msg = make_message(size=2)
        net.inject_now(msg)
        router.out_links[1] = None
        with pytest.raises(FlowControlError):
            net.run(30)
