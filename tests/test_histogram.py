"""Fixed-bin histograms."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.metrics.histogram import Histogram, interval_histogram


class TestHistogram:
    def test_bins_values(self):
        histogram = Histogram(0.0, 10.0, bins=5)
        histogram.extend([0.5, 2.5, 2.6, 9.9])
        assert histogram.counts == [1, 2, 0, 0, 1]
        assert histogram.total == 4

    def test_under_and_overflow(self):
        histogram = Histogram(0.0, 10.0, bins=2)
        histogram.extend([-1.0, 5.0, 10.0, 12.0])
        assert histogram.underflow == 1
        assert histogram.overflow == 2
        assert sum(histogram.counts) == 1

    def test_high_edge_is_exclusive(self):
        histogram = Histogram(0.0, 10.0, bins=2)
        histogram.add(10.0)
        assert histogram.overflow == 1

    def test_nan_ignored(self):
        histogram = Histogram(0.0, 1.0, bins=1)
        histogram.add(float("nan"))
        assert histogram.total == 0

    def test_bin_edges(self):
        histogram = Histogram(0.0, 10.0, bins=4)
        assert histogram.bin_edges(0) == (0.0, 2.5)
        assert histogram.bin_edges(3) == (7.5, 10.0)
        with pytest.raises(ConfigurationError):
            histogram.bin_edges(4)

    def test_mode_bin(self):
        histogram = Histogram(0.0, 3.0, bins=3)
        histogram.extend([0.5, 1.5, 1.6, 2.5])
        assert histogram.mode_bin() == 1

    def test_fraction_in(self):
        histogram = Histogram(0.0, 10.0, bins=10)
        histogram.extend([1.5, 2.5, 3.5, 8.5])
        assert histogram.fraction_in(1.0, 4.0) == pytest.approx(0.75)

    def test_fraction_in_empty_is_nan(self):
        histogram = Histogram(0.0, 1.0, bins=1)
        assert math.isnan(histogram.fraction_in(0.0, 1.0))

    def test_render_contains_bars(self):
        histogram = Histogram(0.0, 2.0, bins=2)
        histogram.extend([0.5, 0.6, 1.5])
        text = histogram.render(width=10)
        assert "#" in text
        assert "2" in text

    def test_render_shows_overflow(self):
        histogram = Histogram(0.0, 1.0, bins=1)
        histogram.add(5.0)
        assert ">=" in histogram.render()

    def test_rejects_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            Histogram(0.0, 1.0, bins=0)
        with pytest.raises(ConfigurationError):
            Histogram(1.0, 1.0, bins=3)


class TestIntervalHistogram:
    def test_centres_on_nominal(self):
        histogram = interval_histogram([33.0] * 10)
        assert histogram.low == 23.0
        assert histogram.high == 43.0
        middle = histogram.mode_bin()
        low, high = histogram.bin_edges(middle)
        assert low <= 33.0 < high

    def test_jittery_run_spreads(self):
        tight = interval_histogram([33.0, 33.1, 32.9])
        loose = interval_histogram([28.0, 33.0, 39.0])
        assert tight.fraction_in(32.0, 34.0) > loose.fraction_in(32.0, 34.0)
