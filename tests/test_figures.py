"""Figure/table harness: structure of reproduced sweeps (tiny profile)."""

import math

import pytest

from repro.experiments.figures import (
    FIGURES,
    PROFILES,
    RunProfile,
    get_profile,
    run_fig3,
    run_fig4,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_mixed_grid,
    run_fig5,
)
from repro.experiments.tables import run_table2, run_table3

#: one-point sweeps at a very coarse scale: structure tests, not physics
TINY = RunProfile("tiny", scale=80.0, warmup_frames=1, measure_frames=2)


class TestProfiles:
    def test_registry_contains_standard_profiles(self):
        assert {"quick", "default", "full"} <= set(PROFILES)
        assert PROFILES["full"].scale == 1.0

    def test_get_profile_accepts_name_or_object(self):
        assert get_profile("quick") is PROFILES["quick"]
        assert get_profile(TINY) is TINY

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            get_profile("huge")


class TestFigureRunners:
    def test_registry_covers_every_figure(self):
        assert set(FIGURES) == {
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
        }

    def test_fig3_series(self):
        fig = run_fig3(TINY, loads=(0.5,))
        assert set(fig.series) == {"virtual_clock", "fifo"}
        for points in fig.series.values():
            assert len(points) == 1
            assert points[0].d == pytest.approx(33.0, abs=2.0)

    def test_fig4_series(self):
        fig = run_fig4(TINY, loads=(0.5,))
        assert set(fig.series) == {"vbr", "cbr"}

    def test_fig5_and_table2_share_grid(self):
        mixes = ((50, 50), (80, 20))
        loads = (0.5,)
        grid = run_mixed_grid(TINY, loads, mixes)
        fig = run_fig5(TINY, loads, mixes, grid=grid)
        table = run_table2(TINY, loads, mixes, grid=grid)
        assert set(fig.series) == {"load=0.5"}
        assert len(fig.series["load=0.5"]) == 2
        assert table.cell((80, 20), 0.5) == grid[
            ((80, 20), 0.5)
        ].metrics.be_latency_us

    def test_fig6_config_labels(self):
        fig = run_fig6(TINY, loads=(0.5,))
        assert "4 VCs, full crossbar" in fig.series
        assert len(fig.series) == 4

    def test_fig7_message_sizes_sweep(self):
        fig = run_fig7(TINY, loads=(0.5,), message_sizes=(10, 20))
        points = fig.series["load=0.5"]
        assert [p.x for p in points] == [10, 20]

    def test_fig8_includes_pcs_accounting(self):
        fig = run_fig8(TINY, loads=(0.4,))
        pcs_point = fig.series["pcs"][0]
        assert "established" in pcs_point.extra
        assert pcs_point.extra["attempts"] >= pcs_point.extra["established"]

    def test_fig9_uses_mix_labels(self):
        fig = run_fig9(TINY, loads=(0.5,), mixes=((60, 40),))
        assert [p.x for p in fig.series["load=0.5"]] == ["60:40"]


class TestTableRunners:
    def test_table2_saturation_formatting(self):
        table = run_table2(TINY, loads=(0.5,), mixes=((50, 50),))
        text = table.cell_text((50, 50), 0.5)
        assert text == "Sat." or float(text) >= 0

    def test_table3_rows_and_identity(self):
        table = run_table3(TINY, loads=(0.4, 0.9))
        assert len(table.rows) == 2
        for row in table.rows:
            assert row.attempts == row.established + row.dropped
        by_load = {row.load: row for row in table.rows}
        assert by_load[0.9].offered > by_load[0.4].offered
