"""Input/output VC buffers and credit bookkeeping."""

import pytest

from repro.errors import FlowControlError
from repro.router.buffers import InputVC, OutputVC
from repro.router.flit import Message, TrafficClass


def _msg(size=4, vtick=50.0):
    return Message(0, 1, size, vtick, TrafficClass.VBR)


class TestInputVC:
    def test_starts_free(self):
        vc = InputVC(port=0, index=1, capacity=4)
        assert vc.is_free
        assert vc.occupancy == 0
        assert vc.msg is None
        assert not vc.front_has_flit

    def test_accept_message_and_flits(self):
        vc = InputVC(0, 0, capacity=4)
        msg = _msg(size=3)
        vc.accept_new_message(10, msg)
        for stamp in (1.0, 2.0, 3.0):
            vc.accept_flit(stamp)
        assert vc.occupancy == 3
        assert vc.msg is msg
        assert vc.head_stamp() == 1.0
        assert vc.head_arrival == 10

    def test_pop_returns_flit_indices_in_order(self):
        vc = InputVC(0, 0, capacity=4)
        msg = _msg(size=3)
        vc.accept_new_message(0, msg)
        for stamp in (1.0, 2.0, 3.0):
            vc.accept_flit(stamp)
        assert vc.pop_head() == (msg, 0)
        assert vc.pop_head() == (msg, 1)
        assert vc.pop_head() == (msg, 2)
        assert vc.occupancy == 0

    def test_overflow_raises(self):
        vc = InputVC(0, 0, capacity=2)
        vc.accept_new_message(0, _msg(size=5))
        vc.accept_flit(1.0)
        vc.accept_flit(2.0)
        with pytest.raises(FlowControlError):
            vc.accept_flit(3.0)

    def test_flit_without_header_raises(self):
        vc = InputVC(0, 0, capacity=2)
        with pytest.raises(FlowControlError):
            vc.accept_flit(1.0)

    def test_pop_empty_raises(self):
        vc = InputVC(0, 0, capacity=2)
        vc.accept_new_message(0, _msg())
        with pytest.raises(FlowControlError):
            vc.pop_head()

    def test_second_message_queues_behind_tail(self):
        vc = InputVC(0, 0, capacity=8)
        first, second = _msg(size=2), _msg(size=2)
        vc.accept_new_message(0, first)
        vc.accept_flit(1.0)
        vc.accept_flit(2.0)
        vc.accept_new_message(5, second)
        vc.accept_flit(3.0)
        assert vc.msg is first
        assert len(vc.messages) == 2
        assert vc.occupancy == 3

    def test_front_has_flit_tracks_front_only(self):
        vc = InputVC(0, 0, capacity=8)
        first, second = _msg(size=1), _msg(size=1)
        vc.accept_new_message(0, first)
        vc.accept_flit(1.0)
        vc.pop_head()
        # front drained, second message's flit arrives
        vc.accept_new_message(3, second)
        vc.accept_flit(2.0)
        assert not vc.front_has_flit  # front (first) fully served
        assert vc.release_front()  # second waits behind
        assert vc.front_has_flit

    def test_release_front_restores_header_time(self):
        vc = InputVC(0, 0, capacity=8)
        vc.accept_new_message(0, _msg(size=1))
        vc.accept_flit(1.0)
        vc.accept_new_message(42, _msg(size=1))
        vc.accept_flit(2.0)
        vc.pop_head()
        assert vc.release_front()
        assert vc.head_arrival == 42

    def test_release_without_full_service_raises(self):
        vc = InputVC(0, 0, capacity=8)
        vc.accept_new_message(0, _msg(size=3))
        vc.accept_flit(1.0)
        vc.pop_head()
        with pytest.raises(FlowControlError):
            vc.release_front()

    def test_release_when_free_raises(self):
        with pytest.raises(FlowControlError):
            InputVC(0, 0, 2).release_front()

    def test_release_last_message_frees_vc(self):
        vc = InputVC(0, 0, capacity=8)
        vc.accept_new_message(0, _msg(size=1))
        vc.accept_flit(1.0)
        vc.pop_head()
        assert not vc.release_front()
        assert vc.is_free
        assert vc.route_port == -1 and vc.route_vc is None

    def test_invariants_pass_for_consistent_state(self):
        vc = InputVC(0, 0, capacity=4)
        vc.accept_new_message(0, _msg(size=2))
        vc.accept_flit(1.0)
        vc.check_invariants()


class TestOutputVC:
    def test_starts_free_with_space(self):
        ovc = OutputVC(port=1, index=2, capacity=2)
        assert ovc.is_free
        assert ovc.has_space

    def test_grant_and_release(self):
        ovc = OutputVC(0, 0, 2)
        msg = _msg()
        ovc.grant(5, msg)
        assert not ovc.is_free
        assert ovc.owner is msg
        ovc.release()
        assert ovc.is_free

    def test_double_grant_raises(self):
        ovc = OutputVC(0, 0, 2)
        ovc.grant(0, _msg())
        with pytest.raises(FlowControlError):
            ovc.grant(1, _msg())

    def test_push_pop_fifo_order(self):
        ovc = OutputVC(0, 0, 4)
        msg = _msg(size=3)
        ovc.grant(0, msg)
        for i in range(3):
            ovc.push(msg, i, float(i))
        assert ovc.head_stamp() == 0.0
        assert ovc.pop_head() == (msg, 0)
        assert ovc.pop_head() == (msg, 1)

    def test_staging_overflow_raises(self):
        ovc = OutputVC(0, 0, 1)
        msg = _msg()
        ovc.grant(0, msg)
        ovc.push(msg, 0, 0.0)
        assert not ovc.has_space
        with pytest.raises(FlowControlError):
            ovc.push(msg, 1, 1.0)

    def test_pop_empty_raises(self):
        with pytest.raises(FlowControlError):
            OutputVC(0, 0, 2).pop_head()

    def test_credit_invariant_checked(self):
        ovc = OutputVC(0, 0, 2)
        ovc.credits = -1
        with pytest.raises(FlowControlError):
            ovc.check_invariants()

    def test_vstate_opens_on_grant(self):
        ovc = OutputVC(0, 0, 2)
        ovc.grant(7, _msg(vtick=33.0))
        assert ovc.vstate.is_open
        assert ovc.vstate.vtick == 33.0


class TestInputVCPurge:
    def test_purge_front_message(self):
        vc = InputVC(0, 0, capacity=8)
        msg = _msg(size=4)
        vc.accept_new_message(0, msg)
        for stamp in (1.0, 2.0, 3.0):
            vc.accept_flit(stamp)
        removed = vc.purge_message(msg)
        assert removed == 3
        assert vc.is_free
        assert vc.occupancy == 0
        vc.check_invariants()

    def test_purge_partially_served_front(self):
        vc = InputVC(0, 0, capacity=8)
        msg = _msg(size=4)
        vc.accept_new_message(0, msg)
        for stamp in (1.0, 2.0, 3.0):
            vc.accept_flit(stamp)
        vc.pop_head()
        assert vc.purge_message(msg) == 2
        assert vc.is_free

    def test_purge_queued_message_keeps_front_stamps(self):
        vc = InputVC(0, 0, capacity=8)
        front, queued = _msg(size=2), _msg(size=2)
        vc.accept_new_message(0, front)
        vc.accept_flit(1.0)
        vc.accept_flit(2.0)
        vc.accept_new_message(5, queued)
        vc.accept_flit(9.0)
        assert vc.purge_message(queued) == 1
        assert list(vc.stamps) == [1.0, 2.0]
        assert vc.msg is front
        vc.check_invariants()

    def test_purge_front_promotes_next(self):
        vc = InputVC(0, 0, capacity=8)
        front, queued = _msg(size=1), _msg(size=1)
        vc.accept_new_message(0, front)
        vc.accept_flit(1.0)
        vc.accept_new_message(7, queued)
        vc.accept_flit(2.0)
        vc.route_port = 3
        assert vc.purge_message(front) == 1
        assert vc.msg is queued
        assert vc.head_arrival == 7
        assert vc.route_port == -1  # next message must re-route
        assert list(vc.stamps) == [2.0]

    def test_purge_absent_message_is_noop(self):
        vc = InputVC(0, 0, capacity=8)
        vc.accept_new_message(0, _msg(size=2))
        vc.accept_flit(1.0)
        assert vc.purge_message(_msg(size=2)) == 0
        assert vc.occupancy == 1


class TestOutputVCPurge:
    def test_purge_owner_clears_staging(self):
        ovc = OutputVC(0, 0, 4)
        msg = _msg(size=3)
        ovc.grant(0, msg)
        ovc.push(msg, 0, 0.0)
        ovc.push(msg, 1, 1.0)
        assert ovc.purge_owner(msg) == 2
        assert ovc.is_free
        assert not ovc.queue
        ovc.check_invariants()

    def test_purge_non_owner_is_noop(self):
        ovc = OutputVC(0, 0, 4)
        msg = _msg()
        ovc.grant(0, msg)
        assert ovc.purge_owner(_msg()) == 0
        assert ovc.owner is msg
