"""Link-health monitoring, fault-aware routing, and graceful degradation."""

import dataclasses

import pytest

from conftest import TINY, make_mesh_network, make_message

from repro.core.admission import AdmissionController
from repro.errors import ConfigurationError, FaultConfigError
from repro.experiments.config import FatMeshExperiment, SingleSwitchExperiment
from repro.experiments.failover import _fat_pair_windows
from repro.experiments.runner import simulate_fat_mesh, simulate_single_switch
from repro.faults import (
    FaultPlan,
    LinkDownWindow,
    RecoveryConfig,
    install_faults,
)
from repro.network.health import (
    DOWN,
    PROBATION,
    SUSPECT,
    UP,
    HealthConfig,
    LinkHealth,
    install_health,
)
from repro.router.config import RoutingMode
from repro.sim.rng import RngStreams


class _StubMonitor:
    """Monitor stand-in recording the transition callbacks."""

    def __init__(self, config=None):
        self.config = config or HealthConfig()
        self.events = []
        self.trace = None

    def _on_down(self, health, clock):
        self.events.append(("down", clock))

    def _on_up(self, health, clock):
        self.events.append(("up", clock))

    def _on_probation(self, health):
        self.events.append(("probation",))

    def _on_suspicion_changed(self, health, clock):
        pass  # notification only; no failover action to record


class _StubLink:
    label = "ch:0.4->1.4"
    src_router = None
    src_port = None


def _health(config=None):
    monitor = _StubMonitor(config)
    return LinkHealth(_StubLink(), ("link", 0, 4), monitor), monitor


#: the shared 2x2 fat-mesh builder now lives in conftest
_mesh_network = make_mesh_network


class TestHealthConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(suspect_misses=0),
            dict(down_misses=0),
            dict(suspect_misses=5, down_misses=3),
            dict(miss_window=0),
            dict(recover_oks=0),
            dict(probation_oks=0),
            dict(probe_interval=0),
            dict(probe_interval=100, probe_cap=50),
            dict(probe_jitter=-1),
        ],
    )
    def test_invalid_thresholds_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            HealthConfig(**kwargs)

    def test_defaults_are_valid(self):
        config = HealthConfig()
        assert config.suspect_misses <= config.down_misses
        assert config.probe_interval <= config.probe_cap


class TestLinkHealthStateMachine:
    def test_misses_escalate_up_suspect_down(self):
        health, monitor = _health(HealthConfig(suspect_misses=2, down_misses=4))
        health.on_miss(1)
        assert health.state == UP
        health.on_miss(2)
        assert health.state == SUSPECT
        assert health.routable
        health.on_miss(3)
        health.on_miss(4)
        assert health.state == DOWN
        assert not health.routable
        assert monitor.events == [("down", 4)]
        assert health.downs == 1

    def test_ok_streak_clears_suspect(self):
        health, _ = _health(HealthConfig(suspect_misses=2, down_misses=9,
                                         recover_oks=3))
        health.on_miss(1)
        health.on_miss(2)
        assert health.state == SUSPECT
        health.on_ok(5, count=3)
        assert health.state == UP
        assert health.misses == 0

    def test_window_expiry_forgets_old_misses(self):
        health, _ = _health(HealthConfig(suspect_misses=2, down_misses=4,
                                         miss_window=100))
        health.on_miss(0)
        health.on_miss(500)  # outside the window: counter restarts
        assert health.state == UP
        assert health.misses == 1

    def test_probation_then_recovery_records_ttr(self):
        config = HealthConfig(suspect_misses=1, down_misses=2,
                              probation_oks=4)
        health, monitor = _health(config)
        health.on_miss(10)
        health.on_miss(10)
        assert health.state == DOWN
        health.enter_probation()
        assert health.state == PROBATION
        assert ("probation",) in monitor.events
        health.on_ok(50, count=4)
        assert health.state == UP
        assert health.recoveries == 1
        assert health.ttr_total == 40
        assert health.down_since == -1

    def test_probation_relapse_counts_a_flap(self):
        health, _ = _health(HealthConfig(suspect_misses=1, down_misses=2))
        health.on_miss(10)
        health.on_miss(10)
        health.enter_probation()
        health.on_miss(30)  # a single miss relapses probation
        assert health.state == DOWN
        assert health.flaps == 1
        # the outage is still the original one: ttr spans the relapse
        assert health.down_since == 10

    def test_corrupt_counts_toward_thresholds(self):
        health, _ = _health(HealthConfig(suspect_misses=1, down_misses=2))
        health.on_corrupt(1)
        health.on_corrupt(2)
        assert health.corrupts == 2
        assert health.state == DOWN

    def test_ok_ignored_while_down(self):
        health, _ = _health(HealthConfig(suspect_misses=1, down_misses=1))
        health.on_miss(5)
        assert health.state == DOWN
        health.on_ok(6, count=100)  # stragglers already on the wire
        assert health.state == DOWN

    def test_enter_probation_requires_down(self):
        health, monitor = _health()
        health.enter_probation()
        assert health.state == UP
        assert monitor.events == []


class TestZeroFaultParity:
    """Monitoring alone must not perturb a fault-free run, on either loop."""

    @pytest.mark.parametrize("legacy", [False, True])
    def test_single_switch_bit_identical(self, monkeypatch, legacy):
        if legacy:
            monkeypatch.setenv("REPRO_LEGACY_LOOP", "1")
        else:
            monkeypatch.delenv("REPRO_LEGACY_LOOP", raising=False)
        base = SingleSwitchExperiment(load=0.7, mix=(80, 20), **TINY)
        plain = simulate_single_switch(base)
        monitored = simulate_single_switch(
            dataclasses.replace(base, health=HealthConfig())
        )
        assert dataclasses.asdict(plain.metrics) == dataclasses.asdict(
            monitored.metrics
        )
        assert plain.flits_injected == monitored.flits_injected
        assert plain.flits_ejected == monitored.flits_ejected
        health = monitored.fault_stats["health"]
        assert health["link_downs"] == 0
        assert health["streams_shed"] == 0

    def test_fat_mesh_bit_identical(self):
        base = FatMeshExperiment(load=0.6, mix=(80, 20), **TINY)
        plain = simulate_fat_mesh(base)
        monitored = simulate_fat_mesh(
            dataclasses.replace(base, health=HealthConfig())
        )
        assert dataclasses.asdict(plain.metrics) == dataclasses.asdict(
            monitored.metrics
        )
        assert plain.flits_injected == monitored.flits_injected


def _failover_experiment(mode, severity=8):
    """Fat mesh with one permanent member failure per fat pair."""
    base = FatMeshExperiment(
        load=0.6, mix=(80, 20),
        scale=100.0, warmup_frames=1, measure_frames=3, seed=7,
    )
    interval = base.workload_config().frame_interval_cycles
    return dataclasses.replace(
        base,
        faults=FaultPlan(
            down_windows=_fat_pair_windows(base, severity, base.warmup_cycles)
        ),
        recovery=RecoveryConfig(
            timeout=max(512, interval // 2),
            max_retries=8,
            backoff_base=max(16, interval // 256),
            backoff_cap=max(64, interval // 16),
            qos_deadline=2 * interval,
        ),
        health=HealthConfig(),
        routing_mode=mode,
        watchdog_window=4 * interval,
    )


class TestFailoverEndToEnd:
    def test_adaptive_delivers_all_qos_where_static_loses(self):
        """Acceptance: with one permanent failure per fat pair, adaptive
        routing delivers every guaranteed message that static loses."""
        adaptive = simulate_fat_mesh(_failover_experiment(RoutingMode.ADAPTIVE))
        static = simulate_fat_mesh(_failover_experiment(RoutingMode.STATIC))

        a_stats, s_stats = adaptive.fault_stats, static.fault_stats
        assert a_stats["qos_delivered_fraction"] == pytest.approx(1.0)
        assert a_stats["qos_abandoned"] == 0
        assert s_stats["qos_abandoned"] > 0
        assert (
            a_stats["qos_delivered_fraction"]
            > s_stats["qos_delivered_fraction"]
        )

        health = a_stats["health"]
        # every one of the 8 failed links was detected from symptoms
        assert health["link_downs"] >= 8
        assert health["reroutes"] > 0
        assert health["streams_shed"] > 0
        # detection is symptom-based, so static sees the downs too —
        # it just doesn't act on them
        assert s_stats["health"]["link_downs"] >= 8
        assert s_stats["health"]["reroutes"] == 0
        # metrics carry the failover counters
        assert adaptive.metrics.link_downs == health["link_downs"]
        assert adaptive.metrics.reroutes == health["reroutes"]


class TestRequeueStuckWorms:
    def test_requeue_redelivers_the_worm(self):
        delivered = []
        network, topology = make_mesh_network(
            on_message=lambda msg, clock: delivered.append(msg)
        )
        dst = next(node for node, rid, _ in topology.hosts if rid == 1)
        # a long, slow worm: occupies its route for thousands of cycles
        network.inject_now(make_message(src=0, dst=dst, size=50, vtick=100.0))
        network.run(30)
        group = [
            port for rid, port, dr, _ in topology.channels
            if rid == 0 and dr == 1
        ]
        requeued = sum(
            network.requeue_stuck_worms(network.routers[0], port)
            for port in group
        )
        assert requeued == 1
        # the clone is re-injected via a *future* scheduled event, so
        # the drain must chase the event heap too
        network.run_until_drained(max_extra=100_000, drain_events=True)
        assert [msg.dst_node for msg in delivered] == [dst]
        network.check_conservation()


class TestAdmissionDegradedMode:
    CH = ("link", 0, 0)

    def _controller(self):
        controller = AdmissionController(threshold=1.0)
        controller.admit(1, 0.4, [self.CH], "cbr")
        controller.admit(2, 0.4, [self.CH], "vbr")
        return controller

    def test_degrade_sheds_vbr_before_cbr(self):
        controller = self._controller()
        assert controller.degrade(self.CH, 0.5) == [2]
        assert controller.shed_streams == [2]
        assert controller.reserved(self.CH) == pytest.approx(0.4)

    def test_degrade_to_zero_sheds_everything_vbr_first(self):
        controller = self._controller()
        assert controller.degrade(self.CH, 0.0) == [2, 1]
        assert controller.streams_shed == 2
        assert controller.reserved(self.CH) == pytest.approx(0.0)

    def test_degraded_channel_rejects_new_streams(self):
        controller = self._controller()
        controller.degrade(self.CH, 0.0)
        assert not controller.would_admit(0.1, [self.CH])

    def test_recover_readmits_cbr_first(self):
        controller = self._controller()
        controller.degrade(self.CH, 0.0)
        assert controller.recover(self.CH) == [1, 2]
        assert controller.shed_streams == []
        assert controller.streams_readmitted == 2
        assert controller.reserved(self.CH) == pytest.approx(0.8)

    def test_capacity_must_be_a_fraction(self):
        controller = self._controller()
        with pytest.raises(ConfigurationError):
            controller.degrade(self.CH, 1.5)


class TestTransportQosStats:
    def test_deadline_misses_and_per_class_counts(self):
        base = SingleSwitchExperiment(load=0.6, mix=(80, 20), **TINY)
        experiment = dataclasses.replace(
            base,
            # huge timeout: no retransmissions, every message delivers
            # once; a 1-cycle deadline makes every QoS delivery a miss
            recovery=RecoveryConfig(timeout=10**6, qos_deadline=1),
        )
        result = simulate_single_switch(experiment)
        stats = result.fault_stats
        assert stats["qos_delivered"] > 0
        assert stats["be_delivered"] > 0
        assert stats["qos_abandoned"] == 0
        assert stats["qos_deadline_misses"] == stats["qos_delivered"]
        assert stats["qos_delivered_fraction"] == pytest.approx(1.0)

    def test_qos_deadline_validation(self):
        with pytest.raises(ConfigurationError):
            RecoveryConfig(qos_deadline=0)


class TestHostIsolation:
    def test_dead_host_link_rejected(self):
        network, _ = _mesh_network()
        plan = FaultPlan(
            down_windows=(LinkDownWindow(link="host0:inject", end=None),)
        )
        with pytest.raises(FaultConfigError, match="no reroute is possible"):
            install_faults(network, plan, RngStreams(1))

    def test_severed_router_rejected(self):
        network, _ = _mesh_network()
        plan = FaultPlan(
            down_windows=(LinkDownWindow(link="ch:0.*", end=None),)
        )
        with pytest.raises(FaultConfigError, match="isolates host"):
            install_faults(network, plan, RngStreams(1))

    def test_transient_outage_allowed(self):
        network, _ = _mesh_network()
        plan = FaultPlan(
            down_windows=(
                LinkDownWindow(link="host0:inject", start=0, end=5000),
            )
        )
        install_faults(network, plan, RngStreams(1))

    def test_full_fat_group_outage_allowed_when_detour_exists(self):
        network, topology = _mesh_network()
        windows = tuple(
            LinkDownWindow(link=f"ch:{r}.{p}->{dr}.{dp}", end=None)
            for r, p, dr, dp in topology.channels
            if r == 0 and dr == 1
        )
        assert len(windows) == 2  # the whole fat group 0 -> 1
        install_faults(network, FaultPlan(down_windows=windows), RngStreams(1))


class TestMonitorIntegration:
    def test_install_wires_every_link(self):
        network, _ = _mesh_network()
        monitor = install_health(network, HealthConfig(), RngStreams(3))
        assert network.health_monitor is monitor
        assert len(monitor.states) == len(network.links)
        assert all(link.health is not None for link in network.links)
        summary = monitor.summary()
        assert summary["link_downs"] == 0
        assert summary["links_monitored"] == len(network.links)

    def test_stall_report_names_suspected_links(self):
        network, _ = _mesh_network()
        monitor = install_health(network, HealthConfig(), RngStreams(3))
        link = next(l for l in network.links if l.src_router is not None)
        for _ in range(monitor.config.down_misses):
            link.health.on_miss(1)
        assert monitor.down_links() == [link.label]
        assert f"{link.label} (down)" in monitor.suspected()
        report = network.stall_report()
        assert "suspected unhealthy links" in report
        assert link.label in report
