"""Bandwidth shares under saturation: the Virtual Clock guarantee.

Zhang's Virtual Clock allocates a contended resource in proportion to
the connections' reserved rates.  In the MediaWorm adaptation *each
message is a connection*, so the clean proportional-share property
holds within concurrent messages: saturate one host link with long
messages carrying different Vticks and the flits delivered track the
reservations, while FIFO ignores them entirely.

(With trains of short messages the per-message connection reset
re-anchors ``auxVC`` at each header — by design, section 3.3 — so
long-run shares follow arrival pacing rather than pure reservations;
the paper's streams are paced at their reserved rate, which keeps the
two consistent.)
"""

import pytest

from repro.core.schedulers import SchedulingPolicy
from repro.core.virtual_clock import vtick_for_fraction
from repro.router.flit import Message, TrafficClass

from conftest import make_network


def _long_message(net, src, dst, src_vc, dst_vc, fraction, size=300):
    msg = Message(
        src_node=src,
        dst_node=dst,
        size=size,
        vtick=vtick_for_fraction(fraction),
        traffic_class=TrafficClass.VBR,
        src_vc=src_vc,
        dst_vc=dst_vc,
    )
    net.inject_now(msg)
    return msg


def _flits_delivered(net, dst_nodes):
    return {node: net.sinks[node].flits_ejected for node in dst_nodes}


class TestVirtualClockShares:
    def test_shares_track_reservations_two_to_one(self):
        net = make_network(policy=SchedulingPolicy.VIRTUAL_CLOCK)
        _long_message(net, 0, 1, 0, 0, fraction=0.5)
        _long_message(net, 0, 2, 1, 1, fraction=0.25)
        net.run(250)  # both messages still in progress
        served = _flits_delivered(net, (1, 2))
        assert served[2] > 0
        assert served[1] / served[2] == pytest.approx(2.0, rel=0.2)

    def test_shares_track_reservations_four_to_one(self):
        net = make_network(policy=SchedulingPolicy.VIRTUAL_CLOCK)
        _long_message(net, 0, 1, 0, 0, fraction=0.8)
        _long_message(net, 0, 2, 1, 1, fraction=0.2)
        net.run(250)
        served = _flits_delivered(net, (1, 2))
        assert served[1] / max(1, served[2]) == pytest.approx(4.0, rel=0.25)

    def test_reservation_wins_over_vc_index(self):
        # The high-rate connection sits on the HIGHER VC index; Virtual
        # Clock still gives it the larger share (FIFO would not).
        net = make_network(policy=SchedulingPolicy.VIRTUAL_CLOCK)
        _long_message(net, 0, 1, 0, 0, fraction=0.2)   # slow on VC 0
        _long_message(net, 0, 2, 1, 1, fraction=0.8)   # fast on VC 1
        net.run(250)
        served = _flits_delivered(net, (1, 2))
        assert served[2] > served[1]

    def test_fifo_serves_by_tie_break_not_reservation(self):
        # Same setup under FIFO: both messages stamp with the arrival
        # time, the tie breaks to the lower VC index, and the *slow*
        # reservation monopolises the link — reservations are ignored.
        net = make_network(policy=SchedulingPolicy.FIFO)
        _long_message(net, 0, 1, 0, 0, fraction=0.2)   # slow on VC 0
        _long_message(net, 0, 2, 1, 1, fraction=0.8)   # fast on VC 1
        net.run(250)
        served = _flits_delivered(net, (1, 2))
        assert served[1] > served[2] * 2

    def test_equal_reservations_split_evenly(self):
        net = make_network(policy=SchedulingPolicy.VIRTUAL_CLOCK)
        _long_message(net, 0, 1, 0, 0, fraction=0.5)
        _long_message(net, 0, 2, 1, 1, fraction=0.5)
        net.run(250)
        served = _flits_delivered(net, (1, 2))
        assert served[1] / max(1, served[2]) == pytest.approx(1.0, rel=0.15)

    def test_three_way_split(self):
        net = make_network(policy=SchedulingPolicy.VIRTUAL_CLOCK)
        fractions = {1: 0.5, 2: 0.3, 3: 0.2}
        for dst, fraction in fractions.items():
            _long_message(net, 0, dst, dst - 1, dst - 1, fraction=fraction)
        net.run(250)
        served = _flits_delivered(net, fractions)
        total = sum(served.values())
        for dst, fraction in fractions.items():
            assert served[dst] / total == pytest.approx(fraction, abs=0.06)

    def test_work_conservation_with_single_backlog(self):
        # A lone connection gets the whole link no matter how small its
        # reservation: Virtual Clock is work conserving.
        net = make_network(policy=SchedulingPolicy.VIRTUAL_CLOCK)
        msg = _long_message(net, 0, 1, 0, 0, fraction=0.01, size=200)
        net.run_until_drained()
        # 200 flits at link rate + pipeline fill; a non-work-conserving
        # 1% pacing would need ~20,000 cycles.
        assert msg.deliver_time < 300

    def test_best_effort_starves_while_real_time_backlogged(self):
        net = make_network(policy=SchedulingPolicy.VIRTUAL_CLOCK)
        rt = _long_message(net, 0, 1, 0, 0, fraction=0.9)
        be = Message(
            src_node=0,
            dst_node=2,
            size=20,
            vtick=1e12,
            traffic_class=TrafficClass.BEST_EFFORT,
            src_vc=1,
            dst_vc=1,
        )
        net.inject_now(be)
        net.run(250)
        # the real-time message's flits all go first
        assert net.sinks[2].flits_ejected == 0
        net.run_until_drained()
        assert be.deliver_time > rt.deliver_time