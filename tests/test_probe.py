"""Link utilisation probing and fat-link load balance."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import FatMeshExperiment
from repro.metrics.collector import MetricsCollector
from repro.network.network import Network
from repro.network.probe import UtilizationProbe
from repro.network.topology import fat_mesh_2x2
from repro.sim.rng import RngStreams
from repro.traffic.mix import build_workload

from conftest import deliver_all, make_message, make_network


class TestUtilizationProbe:
    def test_counts_only_after_reset(self):
        net = make_network()
        net.inject_now(make_message(size=10))
        deliver_all(net)
        probe = UtilizationProbe(net)  # resets at current clock
        measured = probe.measure()
        assert all(u.flits == 0 for u in measured)

    def test_measures_flits_on_destination_port(self):
        net = make_network()
        probe = UtilizationProbe(net)
        net.inject_now(make_message(src=0, dst=2, size=10))
        deliver_all(net)
        by_port = {u.port: u for u in probe.measure()}
        assert by_port[2].flits == 10
        assert by_port[1].flits == 0
        assert by_port[2].is_host_port

    def test_utilization_fraction(self):
        net = make_network()
        probe = UtilizationProbe(net)
        net.inject_now(make_message(src=0, dst=1, size=10))
        deliver_all(net)
        util = {u.port: u.utilization for u in probe.measure()}
        assert 0 < util[1] <= 1.0

    def test_zero_cycles_is_nan(self):
        net = make_network()
        probe = UtilizationProbe(net)
        assert math.isnan(probe.measure()[0].utilization)

    def test_hottest_orders_by_flits(self):
        net = make_network()
        probe = UtilizationProbe(net)
        net.inject_now(make_message(src=0, dst=1, size=20))
        net.inject_now(make_message(src=2, dst=3, size=5, src_vc=1, dst_vc=1))
        deliver_all(net)
        hottest = probe.hottest(2)
        assert hottest[0].flits >= hottest[1].flits
        assert hottest[0].port == 1

    def test_fat_group_validation(self):
        net = make_network()
        probe = UtilizationProbe(net)
        with pytest.raises(ConfigurationError):
            probe.fat_group_balance(0, (1,))
        with pytest.raises(ConfigurationError):
            probe.fat_group_balance(0, (97, 98))

    def test_fat_group_balance_no_traffic_is_nan(self):
        net = make_network()
        probe = UtilizationProbe(net)
        assert math.isnan(probe.fat_group_balance(0, (1, 2)))


class TestFatLinkBalance:
    def test_fat_links_share_load(self):
        """Load-based fat-link selection splits inter-switch traffic."""
        experiment = FatMeshExperiment(
            load=0.6,
            mix=(100, 0),
            scale=60.0,
            warmup_frames=1,
            measure_frames=3,
            seed=1,
        )
        topology = fat_mesh_2x2()
        collector = MetricsCollector(experiment.timebase)
        net = Network(
            topology,
            experiment.router_config(topology.ports_per_router),
            on_message=collector.on_message,
        )
        build_workload(net, experiment.workload_config(), RngStreams(1))
        probe = UtilizationProbe(net)
        net.run(experiment.total_cycles)

        # router 0's +X fat group toward router 1 is ports (4, 5)
        balance = probe.fat_group_balance(0, (4, 5))
        assert balance == balance, "fat links carried no traffic"
        assert balance > 0.4, f"fat link load badly skewed: {balance:.2f}"

    def test_inter_switch_links_carry_traffic(self):
        experiment = FatMeshExperiment(
            load=0.5,
            mix=(100, 0),
            scale=80.0,
            warmup_frames=1,
            measure_frames=2,
            seed=2,
        )
        topology = fat_mesh_2x2()
        net = Network(
            topology, experiment.router_config(topology.ports_per_router)
        )
        build_workload(net, experiment.workload_config(), RngStreams(2))
        probe = UtilizationProbe(net)
        net.run(experiment.total_cycles)
        inter = [u for u in probe.measure() if not u.is_host_port]
        assert any(u.flits > 0 for u in inter)
