"""Utilisation-based admission control."""

import pytest

from repro.core.admission import AdmissionController
from repro.errors import AdmissionError, ConfigurationError

IN0 = ("host-in", 0, 0)
OUT1 = ("host-out", 1, 0)
OUT2 = ("host-out", 2, 0)


class TestAdmissionController:
    def test_admits_within_threshold(self):
        controller = AdmissionController(threshold=0.75)
        decision = controller.admit(1, 0.01, [IN0, OUT1])
        assert decision
        assert controller.reserved(IN0) == pytest.approx(0.01)
        assert controller.reserved(OUT1) == pytest.approx(0.01)

    def test_rejects_over_threshold(self):
        controller = AdmissionController(threshold=0.05)
        assert controller.admit(1, 0.04, [IN0, OUT1])
        decision = controller.admit(2, 0.04, [IN0, OUT2])
        assert not decision
        assert decision.bottleneck[0] == IN0

    def test_rejection_reserves_nothing(self):
        controller = AdmissionController(threshold=0.05)
        controller.admit(1, 0.04, [IN0, OUT1])
        controller.admit(2, 0.04, [IN0, OUT2])
        assert controller.reserved(OUT2) == 0.0
        assert controller.admitted_streams == [1]

    def test_paper_capacity_75_one_percent_streams(self):
        # 0.75 threshold / 1% streams: exactly 75 streams per channel
        controller = AdmissionController(threshold=0.75)
        admitted = 0
        for stream in range(100):
            if controller.admit(stream, 0.01, [IN0]):
                admitted += 1
        assert admitted == 75

    def test_release_frees_capacity(self):
        controller = AdmissionController(threshold=0.02)
        assert controller.admit(1, 0.02, [IN0])
        assert not controller.would_admit(0.02, [IN0])
        controller.release(1)
        assert controller.would_admit(0.02, [IN0])
        assert controller.reserved(IN0) == 0.0

    def test_would_admit_does_not_commit(self):
        controller = AdmissionController(threshold=0.5)
        assert controller.would_admit(0.3, [IN0])
        assert controller.reserved(IN0) == 0.0

    def test_bottleneck_is_first_saturated_channel(self):
        controller = AdmissionController(threshold=0.1)
        controller.admit(1, 0.08, [OUT1])
        decision = controller.would_admit(0.05, [IN0, OUT1])
        assert decision.bottleneck[0] == OUT1
        assert decision.bottleneck[1] == pytest.approx(0.13)

    def test_double_admit_raises(self):
        controller = AdmissionController()
        controller.admit(1, 0.01, [IN0])
        with pytest.raises(AdmissionError):
            controller.admit(1, 0.01, [IN0])

    def test_release_unknown_raises(self):
        with pytest.raises(AdmissionError):
            AdmissionController().release(9)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(threshold=0.0)
        with pytest.raises(ConfigurationError):
            AdmissionController(threshold=1.5)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            AdmissionController().would_admit(0.0, [IN0])

    def test_utilization_snapshot(self):
        controller = AdmissionController()
        controller.admit(1, 0.02, [IN0, OUT1])
        controller.admit(2, 0.03, [IN0])
        util = controller.utilization()
        assert util[IN0] == pytest.approx(0.05)
        assert util[OUT1] == pytest.approx(0.02)

    def test_multipath_streams_reserve_every_hop(self):
        controller = AdmissionController(threshold=0.75)
        path = [IN0, ("link", 0, 4), ("link", 1, 5), OUT1]
        controller.admit(1, 0.01, path)
        for channel in path:
            assert controller.reserved(channel) == pytest.approx(0.01)
