"""Message preemption (kill and retransmit) — the dynamic-mix extension.

The paper's future work: "permit message preemption (contrary to the
typical hold-and-wait resource usage) in wormhole routing" so resources
can be partitioned dynamically.  Our implementation: with
``dynamic_partitioning`` best-effort messages may borrow idle real-time
VCs; with ``preemption`` a real-time header that finds every real-time
VC busy kills a borrowing best-effort message (its remaining flits are
purged network-wide) and the victim is retransmitted after a backoff.
"""

import pytest

from repro.errors import SimulationError
from repro.router.flit import Message, TrafficClass

from conftest import deliver_all, make_message, make_network


def _be_message(size=20, src=0, dst=1, src_vc=0):
    return Message(
        src_node=src,
        dst_node=dst,
        size=size,
        vtick=1e12,
        traffic_class=TrafficClass.BEST_EFFORT,
        src_vc=src_vc,
        dst_vc=None,
    )


def _preemptive_network(**kwargs):
    return make_network(
        vcs=2,
        rt_vc_count=2,  # no best-effort partition: BE must borrow
        dynamic_partitioning=True,
        preemption=True,
        **kwargs,
    )


class TestKillMessage:
    def test_kill_purges_and_accounts(self):
        net = make_network()
        msg = make_message(size=12)
        net.inject_now(msg)
        net.run(8)  # flits spread over NI, link, buffers
        dropped = net.kill_message(msg)
        assert dropped + net.flits_ejected == 12
        assert net.flits_dropped == dropped
        net.check_conservation()
        net.check_invariants()

    def test_killed_message_never_delivers(self):
        delivered = []
        net = make_network(on_message=lambda m, t: delivered.append(m.msg_id))
        msg = make_message(size=12)
        net.inject_now(msg)
        net.run(5)
        net.kill_message(msg)
        net.run(200)
        assert msg.msg_id not in delivered
        assert net.flits_in_flight == 0

    def test_kill_before_transmission(self):
        net = make_network()
        msg = make_message(size=6)
        net.inject_now(msg)
        dropped = net.kill_message(msg)
        assert dropped == 6
        net.check_conservation()

    def test_double_kill_rejected(self):
        net = make_network()
        msg = make_message(size=4)
        net.inject_now(msg)
        net.kill_message(msg)
        with pytest.raises(SimulationError):
            net.kill_message(msg)

    def test_kill_delivered_message_rejected(self):
        net = make_network()
        msg = make_message(size=4)
        net.inject_now(msg)
        deliver_all(net)
        with pytest.raises(SimulationError):
            net.kill_message(msg)

    def test_other_traffic_survives_a_kill(self):
        net = make_network()
        victim = make_message(size=16, src=0, dst=1, src_vc=0, dst_vc=0)
        bystander = make_message(size=16, src=2, dst=3, src_vc=1, dst_vc=1)
        net.inject_now(victim)
        net.inject_now(bystander)
        net.run(6)
        net.kill_message(victim)
        deliver_all(net)
        assert bystander.deliver_time > 0
        net.check_conservation()

    def test_queue_behind_victim_progresses(self):
        net = make_network()
        victim = make_message(size=16, src_vc=0, dst_vc=0)
        follower = make_message(size=4, src_vc=0, dst_vc=1)
        net.inject_now(victim)
        net.inject_now(follower)
        net.run(6)
        net.kill_message(victim)
        deliver_all(net)
        assert follower.deliver_time > 0


class TestPreemption:
    def test_rt_preempts_borrowing_best_effort(self):
        net = _preemptive_network()
        # BE borrows an RT VC (there is no BE partition) and is long.
        be_a = _be_message(size=60, dst=1, src_vc=0)
        be_b = _be_message(size=60, dst=1, src_vc=1, src=2)
        net.inject_now(be_a)
        net.inject_now(be_b)
        net.run(12)  # both BE messages now hold the RT VCs at port 1
        rt = make_message(src=3, dst=1, size=6, src_vc=0, dst_vc=None)
        net.inject_now(rt)
        net.run(400)
        assert net.preemptions >= 1
        assert rt.deliver_time > 0
        net.check_conservation()

    def test_victim_is_retransmitted(self):
        delivered = []
        net = _preemptive_network(
            on_message=lambda m, t: delivered.append(m.traffic_class)
        )
        be = _be_message(size=60, dst=1, src_vc=0)
        be2 = _be_message(size=60, dst=1, src_vc=1, src=2)
        net.inject_now(be)
        net.inject_now(be2)
        net.run(12)  # both RT VCs at port 1 now held by best-effort
        rt = make_message(src=3, dst=1, size=6, src_vc=0, dst_vc=None)
        net.inject_now(rt)
        net.run(2000)
        assert net.preemptions >= 1
        # the clone eventually delivers the best-effort payload
        assert TrafficClass.BEST_EFFORT in delivered
        assert net.flits_in_flight == 0
        net.check_conservation()

    def test_no_preemption_when_disabled(self):
        net = make_network(vcs=2, rt_vc_count=2, dynamic_partitioning=True)
        be = _be_message(size=200, dst=1, src_vc=0)
        be2 = _be_message(size=200, dst=1, src_vc=1, src=2)
        net.inject_now(be)
        net.inject_now(be2)
        net.run(12)
        rt = make_message(src=3, dst=1, size=6, src_vc=0, dst_vc=None)
        net.inject_now(rt)
        net.run(120)
        assert net.preemptions == 0
        # the RT message waits for a VC instead of preempting
        assert rt.deliver_time == -1 or rt.deliver_time > be.deliver_time

    def test_rt_never_preempts_rt(self):
        net = make_network(
            vcs=2, rt_vc_count=2, dynamic_partitioning=True, preemption=True
        )
        first = make_message(src=0, dst=1, size=200, src_vc=0, dst_vc=0)
        second = make_message(src=2, dst=1, size=200, src_vc=0, dst_vc=0)
        third = make_message(src=3, dst=1, size=6, src_vc=0, dst_vc=1)
        for msg in (first, second, third):
            net.inject_now(msg)
        net.run(300)
        assert net.preemptions == 0

    def test_invariants_hold_through_preemption_storm(self):
        net = _preemptive_network()
        for index in range(6):
            net.inject_now(
                _be_message(size=40, src=index % 4, dst=(index + 1) % 4,
                            src_vc=index % 2)
            )
        net.run(10)
        for index in range(6):
            net.inject_now(
                make_message(
                    src=index % 4, dst=(index + 1) % 4, size=5,
                    src_vc=index % 2, dst_vc=None,
                )
            )
        for _ in range(20):
            net.run(net.clock + 10)
            net.check_invariants()
        net.run(5000)
        assert net.flits_in_flight == 0
        net.check_conservation()