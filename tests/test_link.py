"""Link pipeline: latency, ordering, consumer dispatch."""

import pytest

from repro.errors import FlowControlError
from repro.network.link import DEFAULT_LINK_LATENCY, Link
from repro.router.flit import Message, TrafficClass


class _RecordingSink:
    def __init__(self):
        self.ejected = []

    def eject(self, clock, msg, flit_index):
        self.ejected.append((clock, msg.msg_id, flit_index))


class _RecordingRouter:
    def __init__(self):
        self.accepted = []

    def accept_flit(self, clock, port, vc_index, msg, flit_index):
        self.accepted.append((clock, port, vc_index, msg.msg_id, flit_index))


def _msg(size=3):
    return Message(0, 1, size, 10.0, TrafficClass.VBR)


class TestLink:
    def test_requires_exactly_one_consumer(self):
        with pytest.raises(FlowControlError):
            Link()
        with pytest.raises(FlowControlError):
            Link(dest_router=_RecordingRouter(), sink=_RecordingSink())

    def test_rejects_zero_latency(self):
        with pytest.raises(FlowControlError):
            Link(sink=_RecordingSink(), latency=0)

    def test_delivers_after_latency(self):
        sink = _RecordingSink()
        link = Link(sink=sink, latency=2)
        msg = _msg()
        link.send(10, msg, 0, 3)
        assert link.deliver_due(10) == 0
        assert link.deliver_due(11) == 0
        assert link.deliver_due(12) == 1
        assert sink.ejected == [(12, msg.msg_id, 0)]

    def test_default_latency_models_stage1(self):
        assert DEFAULT_LINK_LATENCY == 2

    def test_router_consumer_gets_port_and_vc(self):
        router = _RecordingRouter()
        link = Link(dest_router=router, dest_port=5, latency=1)
        msg = _msg()
        link.send(0, msg, 2, 7)
        link.deliver_due(1)
        assert router.accepted == [(1, 5, 7, msg.msg_id, 2)]

    def test_pipelining_preserves_order(self):
        sink = _RecordingSink()
        link = Link(sink=sink, latency=2)
        msg = _msg()
        link.send(0, msg, 0, 0)
        link.send(1, msg, 1, 0)
        link.deliver_due(3)
        assert [e[2] for e in sink.ejected] == [0, 1]

    def test_in_flight_count(self):
        link = Link(sink=_RecordingSink(), latency=3)
        msg = _msg()
        assert link.in_flight == 0
        link.send(0, msg, 0, 0)
        link.send(1, msg, 1, 0)
        assert link.in_flight == 2
        link.deliver_due(3)
        assert link.in_flight == 1

    def test_next_arrival(self):
        link = Link(sink=_RecordingSink(), latency=2)
        assert link.next_arrival() is None
        link.send(5, _msg(), 0, 0)
        assert link.next_arrival() == 7

    def test_label_defaults_empty(self):
        link = Link(sink=_RecordingSink())
        assert link.label == ""
        assert Link(sink=_RecordingSink(), label="host3:eject").label == (
            "host3:eject"
        )


class TestPurgeMessage:
    def test_purge_drops_only_the_victim(self):
        sink = _RecordingSink()
        link = Link(sink=sink, latency=4)
        victim, other = _msg(), _msg()
        link.send(0, victim, 0, 2)
        link.send(1, other, 0, 3)
        link.send(2, victim, 1, 2)
        dropped = link.purge_message(victim)
        assert dropped == [2, 2]
        assert link.in_flight == 1
        link.deliver_due(10)
        assert [e[1] for e in sink.ejected] == [other.msg_id]

    def test_purge_empty_link_is_noop(self):
        link = Link(sink=_RecordingSink())
        assert link.purge_message(_msg()) == []

    def test_purge_missing_message_keeps_others(self):
        link = Link(sink=_RecordingSink(), latency=2)
        msg = _msg()
        link.send(0, msg, 0, 1)
        assert link.purge_message(_msg()) == []
        assert link.in_flight == 1

    def test_purge_with_flits_spanning_delivery_cycles(self):
        # flits of one message sent on consecutive cycles become due on
        # consecutive cycles; purging between deliveries must drop the
        # still-pending tail while keeping the accounting consistent
        sink = _RecordingSink()
        link = Link(sink=sink, latency=2)
        msg = _msg(size=4)
        for flit in range(4):
            link.send(flit, msg, flit, 0)
        link.deliver_due(2)  # flit 0 arrives
        assert link.in_flight == 3
        dropped = link.purge_message(msg)
        assert dropped == [0, 0, 0]
        assert link.in_flight == 0
        assert link.deliver_due(10) == 0
        assert [e[2] for e in sink.ejected] == [0]

    def test_in_flight_tracks_partial_deliveries(self):
        link = Link(sink=_RecordingSink(), latency=2)
        a, b = _msg(size=2), _msg(size=2)
        link.send(0, a, 0, 0)
        link.send(1, a, 1, 0)
        link.send(2, b, 0, 1)
        assert link.in_flight == 3
        link.deliver_due(2)
        assert link.in_flight == 2
        link.purge_message(a)
        assert link.in_flight == 1
        link.deliver_due(4)
        assert link.in_flight == 0
