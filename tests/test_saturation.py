"""Saturation-load bisection."""

import math

import pytest

from repro.analysis.saturation import find_saturation_load
from repro.errors import ConfigurationError


def _threshold_runner(knee: float, calls=None):
    """Jitter-free below ``knee``, jittery above."""

    def runner(load: float):
        if calls is not None:
            calls.append(load)
        if load <= knee:
            return 33.0, 0.1
        return 34.5, 5.0

    return runner


class TestFindSaturationLoad:
    def test_finds_knee(self):
        search = find_saturation_load(
            _threshold_runner(0.82), low=0.5, high=1.0, tolerance=0.02
        )
        assert search.resolved
        assert search.capacity == pytest.approx(0.82, abs=0.02)
        assert search.first_jittery > search.capacity

    def test_all_jittery(self):
        search = find_saturation_load(
            _threshold_runner(0.2), low=0.5, high=1.0
        )
        assert math.isnan(search.capacity)
        assert search.first_jittery == 0.5
        assert not search.resolved

    def test_never_jitters(self):
        search = find_saturation_load(
            _threshold_runner(2.0), low=0.5, high=1.0
        )
        assert search.capacity == 1.0
        assert math.isnan(search.first_jittery)

    def test_probe_budget_respected(self):
        calls = []
        find_saturation_load(
            _threshold_runner(0.7531, calls),
            low=0.5,
            high=1.0,
            tolerance=1e-9,
            max_probes=6,
        )
        assert len(calls) <= 6

    def test_probes_recorded(self):
        search = find_saturation_load(
            _threshold_runner(0.8), low=0.5, high=1.0, tolerance=0.05
        )
        assert search.probes[0][0] == 0.5
        assert search.probes[1][0] == 1.0
        assert all(len(p) == 4 for p in search.probes)

    def test_bracket_invariant(self):
        # every jitter-free probe is below every jittery probe
        search = find_saturation_load(
            _threshold_runner(0.66), low=0.5, high=1.0, tolerance=0.01
        )
        good = [p[0] for p in search.probes if p[3]]
        bad = [p[0] for p in search.probes if not p[3]]
        assert max(good) < min(bad)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            find_saturation_load(_threshold_runner(0.8), low=1.0, high=0.5)
        with pytest.raises(ConfigurationError):
            find_saturation_load(
                _threshold_runner(0.8), low=0.5, high=1.0, tolerance=0
            )

    def test_with_real_simulation(self):
        # a coarse end-to-end check: tiny single-switch runs have a
        # capacity somewhere at or above moderate load
        from repro.experiments.config import SingleSwitchExperiment
        from repro.experiments.runner import simulate_single_switch

        def runner(load):
            metrics = simulate_single_switch(
                SingleSwitchExperiment(
                    load=load,
                    mix=(100, 0),
                    scale=100.0,
                    warmup_frames=1,
                    measure_frames=2,
                    seed=4,
                )
            ).metrics
            return metrics.d, metrics.sigma_d

        search = find_saturation_load(
            runner, low=0.4, high=1.0, tolerance=0.2, sigma_tolerance_ms=2.0
        )
        assert search.capacity >= 0.4
