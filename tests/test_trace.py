"""Trace-driven frame sources."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.rng import RngStreams
from repro.traffic.trace import (
    DEFAULT_GOP_PATTERN,
    TraceFrameModel,
    generate_mpeg2_gop_trace,
    load_frame_trace,
    save_frame_trace,
)

from conftest import make_network
from repro.traffic.streams import MediaStream, StreamConfig
from repro.router.flit import TrafficClass


class TestTraceFrameModel:
    def test_replays_in_order(self):
        model = TraceFrameModel([10, 20, 30])
        rng = RngStreams(1).stream("x")
        assert [model.draw(rng) for _ in range(3)] == [10, 20, 30]

    def test_loops_past_end(self):
        model = TraceFrameModel([10, 20])
        rng = RngStreams(1).stream("x")
        assert [model.draw(rng) for _ in range(5)] == [10, 20, 10, 20, 10]

    def test_mean_and_std_reflect_trace(self):
        model = TraceFrameModel([10, 20, 30])
        assert model.mean_flits == pytest.approx(20.0)
        assert model.std_flits == pytest.approx((200 / 3) ** 0.5)

    def test_constant_trace_detected(self):
        assert TraceFrameModel([5, 5, 5]).is_constant
        assert not TraceFrameModel([5, 6]).is_constant

    def test_rewind(self):
        model = TraceFrameModel([1, 2, 3])
        rng = RngStreams(1).stream("x")
        model.draw(rng)
        model.rewind()
        assert model.draw(rng) == 1

    def test_rejects_empty_or_invalid(self):
        with pytest.raises(ConfigurationError):
            TraceFrameModel([])
        with pytest.raises(ConfigurationError):
            TraceFrameModel([5, 0])

    def test_drives_a_media_stream(self):
        net = make_network()
        model = TraceFrameModel([15, 25])
        stream = MediaStream(
            StreamConfig(
                src_node=0,
                dst_node=1,
                src_vc=0,
                dst_vc=0,
                vtick=100.0,
                message_size=5,
                frame_interval=300,
                frame_model=model,
                traffic_class=TrafficClass.VBR,
            ),
            RngStreams(1).stream("s"),
        )
        stream.start(net)
        net.run(700)
        net.run_until_drained()
        # frames of 15 and 25 flits: 40 flits delivered
        assert net.flits_ejected == 40


class TestTraceIo:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_frame_trace(path, [100, 200, 300])
        assert load_frame_trace(path) == [100, 200, 300]

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\n10\n 20 # inline\n\n30\n")
        assert load_frame_trace(path) == [10, 20, 30]

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("10\nhello\n")
        with pytest.raises(ConfigurationError):
            load_frame_trace(path)

    def test_rejects_nonpositive(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0\n")
        with pytest.raises(ConfigurationError):
            load_frame_trace(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# nothing\n")
        with pytest.raises(ConfigurationError):
            load_frame_trace(path)

    def test_refuses_to_write_empty(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_frame_trace(tmp_path / "x.txt", [])


class TestGopGenerator:
    def test_mean_is_respected(self):
        rng = RngStreams(2).stream("gop")
        sizes = generate_mpeg2_gop_trace(1500, 200.0, rng)
        assert sum(sizes) / len(sizes) == pytest.approx(200.0, rel=0.05)

    def test_i_frames_are_largest_without_noise(self):
        rng = RngStreams(2).stream("gop")
        sizes = generate_mpeg2_gop_trace(15, 200.0, rng, noise=0.0)
        by_type = dict(zip(DEFAULT_GOP_PATTERN, sizes))
        assert by_type["I"] > by_type["P"] > by_type["B"]

    def test_noise_free_trace_is_periodic(self):
        rng = RngStreams(2).stream("gop")
        sizes = generate_mpeg2_gop_trace(30, 100.0, rng, noise=0.0)
        assert sizes[:15] == sizes[15:]

    def test_rejects_bad_pattern(self):
        rng = RngStreams(2).stream("gop")
        with pytest.raises(ConfigurationError):
            generate_mpeg2_gop_trace(10, 100.0, rng, pattern="IXB")

    def test_rejects_bad_noise(self):
        rng = RngStreams(2).stream("gop")
        with pytest.raises(ConfigurationError):
            generate_mpeg2_gop_trace(10, 100.0, rng, noise=1.5)

    def test_rejects_zero_frames(self):
        rng = RngStreams(2).stream("gop")
        with pytest.raises(ConfigurationError):
            generate_mpeg2_gop_trace(0, 100.0, rng)
