"""Statistics, delivery-interval and latency trackers, the collector."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.collector import MetricsCollector
from repro.metrics.delivery import FrameDeliveryTracker
from repro.metrics.latency import LatencyTracker
from repro.metrics.stats import RunningStats, summarize
from repro.router.flit import Message, TrafficClass
from repro.sim.units import LinkSpec, TimeBase, WorkloadScale


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.n == 0
        assert stats.variance == 0.0

    def test_single_value(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.mean == 5.0
        assert stats.std == 0.0
        assert stats.min == stats.max == 5.0

    def test_known_values(self):
        stats = RunningStats()
        stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.mean == pytest.approx(5.0)
        assert stats.std == pytest.approx(2.0)

    def test_merge_two_halves(self):
        xs = [1.0, 5.0, 2.5, 9.0, -3.0, 4.5]
        a, b, whole = RunningStats(), RunningStats(), RunningStats()
        a.extend(xs[:3])
        b.extend(xs[3:])
        whole.extend(xs)
        a.merge(b)
        assert a.n == whole.n
        assert a.mean == pytest.approx(whole.mean)
        assert a.std == pytest.approx(whole.std)
        assert a.min == whole.min and a.max == whole.max

    def test_merge_with_empty(self):
        a, b = RunningStats(), RunningStats()
        a.extend([1.0, 2.0])
        a.merge(b)
        assert a.n == 2
        b.merge(a)
        assert b.mean == pytest.approx(1.5)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2))
    def test_matches_numpy(self, xs):
        stats = RunningStats()
        stats.extend(xs)
        assert stats.mean == pytest.approx(float(np.mean(xs)), abs=1e-6)
        assert stats.std == pytest.approx(float(np.std(xs)), abs=1e-6)

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1),
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1),
    )
    def test_merge_matches_pooled(self, xs, ys):
        a, b = RunningStats(), RunningStats()
        a.extend(xs)
        b.extend(ys)
        a.merge(b)
        pooled = xs + ys
        assert a.mean == pytest.approx(float(np.mean(pooled)), abs=1e-6)
        assert a.std == pytest.approx(float(np.std(pooled)), abs=1e-6)


class TestSummarize:
    def test_empty_returns_none(self):
        assert summarize([]) is None

    def test_basic_summary(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.n == 5
        assert summary.mean == pytest.approx(3.0)
        assert summary.p50 == pytest.approx(3.0)
        assert summary.min == 1.0 and summary.max == 5.0

    def test_percentiles_match_numpy(self):
        xs = [float(i) for i in range(101)]
        summary = summarize(xs)
        assert summary.p95 == pytest.approx(float(np.percentile(xs, 95)))
        assert summary.p99 == pytest.approx(float(np.percentile(xs, 99)))

    def test_single_sample(self):
        summary = summarize([7.0])
        assert summary.p50 == summary.p95 == summary.p99 == 7.0


def _rt_message(stream_id, frame_id, frame_messages=1):
    return Message(
        0,
        1,
        5,
        100.0,
        TrafficClass.VBR,
        stream_id=stream_id,
        frame_id=frame_id,
        frame_messages=frame_messages,
    )


class TestFrameDeliveryTracker:
    def test_single_stream_intervals(self):
        tracker = FrameDeliveryTracker()
        for frame, t in enumerate((100, 200, 310, 400)):
            tracker.on_message(_rt_message(1, frame), t)
        assert tracker.frames_delivered == 4
        assert tracker.intervals == [100.0, 110.0, 90.0]
        assert tracker.mean_interval == pytest.approx(100.0)

    def test_multi_message_frames_complete_on_last(self):
        tracker = FrameDeliveryTracker()
        tracker.on_message(_rt_message(1, 0, frame_messages=3), 10)
        tracker.on_message(_rt_message(1, 0, frame_messages=3), 20)
        assert tracker.frames_delivered == 0
        assert tracker.incomplete_frames == 1
        tracker.on_message(_rt_message(1, 0, frame_messages=3), 30)
        assert tracker.frames_delivered == 1
        assert tracker.incomplete_frames == 0

    def test_streams_are_tracked_independently(self):
        tracker = FrameDeliveryTracker()
        tracker.on_message(_rt_message(1, 0), 100)
        tracker.on_message(_rt_message(2, 0), 150)
        tracker.on_message(_rt_message(1, 1), 200)
        tracker.on_message(_rt_message(2, 1), 300)
        assert sorted(tracker.intervals) == [100.0, 150.0]

    def test_warmup_suppresses_early_intervals(self):
        tracker = FrameDeliveryTracker(warmup=250)
        for frame, t in enumerate((100, 200, 300)):
            tracker.on_message(_rt_message(1, frame), t)
        # only the 200->300 interval completes after warmup
        assert tracker.intervals == [100.0]

    def test_no_intervals_is_nan(self):
        tracker = FrameDeliveryTracker()
        assert math.isnan(tracker.mean_interval)
        assert math.isnan(tracker.std_interval)

    def test_jitter_free_stream_has_zero_std(self):
        tracker = FrameDeliveryTracker()
        for frame in range(10):
            tracker.on_message(_rt_message(3, frame), 1000 * (frame + 1))
        assert tracker.std_interval == pytest.approx(0.0)
        assert tracker.mean_interval == pytest.approx(1000.0)


class TestLatencyTracker:
    def _delivered(self, tracker, inject, deliver):
        msg = Message(0, 1, 5, 1e12, TrafficClass.BEST_EFFORT)
        msg.inject_time = inject
        tracker.on_message(msg, deliver)

    def test_mean_latency(self):
        tracker = LatencyTracker()
        self._delivered(tracker, 0, 50)
        self._delivered(tracker, 100, 250)
        assert tracker.mean_latency == pytest.approx(100.0)
        assert tracker.count == 2
        assert tracker.max_latency == 150.0

    def test_warmup_filtering(self):
        tracker = LatencyTracker(warmup=100)
        self._delivered(tracker, 0, 50)  # before warmup: dropped
        self._delivered(tracker, 100, 160)
        assert tracker.count == 1
        assert tracker.mean_latency == pytest.approx(60.0)

    def test_empty_is_nan(self):
        tracker = LatencyTracker()
        assert math.isnan(tracker.mean_latency)
        assert math.isnan(tracker.std_latency)

    def test_samples_kept_optionally(self):
        tracker = LatencyTracker(keep_samples=False)
        self._delivered(tracker, 0, 10)
        assert tracker.samples == []
        assert tracker.count == 1


class TestMetricsCollector:
    def test_dispatch_by_class(self):
        tb = TimeBase(LinkSpec(400.0, 32), WorkloadScale(1.0))
        collector = MetricsCollector(tb)
        rt = _rt_message(1, 0)
        be = Message(0, 1, 5, 1e12, TrafficClass.BEST_EFFORT)
        be.inject_time = 0
        collector.on_message(rt, 100)
        collector.on_message(be, 50)
        assert collector.delivery.frames_delivered == 1
        assert collector.latency.count == 1

    def test_snapshot_reports_paper_units(self):
        tb = TimeBase(LinkSpec(400.0, 32), WorkloadScale(20.0))
        collector = MetricsCollector(tb)
        # two frames 412500/20 cycles apart = 33 ms paper-equivalent
        collector.on_message(_rt_message(1, 0), 0)
        collector.on_message(_rt_message(1, 1), 412_500 // 20)
        metrics = collector.snapshot()
        assert metrics.d == pytest.approx(33.0, rel=1e-3)
        assert metrics.sigma_d == pytest.approx(0.0)
        assert metrics.interval_count == 1

    def test_be_latency_is_unscaled_microseconds(self):
        tb = TimeBase(LinkSpec(400.0, 32), WorkloadScale(20.0))
        collector = MetricsCollector(tb)
        be = Message(0, 1, 5, 1e12, TrafficClass.BEST_EFFORT)
        be.inject_time = 0
        collector.on_message(be, 125)  # 125 cycles x 80 ns = 10 us
        metrics = collector.snapshot()
        assert metrics.be_latency_us == pytest.approx(10.0)
        assert metrics.be_latency_us_paper_equivalent == pytest.approx(200.0)

    def test_jitter_free_check(self):
        tb = TimeBase(LinkSpec(400.0, 32), WorkloadScale(1.0))
        collector = MetricsCollector(tb)
        for frame in range(5):
            collector.on_message(_rt_message(1, frame), 412_500 * (frame + 1))
        assert collector.snapshot().is_jitter_free()
