"""Sweep resilience: checkpointing, retry-with-reseed, CLI resume."""

import dataclasses
import json
import logging
import os
import signal
import time

import pytest

from conftest import TINY

import repro.experiments.cli as cli
import repro.experiments.faultsweep as faultsweep
from repro.errors import DeadlockError, PointTimeoutError, SimulationError
from repro.experiments.config import SingleSwitchExperiment
from repro.experiments.figures import PROFILES, RunProfile
from repro.experiments.parallel import CRASH_RESEED_STEP
from repro.experiments.resilience import (
    RESEED_STEP,
    SweepCheckpoint,
    run_resilient,
    wall_clock_limit,
)

RESILIENCE_LOGGER = "repro.experiments.resilience"


@pytest.fixture
def tiny_profile(monkeypatch):
    tiny = RunProfile("tiny", scale=80.0, warmup_frames=1, measure_frames=2)
    monkeypatch.setitem(PROFILES, "tiny", tiny)
    return tiny


class TestSweepCheckpoint:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "sweep.json"
        cp = SweepCheckpoint(path, meta={"profile": "quick"})
        assert "fig3" not in cp
        assert cp.get("fig3") is None
        cp.put("fig3", "some rendered text")
        assert "fig3" in cp
        assert cp.get("fig3") == "some rendered text"
        assert cp.done_keys == ["fig3"]

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "sweep.json"
        SweepCheckpoint(path, meta={"profile": "quick"}).put("fig3", "text")
        reloaded = SweepCheckpoint(path, meta={"profile": "quick"})
        assert reloaded.get("fig3") == "text"

    def test_put_persists_immediately(self, tmp_path):
        # the point of the checkpoint: a kill -9 after put() loses nothing
        path = tmp_path / "sweep.json"
        SweepCheckpoint(path, meta={}).put("a", 1)
        on_disk = json.loads(path.read_text())
        assert on_disk["done"] == {"a": 1}
        assert not os.path.exists(f"{path}.tmp")

    def test_meta_mismatch_discards_stale_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        SweepCheckpoint(path, meta={"profile": "quick"}).put("fig3", "text")
        other = SweepCheckpoint(path, meta={"profile": "default"})
        assert "fig3" not in other

    def test_corrupt_file_is_ignored(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text("{ not json")
        cp = SweepCheckpoint(path, meta={})
        assert cp.done_keys == []

    def test_wrong_format_is_ignored(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({"format": "other", "done": {"a": 1}}))
        assert "a" not in SweepCheckpoint(path, meta={})

    def test_clear_removes_the_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        cp = SweepCheckpoint(path, meta={})
        cp.put("a", 1)
        assert path.exists()
        cp.clear()
        assert not path.exists()
        assert cp.done_keys == []
        cp.clear()  # idempotent


class TestCheckpointRecovery:
    """Corruption is reported, partial writes are recovered."""

    def test_corrupt_file_warns_with_path_and_cause(self, tmp_path, caplog):
        path = tmp_path / "sweep.json"
        path.write_text("{ not json")
        with caplog.at_level(logging.WARNING, RESILIENCE_LOGGER):
            cp = SweepCheckpoint(path, meta={})
        assert cp.done_keys == []
        assert str(path) in caplog.text
        assert "unreadable" in caplog.text
        # the operator sees what broke, not just that something did
        assert "JSONDecodeError" in caplog.text

    def test_unknown_format_warns(self, tmp_path, caplog):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({"format": "other", "done": {"a": 1}}))
        with caplog.at_level(logging.WARNING, RESILIENCE_LOGGER):
            SweepCheckpoint(path, meta={})
        assert "unrecognised format" in caplog.text
        assert "'other'" in caplog.text

    def test_meta_mismatch_warns(self, tmp_path, caplog):
        path = tmp_path / "sweep.json"
        SweepCheckpoint(path, meta={"profile": "quick"}).put("fig3", "text")
        with caplog.at_level(logging.WARNING, RESILIENCE_LOGGER):
            SweepCheckpoint(path, meta={"profile": "default"})
        assert "does not match" in caplog.text
        assert "recomputing" in caplog.text

    def test_clean_load_is_silent(self, tmp_path, caplog):
        path = tmp_path / "sweep.json"
        SweepCheckpoint(path, meta={"profile": "quick"}).put("fig3", "text")
        with caplog.at_level(logging.WARNING, RESILIENCE_LOGGER):
            SweepCheckpoint(path, meta={"profile": "quick"})
            SweepCheckpoint(tmp_path / "absent.json", meta={})
        assert caplog.text == ""

    def test_partial_write_recovers_from_tmp(self, tmp_path, caplog):
        path = tmp_path / "sweep.json"
        SweepCheckpoint(path, meta={"profile": "quick"}).put("fig3", "text")
        # simulate a crash between the temp-file fsync and the atomic
        # rename: the finished payload sits at <path>.tmp, <path> is gone
        os.replace(path, f"{path}.tmp")
        with caplog.at_level(logging.WARNING, RESILIENCE_LOGGER):
            recovered = SweepCheckpoint(path, meta={"profile": "quick"})
        assert recovered.get("fig3") == "text"
        assert "recovered from partial write" in caplog.text

    def test_partial_write_recovers_over_truncated_main(
        self, tmp_path, caplog
    ):
        path = tmp_path / "sweep.json"
        SweepCheckpoint(path, meta={"profile": "quick"}).put("fig3", "text")
        os.replace(path, f"{path}.tmp")
        # a crash mid-write of a *later* save leaves a truncated main
        # file alongside the last complete temp payload
        path.write_text('{"format": "mediaworm-checkpoint-v1", "me')
        with caplog.at_level(logging.WARNING, RESILIENCE_LOGGER):
            recovered = SweepCheckpoint(path, meta={"profile": "quick"})
        assert recovered.get("fig3") == "text"
        assert "unreadable" in caplog.text
        assert "recovered from partial write" in caplog.text

    def test_recovered_tmp_still_checks_meta(self, tmp_path):
        path = tmp_path / "sweep.json"
        SweepCheckpoint(path, meta={"profile": "quick"}).put("fig3", "text")
        os.replace(path, f"{path}.tmp")
        other = SweepCheckpoint(path, meta={"profile": "default"})
        assert "fig3" not in other

    def test_clear_removes_the_tmp_file_too(self, tmp_path):
        path = tmp_path / "sweep.json"
        cp = SweepCheckpoint(path, meta={})
        cp.put("a", 1)
        (tmp_path / "sweep.json.tmp").write_text("{}")
        cp.clear()
        assert not path.exists()
        assert not os.path.exists(f"{path}.tmp")


class TestReseedCollisionFreedom:
    """Retry and crash reseeds must never alias another point's stream."""

    def test_steps_are_distinct_primes(self):
        assert RESEED_STEP != CRASH_RESEED_STEP
        for step in (RESEED_STEP, CRASH_RESEED_STEP):
            assert step > 1
            assert all(step % d for d in range(2, int(step**0.5) + 1))

    def test_reseed_streams_never_collide(self):
        # a sweep's point seeds are typically a dense family (seed,
        # seed+1, ...); every (retry attempt, crash round) combination
        # must map each base to a distinct effective seed, or a retry of
        # one point would silently rerun another point's exact stream
        bases = range(101)
        attempts = range(3)  # in-worker retry reseeds (attempts=3)
        crashes = range(3)  # pool-crash resubmission reseeds
        seeds = {
            base + attempt * RESEED_STEP + crash * CRASH_RESEED_STEP
            for base in bases
            for attempt in attempts
            for crash in crashes
        }
        assert len(seeds) == len(bases) * len(attempts) * len(crashes)


class TestWallClockLimit:
    @pytest.mark.skipif(
        not hasattr(signal, "SIGALRM"), reason="needs SIGALRM"
    )
    def test_expiry_raises_point_timeout(self):
        with pytest.raises(PointTimeoutError, match="wall-clock limit"):
            with wall_clock_limit(0.05):
                deadline = time.monotonic() + 5.0  # hang protection
                while time.monotonic() < deadline:
                    pass

    @pytest.mark.skipif(
        not hasattr(signal, "SIGALRM"), reason="needs SIGALRM"
    )
    def test_timer_is_disarmed_after_the_block(self):
        with wall_clock_limit(30.0):
            pass
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)

    def test_none_and_nonpositive_disable_the_guard(self):
        with wall_clock_limit(None):
            pass
        with wall_clock_limit(0):
            pass
        with wall_clock_limit(-1.0):
            pass


class TestRunResilient:
    def _experiment(self):
        return SingleSwitchExperiment(load=0.5, mix=(80, 20), **TINY)

    def test_success_passes_through(self):
        experiment = self._experiment()
        seen = []
        result = run_resilient(lambda e: seen.append(e) or "ok", experiment)
        assert result == "ok"
        assert seen == [experiment]

    def test_retries_with_reseeded_experiment(self):
        experiment = self._experiment()
        seeds = []
        retries = []

        def flaky(trial):
            seeds.append(trial.seed)
            if len(seeds) < 3:
                raise DeadlockError("wedged")
            return "recovered"

        result = run_resilient(
            flaky,
            experiment,
            attempts=3,
            on_retry=lambda attempt, exc: retries.append(attempt),
        )
        assert result == "recovered"
        assert seeds == [
            experiment.seed,
            experiment.seed + RESEED_STEP,
            experiment.seed + 2 * RESEED_STEP,
        ]
        assert retries == [0, 1]

    def test_exhausted_attempts_raise_the_last_error(self):
        def always_fails(trial):
            raise DeadlockError(f"seed {trial.seed} wedged")

        with pytest.raises(DeadlockError, match="wedged"):
            run_resilient(always_fails, self._experiment(), attempts=2)

    def test_non_simulation_errors_propagate_immediately(self):
        calls = []

        def typo(trial):
            calls.append(trial)
            raise ValueError("a bug, not a wedge")

        with pytest.raises(ValueError):
            run_resilient(typo, self._experiment(), attempts=3)
        assert len(calls) == 1

    def test_cycle_budget_arms_the_watchdog(self):
        seen = []
        run_resilient(
            lambda e: seen.append(e), self._experiment(), cycle_budget=9999
        )
        assert seen[0].watchdog_window == 9999

    def test_cycle_budget_respects_explicit_watchdog(self):
        experiment = dataclasses.replace(
            self._experiment(), watchdog_window=123
        )
        seen = []
        run_resilient(lambda e: seen.append(e), experiment, cycle_budget=9999)
        assert seen[0].watchdog_window == 123

    def test_zero_attempts_rejected(self):
        with pytest.raises(SimulationError):
            run_resilient(lambda e: e, self._experiment(), attempts=0)


def _fake_result(policy, rate):
    """A stand-in ExperimentResult for stubbed campaign runs."""

    class _Result:
        metrics = faultsweep._empty_metrics()
        fault_stats = {
            "flits_lost": 7,
            "delivered_fraction": 0.995,
            "retransmissions": 3,
            "abandoned": 0,
        }

    return _Result()


class TestFaultCampaign:
    @pytest.fixture
    def stub_runner(self, monkeypatch, tiny_profile):
        calls = []

        def fake(experiment):
            calls.append(
                (experiment.scheduler, experiment.faults.flit_loss_prob)
            )
            return _fake_result(experiment.scheduler, 0.0)

        monkeypatch.setattr(faultsweep, "simulate_fat_mesh", fake)
        return calls

    def test_campaign_sweeps_both_schedulers(self, stub_runner):
        fig = faultsweep.run_fault_campaign("tiny", rates=(0.0, 0.01))
        assert sorted(fig.series) == ["fifo", "virtual_clock"]
        assert [p.x for p in fig.series["fifo"]] == [0.0, 0.01]
        assert len(stub_runner) == 4
        text = faultsweep.fault_campaign_to_text(fig)
        assert "scheduler" in text
        assert "0.9950" in text

    def test_campaign_checkpoints_every_point(self, stub_runner, tmp_path):
        path = tmp_path / "faults.json"
        meta = {"rates": ["0.01"]}
        cp = SweepCheckpoint(path, meta=meta)
        faultsweep.run_fault_campaign("tiny", rates=(0.01,), checkpoint=cp)
        assert sorted(cp.done_keys) == ["fifo@0.01", "virtual_clock@0.01"]
        assert len(stub_runner) == 2

        # a rerun against the same checkpoint recomputes nothing
        logs = []
        cp2 = SweepCheckpoint(path, meta=meta)
        fig = faultsweep.run_fault_campaign(
            "tiny", rates=(0.01,), checkpoint=cp2, log=logs.append
        )
        assert len(stub_runner) == 2  # no new simulation calls
        assert any("restored from checkpoint" in line for line in logs)
        point = fig.series["virtual_clock"][0]
        assert point.extra["delivered_fraction"] == 0.995

    def test_failing_point_is_recorded_not_fatal(
        self, monkeypatch, tiny_profile, tmp_path
    ):
        def wedge(experiment):
            raise DeadlockError("router 0 wedged")

        monkeypatch.setattr(faultsweep, "simulate_fat_mesh", wedge)
        cp = SweepCheckpoint(tmp_path / "faults.json", meta={})
        fig = faultsweep.run_fault_campaign(
            "tiny", rates=(0.02,), checkpoint=cp
        )
        for points in fig.series.values():
            assert "DeadlockError" in points[0].extra["failed"]
        text = faultsweep.fault_campaign_to_text(fig)
        assert "FAILED" in text
        # the failure is checkpointed too: a rerun does not retry it
        assert sorted(cp.done_keys) == ["fifo@0.02", "virtual_clock@0.02"]


class TestCliResilience:
    def test_faults_rejects_bad_rates(self, tiny_profile):
        with pytest.raises(SystemExit):
            cli.main(["faults", "--profile", "tiny", "--rates", "0.1x"])
        with pytest.raises(SystemExit):
            cli.main(["faults", "--profile", "tiny", "--rates", "1.5"])

    def test_faults_command_end_to_end(
        self, monkeypatch, tiny_profile, tmp_path, capsys
    ):
        monkeypatch.setattr(
            faultsweep, "simulate_fat_mesh", lambda e: _fake_result(None, 0)
        )
        path = tmp_path / "cp.json"
        code = cli.main(
            [
                "faults",
                "--profile",
                "tiny",
                "--rates",
                "0.01",
                "--checkpoint",
                str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scheduler" in out
        assert "completed in" in out
        # a completed campaign clears its checkpoint
        assert not path.exists()

    def test_all_resumes_from_checkpoint(
        self, tiny_profile, tmp_path, capsys
    ):
        """A killed ``mediaworm all`` picks up where it stopped."""
        path = tmp_path / "all.json"
        cp = SweepCheckpoint(
            path, meta={"command": "all", "profile": "tiny"}
        )
        names = [
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table3",
        ]
        for name in names:
            cp.put(name, f"cached output of {name}")
        code = cli.main(
            ["all", "--profile", "tiny", "--checkpoint", str(path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[resuming from" in out
        for name in names:
            assert f"cached output of {name}" in out
            assert f"[{name} restored from checkpoint]" in out
        # every name was served from the checkpoint, which is then cleared
        assert not path.exists()

    def test_all_checkpoint_ignores_other_profile(self, tmp_path):
        path = tmp_path / "all.json"
        SweepCheckpoint(
            path, meta={"command": "all", "profile": "default"}
        ).put("fig3", "stale")
        cp = SweepCheckpoint(
            path, meta={"command": "all", "profile": "tiny"}
        )
        assert "fig3" not in cp
