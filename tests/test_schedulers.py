"""Multiplexer scheduling policies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.schedulers import (
    FifoScheduler,
    RoundRobinScheduler,
    SchedulingPolicy,
    VirtualClockScheduler,
    make_scheduler,
)
from repro.core.virtual_clock import VirtualClockState
from repro.errors import ConfigurationError


class TestFactory:
    @pytest.mark.parametrize(
        "policy,cls",
        [
            (SchedulingPolicy.FIFO, FifoScheduler),
            (SchedulingPolicy.VIRTUAL_CLOCK, VirtualClockScheduler),
            (SchedulingPolicy.ROUND_ROBIN, RoundRobinScheduler),
        ],
    )
    def test_make_scheduler(self, policy, cls):
        scheduler = make_scheduler(policy)
        assert isinstance(scheduler, cls)
        assert scheduler.policy == policy

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_scheduler("priority")

    def test_instances_are_independent(self):
        assert make_scheduler("fifo") is not make_scheduler("fifo")


class TestFifoScheduler:
    def test_stamp_is_arrival_clock(self):
        state = VirtualClockState()
        state.open(0, vtick=10.0)
        assert FifoScheduler().stamp(77, state) == 77.0

    def test_stamp_ignores_vtick(self):
        fast, slow = VirtualClockState(), VirtualClockState()
        fast.open(0, 1.0)
        slow.open(0, 1000.0)
        scheduler = FifoScheduler()
        assert scheduler.stamp(5, fast) == scheduler.stamp(5, slow)

    def test_select_minimum_stamp(self):
        assert FifoScheduler().select([(9.0, 1), (3.0, 2), (7.0, 0)]) == 2

    def test_select_tie_breaks_to_lower_vc(self):
        assert FifoScheduler().select([(5.0, 3), (5.0, 1)]) == 1

    def test_select_single_candidate(self):
        assert FifoScheduler().select([(1.0, 4)]) == 4

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e9),
                st.integers(min_value=0, max_value=31),
            ),
            min_size=1,
        )
    )
    def test_select_is_minimum_property(self, candidates):
        chosen = FifoScheduler().select(candidates)
        chosen_key = min(k for k, vc in candidates if vc == chosen)
        assert all(chosen_key <= k or (k == chosen_key) for k, _ in candidates)
        assert (chosen_key, chosen) == min(candidates)


class TestVirtualClockScheduler:
    def test_stamp_advances_virtual_clock(self):
        state = VirtualClockState()
        state.open(0, vtick=50.0)
        scheduler = VirtualClockScheduler()
        assert scheduler.stamp(0, state) == pytest.approx(50.0)
        assert scheduler.stamp(0, state) == pytest.approx(100.0)

    def test_select_prefers_reserved_bandwidth(self):
        # the stream with the smaller Vtick accumulates smaller stamps
        scheduler = VirtualClockScheduler()
        fast, slow = VirtualClockState(), VirtualClockState()
        fast.open(0, vtick=10.0)
        slow.open(0, vtick=100.0)
        candidates = [
            (scheduler.stamp(0, slow), 0),
            (scheduler.stamp(0, fast), 1),
        ]
        assert scheduler.select(candidates) == 1


class TestRoundRobinScheduler:
    def test_rotates_through_candidates(self):
        scheduler = RoundRobinScheduler()
        candidates = [(0.0, 0), (0.0, 1), (0.0, 2)]
        picks = [scheduler.select(candidates) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_missing_candidates(self):
        scheduler = RoundRobinScheduler()
        assert scheduler.select([(0.0, 0), (0.0, 2)]) == 0
        assert scheduler.select([(0.0, 0), (0.0, 2)]) == 2
        assert scheduler.select([(0.0, 0), (0.0, 2)]) == 0

    def test_wraps_around(self):
        scheduler = RoundRobinScheduler()
        assert scheduler.select([(0.0, 3)]) == 3
        assert scheduler.select([(0.0, 1)]) == 1  # wrap: 1 < last(3)

    def test_ignores_stamps(self):
        scheduler = RoundRobinScheduler()
        # even a huge stamp wins if it's next in rotation
        assert scheduler.select([(1e12, 0), (0.0, 1)]) == 0
