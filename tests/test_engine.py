"""Engine selection and the array/object bit-identity contract.

The array engine's correctness contract is *bit-identical metrics*:
every workload family of the tier-1 suite must produce the same
``RunMetrics`` (and fault stats, where present) under
``engine="array"`` as under the default object engine — whether the
run actually uses the fused kernels or transparently falls back to the
object loop for a cold feature.
"""

import dataclasses

import pytest

from repro.errors import ConfigurationError, EngineError
from repro.experiments.config import (
    ButterflyExperiment,
    FatMeshExperiment,
    FatTree3Experiment,
    SingleSwitchExperiment,
)
from repro.experiments.runner import (
    simulate_butterfly,
    simulate_fat_mesh,
    simulate_fat_tree3,
    simulate_single_switch,
)
from repro.faults import FaultPlan
from repro.network.health import HealthConfig
from repro.network.network import Network
from repro.network.topology import single_switch
from repro.router.config import RouterConfig, RoutingMode
from repro.sim.engine import (
    DEFAULT_ENGINE,
    ENGINE_ARRAY,
    ENGINE_OBJECT,
    ENGINES,
    resolve_engine,
)

TINY = dict(scale=100.0, warmup_frames=1, measure_frames=2, seed=7)


def _metrics(result):
    # repr-compare: exact for every finite float, and NaN fields (a
    # horizon too short to deliver frames) stay comparable
    return repr(dataclasses.asdict(result.metrics))


class TestEngineErrors:
    def test_registry_and_default(self):
        assert ENGINES == (ENGINE_OBJECT, ENGINE_ARRAY)
        assert DEFAULT_ENGINE == ENGINE_OBJECT

    def test_engine_error_is_a_configuration_error(self):
        assert issubclass(EngineError, ConfigurationError)

    def test_unknown_engine_name_is_rejected(self):
        with pytest.raises(EngineError, match="unknown simulation engine"):
            resolve_engine("vector")

    def test_array_engine_rejects_legacy_loop(self):
        with pytest.raises(EngineError, match="REPRO_LEGACY_LOOP"):
            resolve_engine(ENGINE_ARRAY, legacy_loop=True)

    def test_object_engine_allows_legacy_loop(self):
        assert resolve_engine(ENGINE_OBJECT, legacy_loop=True) == ENGINE_OBJECT

    def test_network_validates_engine_at_construction(self):
        topology = single_switch(4)
        config = RouterConfig(num_ports=topology.ports_per_router)
        with pytest.raises(EngineError):
            Network(topology, config, engine="simd")

    def test_network_rejects_array_under_legacy_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEGACY_LOOP", "1")
        topology = single_switch(4)
        config = RouterConfig(num_ports=topology.ports_per_router)
        with pytest.raises(EngineError, match="REPRO_LEGACY_LOOP"):
            Network(topology, config, engine=ENGINE_ARRAY)

    def test_experiment_carries_engine_to_simulation(self, monkeypatch):
        """A bad engine on the experiment fails before any cycles run."""
        monkeypatch.delenv("REPRO_LEGACY_LOOP", raising=False)
        experiment = SingleSwitchExperiment(engine="warp", **TINY)
        with pytest.raises(EngineError):
            simulate_single_switch(experiment)


class TestArrayEngineParity:
    """``engine="array"`` is bit-identical on every workload family."""

    @pytest.fixture(autouse=True)
    def _default_loop(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEGACY_LOOP", raising=False)

    def _pair(self, simulate, experiment):
        reference = simulate(experiment)
        array = simulate(
            dataclasses.replace(experiment, engine=ENGINE_ARRAY)
        )
        return reference, array

    @pytest.mark.parametrize("scheduler", ["virtual_clock", "fifo"])
    def test_single_switch_schedulers(self, scheduler):
        experiment = SingleSwitchExperiment(
            load=0.8, mix=(80, 20), scheduler=scheduler, **TINY
        )
        reference, array = self._pair(simulate_single_switch, experiment)
        assert _metrics(array) == _metrics(reference)

    def test_fat_mesh(self):
        experiment = FatMeshExperiment(load=0.7, mix=(80, 20), **TINY)
        reference, array = self._pair(simulate_fat_mesh, experiment)
        assert _metrics(array) == _metrics(reference)

    def test_fat_tree3(self):
        experiment = FatTree3Experiment(load=0.7, mix=(80, 20), **TINY)
        reference, array = self._pair(simulate_fat_tree3, experiment)
        assert _metrics(array) == _metrics(reference)

    def test_butterfly(self):
        experiment = ButterflyExperiment(load=0.7, mix=(80, 20), **TINY)
        reference, array = self._pair(simulate_butterfly, experiment)
        assert _metrics(array) == _metrics(reference)

    def test_faulted_run_falls_back_identically(self):
        """Fault injection is a cold feature: the array engine must
        delegate to the object loop and stay bit-identical."""
        experiment = FatMeshExperiment(
            load=0.7,
            mix=(80, 20),
            faults=FaultPlan(flit_loss_prob=0.01),
            watchdog_window=200_000,
            **TINY,
        )
        reference, array = self._pair(simulate_fat_mesh, experiment)
        assert _metrics(array) == _metrics(reference)
        assert array.fault_stats == reference.fault_stats

    def test_adaptive_failover_falls_back_identically(self):
        experiment = FatMeshExperiment(
            load=0.7,
            mix=(80, 20),
            routing_mode=RoutingMode.ADAPTIVE,
            health=HealthConfig(),
            watchdog_window=200_000,
            **TINY,
        )
        reference, array = self._pair(simulate_fat_mesh, experiment)
        assert _metrics(array) == _metrics(reference)

    def test_array_matches_legacy_golden_digest(self, monkeypatch):
        """Three-way anchor: the array engine agrees with the legacy
        full-scan loop, not merely with the fused object loop."""
        experiment = SingleSwitchExperiment(load=0.9, mix=(80, 20), **TINY)
        array = simulate_single_switch(
            dataclasses.replace(experiment, engine=ENGINE_ARRAY)
        )
        monkeypatch.setenv("REPRO_LEGACY_LOOP", "1")
        legacy = simulate_single_switch(experiment)
        assert _metrics(array) == _metrics(legacy)


class TestEngineCli:
    def test_run_help_lists_engine_flag(self, capsys):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--engine" in out
        assert "{object,array}" in out

    def test_all_help_lists_engine_flag(self, capsys):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["all", "--help"])
        assert excinfo.value.code == 0
        assert "--engine" in capsys.readouterr().out
