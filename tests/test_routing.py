"""Routing functions."""

import pytest

from repro.errors import RoutingError
from repro.router.routing import (
    FatMeshRouting,
    SingleSwitchRouting,
    TableRouting,
)


class TestSingleSwitchRouting:
    def test_maps_host_to_port(self):
        routing = SingleSwitchRouting({0: 0, 1: 1, 2: 2})
        assert routing.candidates(0, 2) == (2,)

    def test_non_identity_mapping(self):
        routing = SingleSwitchRouting({10: 3, 11: 0})
        assert routing.candidates(0, 10) == (3,)
        assert routing.candidates(0, 11) == (0,)

    def test_unknown_destination_raises(self):
        routing = SingleSwitchRouting({0: 0})
        with pytest.raises(RoutingError):
            routing.candidates(0, 99)


class TestTableRouting:
    def test_lookup(self):
        routing = TableRouting({(0, 5): (2, 3), (1, 5): (0,)})
        assert routing.candidates(0, 5) == (2, 3)
        assert routing.candidates(1, 5) == (0,)

    def test_missing_entry_raises(self):
        routing = TableRouting({(0, 5): (2,)})
        with pytest.raises(RoutingError):
            routing.candidates(0, 6)
        with pytest.raises(RoutingError):
            routing.candidates(2, 5)

    def test_empty_entry_rejected_at_construction(self):
        with pytest.raises(RoutingError):
            TableRouting({(0, 1): ()})

    def test_fat_mesh_routing_is_table_routing(self):
        routing = FatMeshRouting({(0, 1): (4, 5)})
        assert routing.candidates(0, 1) == (4, 5)
