"""Golden-trace regression and the zero-overhead contract.

Two pins:

* the canonical tiny run's event stream hashes to a committed digest —
  any change to the simulator's flit-level behaviour, to the event
  taxonomy, or to the emission points shows up here first, on both the
  active-set and the legacy loop (which must produce the *same* stream);
* a run with every observability feature enabled reports bit-identical
  :class:`RunMetrics` to an untraced run, so tracing can never perturb
  the numbers the paper reproduction rests on.
"""

import dataclasses
import json
import os

import pytest

from conftest import TINY

from repro.experiments.config import SingleSwitchExperiment
from repro.experiments.runner import simulate_single_switch
from repro.metrics.collector import RunMetrics
from repro.obs import TraceSpec, stream_digest, validate_event

#: canonical digest of the tiny golden run's event stream (message ids
#: densified by repro.obs.stream_digest).  Recompute with:
#:   PYTHONPATH=src python -c "import tests.test_obs_trace as t; print(t._golden_digest())"
GOLDEN_DIGEST = (
    "a263604e3794e7eccb111f03f830234878a1e2e738e36d86f4dd068e4c6c1925"
)


def _golden_experiment(**overrides):
    kwargs = dict(load=0.6, mix=(80, 20), **TINY)
    kwargs.update(overrides)
    return SingleSwitchExperiment(**kwargs)


def _golden_digest(tmp_dir="."):
    path = os.path.join(str(tmp_dir), "golden.jsonl")
    simulate_single_switch(_golden_experiment(trace=TraceSpec(path=path)))
    return stream_digest(path)


@pytest.fixture
def loop(request, monkeypatch):
    if request.param:
        monkeypatch.setenv("REPRO_LEGACY_LOOP", "1")
    else:
        monkeypatch.delenv("REPRO_LEGACY_LOOP", raising=False)
    return request.param


@pytest.mark.parametrize("loop", [False, True], indirect=True)
class TestGoldenTrace:
    def test_stream_digest_matches_committed_pin(self, tmp_path, loop):
        assert _golden_digest(tmp_path) == GOLDEN_DIGEST

    def test_stream_records_fit_the_schema(self, tmp_path, loop):
        path = tmp_path / "golden.jsonl"
        result = simulate_single_switch(
            _golden_experiment(trace=TraceSpec(path=str(path)))
        )
        records = 0
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                validate_event(json.loads(line))
                records += 1
        assert records == result.trace_summary["jsonl_records"]


@pytest.mark.parametrize("loop", [False, True], indirect=True)
class TestZeroOverhead:
    def test_fully_observed_run_is_bit_identical(self, tmp_path, loop):
        plain = simulate_single_switch(_golden_experiment())
        spec = TraceSpec(
            path=str(tmp_path / "t.jsonl"),
            chrome_path=str(tmp_path / "t-chrome.json"),
            check=True,
        )
        observed = simulate_single_switch(_golden_experiment(trace=spec))
        assert dataclasses.asdict(plain.metrics) == dataclasses.asdict(
            observed.metrics
        )
        assert plain.flits_injected == observed.flits_injected
        assert plain.flits_ejected == observed.flits_ejected
        assert plain.cycles_run == observed.cycles_run
        assert plain.trace_summary is None
        summary = observed.trace_summary
        assert summary["events"] > 0
        assert summary["invariant_checks"] > 0
        assert summary["chrome_events"] > 0

    def test_profiled_run_changes_only_the_profile(self, loop):
        plain = simulate_single_switch(_golden_experiment())
        profiled = simulate_single_switch(
            _golden_experiment(profile_loop=True)
        )
        plain_dict = dataclasses.asdict(plain.metrics)
        profiled_dict = dataclasses.asdict(profiled.metrics)
        profile = profiled_dict.pop("profile")
        plain_dict.pop("profile")
        assert plain_dict == profiled_dict
        assert profile["loop_total_s"] > 0.0
        assert profile["loop_cycles_executed"] > 0.0


class TestTraceFiltering:
    def test_event_filter_limits_the_file_not_the_checker(self, tmp_path):
        path = tmp_path / "filtered.jsonl"
        spec = TraceSpec(
            path=str(path),
            events=("flit_inject", "flit_eject"),
            check=True,
        )
        result = simulate_single_switch(_golden_experiment(trace=spec))
        kinds = set()
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                kinds.add(json.loads(line)["kind"])
        assert kinds == {"flit_inject", "flit_eject"}
        summary = result.trace_summary
        # the invariant checker saw the unfiltered stream
        assert summary["invariant_events"] == summary["events"]
        assert summary["jsonl_records"] < summary["events"]

    def test_counts_cover_expected_kinds(self, tmp_path):
        spec = TraceSpec(path=str(tmp_path / "t.jsonl"))
        result = simulate_single_switch(_golden_experiment(trace=spec))
        counts = result.trace_summary["counts"]
        for kind in ("flit_inject", "flit_eject", "route", "vc_alloc",
                     "sched", "xbar", "link_tx"):
            assert counts[kind] > 0, kind
        assert counts["flit_inject"] >= counts["flit_eject"]


class TestRunMetricsCompat:
    def test_old_checkpoint_dict_still_decodes(self):
        """Pre-observability RunMetrics dicts lack the profile field."""
        old = {
            "mean_delivery_interval_ms": 33.0,
            "std_delivery_interval_ms": 0.1,
            "frames_delivered": 10,
            "interval_count": 9,
            "be_latency_us": 5.0,
            "be_latency_us_paper_equivalent": 100.0,
            "be_latency_std_us": 1.0,
            "be_message_count": 42,
        }
        metrics = RunMetrics(**old)
        assert metrics.profile == {}
