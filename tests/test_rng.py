"""Reproducible named RNG streams."""

from repro.sim.rng import RngStreams


class TestRngStreams:
    def test_same_name_returns_same_stream(self):
        rngs = RngStreams(42)
        assert rngs.stream("a/b") is rngs.stream("a/b")

    def test_same_seed_same_sequence(self):
        a = RngStreams(42).stream("vbr/node0")
        b = RngStreams(42).stream("vbr/node0")
        assert [a.random() for _ in range(10)] == [
            b.random() for _ in range(10)
        ]

    def test_different_names_differ(self):
        rngs = RngStreams(42)
        a = rngs.stream("x")
        b = rngs.stream("y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x")
        b = RngStreams(2).stream("x")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_streams_are_independent_of_creation_order(self):
        first = RngStreams(9)
        second = RngStreams(9)
        first.stream("alpha")  # extra stream created first
        a = first.stream("beta").random()
        b = second.stream("beta").random()
        assert a == b

    def test_fork_is_deterministic(self):
        a = RngStreams(5).fork("child").stream("s").random()
        b = RngStreams(5).fork("child").stream("s").random()
        assert a == b

    def test_fork_differs_from_parent(self):
        parent = RngStreams(5)
        child = parent.fork("child")
        assert parent.stream("s").random() != child.stream("s").random()

    def test_seed_attribute_preserved(self):
        assert RngStreams(123).seed == 123
